#!/usr/bin/env python
"""The evaluator-differential gate (CI job ``evaluator-differential``).

The repository carries three complete execution strategies for the
same semantics: the recursive AST walker (:mod:`repro.core.interp`),
the iterative Core-IR evaluator (:mod:`repro.core.coreeval`), and the
direct-threaded compiled backend (:mod:`repro.core.compile`, with
superinstruction fusion and constant folding).  The compiled backend
is the process default; the walker and the Core evaluator are the
oracles it is judged against.  This gate is what makes that
arrangement safe: it renders

* the full S5 compliance report (every implementation x every suite
  case), and
* a fixed-seed fuzz campaign report (default 500 generated programs,
  every divergence classified and minimized),

under *all three* evaluators, serially and with a worker pool, and
demands the rendered reports be **byte-identical** pairwise.  Outcome kinds,
exit codes, stdout, UB catalogue entries, step-metered budget cutoffs,
divergence grouping, and shrinker results all feed those renderings, so
a single differing byte fails the gate.

It additionally pins the ``--allocator bump`` identity: running the S5
grid and the fuzz campaign with an *explicit* ``bump`` allocator
override (the way ``repro compare --allocator bump`` builds them) must
be byte-identical to the default renderings -- the default allocator
axis is inert, so the pre-policy goldens all stand.

``FuzzReport.elapsed`` is wall-clock and is the one intentionally
nondeterministic field in the rendering; it is normalised to zero on
every report before comparison.

Exit status 0 = the evaluators agree; 1 = any pair of reports differs
(a unified diff is printed).
"""

from __future__ import annotations

import argparse
import difflib
import sys
import time

from repro.fuzz import run_fuzz
from repro.impls import ALL_IMPLEMENTATIONS
from repro.reporting.tables import render_compliance, render_fuzz_summary
from repro.testsuite.compare import compare_implementations

EVALUATORS = ("ast", "core", "compiled")


def suite_rendering(evaluator: str, jobs: int) -> str:
    reports = compare_implementations(ALL_IMPLEMENTATIONS, jobs=jobs,
                                      evaluator=evaluator)
    return render_compliance(reports)


def fuzz_rendering(evaluator: str, jobs: int, seed: int,
                   iterations: int) -> str:
    report = run_fuzz(seed=seed, iterations=iterations, jobs=jobs,
                      evaluator=evaluator)
    # Wall-clock is the only nondeterministic field in the rendering.
    report.elapsed = 0.0
    return render_fuzz_summary(report)


def bump_override_check(seed: int, iterations: int) -> bool:
    """``--allocator bump`` (the default policy made explicit) must
    change nothing: byte-identical S5 compliance and fuzz reports."""
    from repro.fuzz.oracle import FUZZ_TARGETS, allocator_fuzz_targets
    from repro.impls import with_allocator

    grid = tuple(with_allocator(impl, "bump")
                 for impl in ALL_IMPLEMENTATIONS)
    suite = render_compliance(compare_implementations(grid, jobs=1))
    baseline = render_compliance(
        compare_implementations(ALL_IMPLEMENTATIONS, jobs=1))
    ok = True
    if suite != baseline:
        ok = False
        print("  --allocator bump: S5 COMPLIANCE REPORT DIFFERS")
        sys.stdout.writelines(difflib.unified_diff(
            baseline.splitlines(keepends=True),
            suite.splitlines(keepends=True),
            fromfile="S5 [default]", tofile="S5 [--allocator bump]"))

    # The CLI's --allocator bump target construction: the identity
    # policy contributes no extra targets and leaves heap_reuse off.
    targets = FUZZ_TARGETS + allocator_fuzz_targets("bump")
    report = run_fuzz(seed=seed, iterations=iterations, jobs=1,
                      targets=targets, heap_reuse=False)
    report.elapsed = 0.0
    fuzz = render_fuzz_summary(report)
    base_report = run_fuzz(seed=seed, iterations=iterations, jobs=1)
    base_report.elapsed = 0.0
    if fuzz != render_fuzz_summary(base_report):
        ok = False
        print("  --allocator bump: FUZZ REPORT DIFFERS")
    if ok:
        print(f"  --allocator bump: byte-identical to the default "
              f"renderings ({len(baseline)} + {len(fuzz)} bytes)")
    return ok


def check_pair(label: str, by_evaluator: dict[str, str]) -> bool:
    """Pairwise byte-identity against the AST-walker baseline."""
    baseline = by_evaluator[EVALUATORS[0]]
    ok = True
    for other in EVALUATORS[1:]:
        text = by_evaluator[other]
        if text == baseline:
            continue
        ok = False
        print(f"  {label}: REPORTS DIFFER "
              f"({EVALUATORS[0]} vs {other})")
        sys.stdout.writelines(difflib.unified_diff(
            baseline.splitlines(keepends=True),
            text.splitlines(keepends=True),
            fromfile=f"{label} [{EVALUATORS[0]}]",
            tofile=f"{label} [{other}]"))
    if ok:
        print(f"  {label}: byte-identical across "
              f"{'/'.join(EVALUATORS)} ({len(baseline)} bytes)")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Require byte-identical suite and fuzz reports from "
                    "the AST, Core, and compiled evaluators")
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzz campaign seed (default: 0)")
    parser.add_argument("--fuzz-iterations", type=int, default=500,
                        metavar="N",
                        help="fuzz programs per campaign (default: 500)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker count for the parallel arm "
                             "(default: 4; the serial arm always runs)")
    args = parser.parse_args(argv)

    ok = True
    for jobs, arm in ((1, "serial"), (args.jobs, f"--jobs {args.jobs}")):
        started = time.monotonic()
        suites = {e: suite_rendering(e, jobs) for e in EVALUATORS}
        ok &= check_pair(f"S5 compliance report, {arm}", suites)
        fuzzes = {e: fuzz_rendering(e, jobs, args.seed,
                                    args.fuzz_iterations)
                  for e in EVALUATORS}
        ok &= check_pair(
            f"fuzz report (seed {args.seed}, "
            f"{args.fuzz_iterations} programs), {arm}", fuzzes)
        print(f"  [{arm} arm: {time.monotonic() - started:.1f}s]")
    ok &= bump_override_check(args.seed, min(args.fuzz_iterations, 50))
    print("evaluator-differential: "
          + ("PASS" if ok else "FAIL (evaluators disagree)"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
