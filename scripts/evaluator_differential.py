#!/usr/bin/env python
"""The evaluator-differential gate (CI job ``evaluator-differential``).

The repository carries two complete execution strategies for the same
semantics: the recursive AST walker (:mod:`repro.core.interp`) and the
iterative Core-IR evaluator (:mod:`repro.core.coreeval`), elaborated by
:mod:`repro.core.elaborate`.  The Core evaluator is the process
default; the AST walker is the oracle it is judged against.  This gate
is what makes that arrangement safe: it renders

* the full S5 compliance report (every implementation x every suite
  case), and
* a fixed-seed fuzz campaign report (default 500 generated programs,
  every divergence classified and minimized),

under *both* evaluators, serially and with a worker pool, and demands
the rendered reports be **byte-identical** pairwise.  Outcome kinds,
exit codes, stdout, UB catalogue entries, step-metered budget cutoffs,
divergence grouping, and shrinker results all feed those renderings, so
a single differing byte fails the gate.

``FuzzReport.elapsed`` is wall-clock and is the one intentionally
nondeterministic field in the rendering; it is normalised to zero on
every report before comparison.

Exit status 0 = the evaluators agree; 1 = any pair of reports differs
(a unified diff is printed).
"""

from __future__ import annotations

import argparse
import difflib
import sys
import time

from repro.fuzz import run_fuzz
from repro.impls import ALL_IMPLEMENTATIONS
from repro.reporting.tables import render_compliance, render_fuzz_summary
from repro.testsuite.compare import compare_implementations

EVALUATORS = ("ast", "core")


def suite_rendering(evaluator: str, jobs: int) -> str:
    reports = compare_implementations(ALL_IMPLEMENTATIONS, jobs=jobs,
                                      evaluator=evaluator)
    return render_compliance(reports)


def fuzz_rendering(evaluator: str, jobs: int, seed: int,
                   iterations: int) -> str:
    report = run_fuzz(seed=seed, iterations=iterations, jobs=jobs,
                      evaluator=evaluator)
    # Wall-clock is the only nondeterministic field in the rendering.
    report.elapsed = 0.0
    return render_fuzz_summary(report)


def check_pair(label: str, by_evaluator: dict[str, str]) -> bool:
    ast_text, core_text = (by_evaluator[e] for e in EVALUATORS)
    if ast_text == core_text:
        print(f"  {label}: byte-identical "
              f"({len(core_text)} bytes)")
        return True
    print(f"  {label}: REPORTS DIFFER")
    sys.stdout.writelines(difflib.unified_diff(
        ast_text.splitlines(keepends=True),
        core_text.splitlines(keepends=True),
        fromfile=f"{label} [ast]", tofile=f"{label} [core]"))
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Require byte-identical suite and fuzz reports from "
                    "the AST and Core evaluators")
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzz campaign seed (default: 0)")
    parser.add_argument("--fuzz-iterations", type=int, default=500,
                        metavar="N",
                        help="fuzz programs per campaign (default: 500)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker count for the parallel arm "
                             "(default: 4; the serial arm always runs)")
    args = parser.parse_args(argv)

    ok = True
    for jobs, arm in ((1, "serial"), (args.jobs, f"--jobs {args.jobs}")):
        started = time.monotonic()
        suites = {e: suite_rendering(e, jobs) for e in EVALUATORS}
        ok &= check_pair(f"S5 compliance report, {arm}", suites)
        fuzzes = {e: fuzz_rendering(e, jobs, args.seed,
                                    args.fuzz_iterations)
                  for e in EVALUATORS}
        ok &= check_pair(
            f"fuzz report (seed {args.seed}, "
            f"{args.fuzz_iterations} programs), {arm}", fuzzes)
        print(f"  [{arm} arm: {time.monotonic() - started:.1f}s]")
    print("evaluator-differential: "
          + ("PASS" if ok else "FAIL (evaluators disagree)"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
