"""``python -m repro``: the same entry point as the ``repro``/
``cheri-run`` console scripts."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
