"""Resource governance and fault injection (see docs/ROBUSTNESS.md).

Public surface:

* :class:`Budget` / :class:`BudgetMeter` -- per-run resource limits and
  their runtime enforcement; threaded through the interpreter and the
  allocator so governed runs always end in a structured
  ``resource_exhausted`` :class:`~repro.errors.Outcome`.
* :data:`DEFAULT_FUZZ_BUDGET` -- the deterministic safety net under
  every fuzz campaign.
* :class:`FaultPlan` -- test-only injected faults (fail the Nth
  allocation, kill or hang a pool worker, delay a compile).
"""

from repro.robust.budget import Budget, BudgetMeter, DEFAULT_FUZZ_BUDGET
from repro.robust.faults import FaultPlan

__all__ = ["Budget", "BudgetMeter", "DEFAULT_FUZZ_BUDGET", "FaultPlan"]
