"""Deterministic fault injection for the robustness test layer.

A :class:`FaultPlan` describes *one* misbehaviour to inject into an
otherwise-normal run: fail the Nth allocation, delay a compile, or kill
(or hang) the pool worker executing the Nth task.  Plans are plain
frozen dataclasses so they pickle cleanly into worker processes; the
engine only consults them when a test passes one explicitly -- production
paths never construct a plan.

Worker-level faults (kill/hang) would otherwise re-fire after the pool
retries the task on a fresh worker, so a plan can carry a *once token*:
a filesystem path used as a cross-process latch.  The first process to
create the file wins the right to misbehave; every retry then runs
clean, which is exactly the "transient fault" scenario the retry policy
exists for.  Leave ``once_token`` unset to model a *persistent* fault
that fires on every attempt (the quarantine scenario).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class FaultPlan:
    """One planned fault.  All fields default to "no fault".

    Attributes:
        fail_alloc_index: fail the allocation with this 0-based index
            (raises :class:`~repro.errors.ResourceExhausted` with limit
            ``fault`` from inside the allocator).
        compile_delay: sleep this many seconds before compiling
            (exercises deadline/timeout paths without a hot loop).
        kill_task_index: the worker executing the task with this 0-based
            input index dies with ``os._exit(1)`` -- no Python cleanup,
            exactly like an OOM kill or segfault.
        hang_task_index: the worker executing this task sleeps for
            ``hang_seconds`` instead of running it (exercises the pool's
            task timeout).
        hang_seconds: how long a hung task sleeps.
        once_token: path of a latch file; when set, kill/hang faults
            fire only for the first process that manages to create it.
    """

    fail_alloc_index: int | None = None
    compile_delay: float | None = None
    kill_task_index: int | None = None
    hang_task_index: int | None = None
    hang_seconds: float = 3600.0
    once_token: str | None = None

    def _once(self) -> bool:
        """True when this process wins (or doesn't need) the latch."""
        if self.once_token is None:
            return True
        try:
            Path(self.once_token).touch(exist_ok=False)
        except OSError:
            return False
        return True

    def fails_alloc(self, index: int) -> bool:
        """Should the allocation with this 0-based index fail?"""
        return self.fail_alloc_index is not None and \
            index == self.fail_alloc_index and self._once()

    def maybe_kill(self, task_index: int) -> None:
        """Kill or hang the current worker if this task is the target.

        Called by the pool worker immediately before running a task.
        ``os._exit`` skips all Python-level cleanup so the parent sees
        the same broken-pipe/broken-pool symptoms as a real worker
        crash.
        """
        if self.kill_task_index is not None and \
                task_index == self.kill_task_index and self._once():
            os._exit(1)
        if self.hang_task_index is not None and \
                task_index == self.hang_task_index and self._once():
            time.sleep(self.hang_seconds)
