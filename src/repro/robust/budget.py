"""Resource budgets: every governed run terminates with an Outcome.

The paper's evaluation (S5) depends on every suite program and every
fuzz candidate terminating with a *classifiable* outcome.  A
:class:`Budget` bounds one run along four axes -- interpreter steps,
allocated bytes, allocation count, and wall-clock time -- and a
:class:`BudgetMeter` enforces it at runtime, raising
:class:`~repro.errors.ResourceExhausted` at the first violation.  The
interpreter converts that into an ``Outcome`` of kind
``resource_exhausted`` carrying *which* limit fired and *where*, so a
``while(1)`` loop or an allocation bomb degrades into a structured
verdict instead of a hang or a raw ``MemoryError``.

Determinism: the ``steps`` / ``memory`` / ``allocations`` axes are pure
functions of the program, so a budgeted parallel run stays bit-identical
to the serial one.  The ``deadline`` axis reads the wall clock and is
therefore *not* deterministic -- the default fuzz budget deliberately
leaves it unset (see :data:`DEFAULT_FUZZ_BUDGET`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ResourceExhausted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.obs.events import EventBus
    from repro.robust.faults import FaultPlan


@dataclass(frozen=True)
class Budget:
    """Per-run resource limits (``None`` = unlimited on that axis).

    Attributes:
        max_steps: interpreter evaluation-step ceiling (deterministic).
        max_alloc_bytes: total bytes reserved by the allocator across
            the run, counting representability padding (deterministic).
        max_allocations: total allocation count, including function and
            string-literal allocations (deterministic).
        deadline: wall-clock seconds from the start of interpretation
            (NOT deterministic; checked every 1024 steps).
    """

    max_steps: int | None = None
    max_alloc_bytes: int | None = None
    max_allocations: int | None = None
    deadline: float | None = None

    @property
    def unlimited(self) -> bool:
        return (self.max_steps is None and self.max_alloc_bytes is None
                and self.max_allocations is None and self.deadline is None)


#: The safety net under every fuzz campaign: generous enough that no
#: well-formed generated program is affected, but a nonterminating or
#: allocation-bombing candidate becomes a ``resource_exhausted`` verdict
#: instead of hanging ``repro fuzz``.  Deterministic axes only, so
#: parallel fuzz stays bit-identical to serial.
DEFAULT_FUZZ_BUDGET = Budget(max_steps=2_000_000,
                             max_alloc_bytes=256 * 1024 * 1024,
                             max_allocations=1_000_000)


class BudgetMeter:
    """Runtime enforcement of one :class:`Budget` over one run.

    The interpreter charges steps inline (its hot path keeps the limits
    as plain attributes); the allocator charges every reservation
    through :meth:`charge_allocation`.  When a bus is attached, every
    cut-off emits a ``robust.cutoff`` event naming the limit, so the
    explainer can show why the case stopped.  A :class:`FaultPlan` may
    be attached to inject allocation failures (tests only).
    """

    def __init__(self, budget: Budget | None = None, *,
                 bus: "EventBus | None" = None,
                 faults: "FaultPlan | None" = None) -> None:
        self.budget = budget if budget is not None else Budget()
        self.bus = bus
        self.faults = faults
        self.alloc_bytes = 0
        self.allocations = 0
        #: Absolute monotonic deadline, fixed when the meter is created
        #: (immediately before interpretation starts).
        self.deadline_at: float | None = None
        if self.budget.deadline is not None:
            self.deadline_at = time.monotonic() + self.budget.deadline

    def cut(self, limit: str, where: str = "") -> "NoReturn":  # noqa: F821
        """Record and raise the cut-off for ``limit``."""
        bus = self.bus
        if bus is not None:
            bus.emit("robust.cutoff", limit=limit, where=where,
                     what=f"budget exhausted ({limit}): {where}")
        raise ResourceExhausted(limit, where)

    def charge_allocation(self, size: int, where: str = "") -> None:
        """Account one allocator reservation of ``size`` (padded) bytes.

        Fault injection fires *before* accounting so a planned failure
        of allocation N is independent of the budget axes.
        """
        faults = self.faults
        if faults is not None and faults.fails_alloc(self.allocations):
            bus = self.bus
            if bus is not None:
                bus.emit("robust.fault", index=self.allocations,
                         what=f"injected failure of allocation "
                              f"#{self.allocations} ({where})")
            raise ResourceExhausted(
                "fault", f"injected failure of allocation "
                         f"#{self.allocations} ({where})")
        self.allocations += 1
        self.alloc_bytes += size
        budget = self.budget
        if budget.max_allocations is not None and \
                self.allocations > budget.max_allocations:
            self.cut("allocations",
                     f"allocation #{self.allocations} ({where}) over the "
                     f"{budget.max_allocations}-allocation budget")
        if budget.max_alloc_bytes is not None and \
                self.alloc_bytes > budget.max_alloc_bytes:
            self.cut("memory",
                     f"{self.alloc_bytes} bytes reserved ({where}) over "
                     f"the {budget.max_alloc_bytes}-byte budget")

    def check_deadline(self, steps: int) -> None:
        """Raise when the wall-clock deadline has passed (the
        interpreter calls this every 1024 steps)."""
        if self.deadline_at is not None and \
                time.monotonic() >= self.deadline_at:
            self.cut("deadline",
                     f"wall-clock deadline of {self.budget.deadline}s "
                     f"passed at step {steps}")
