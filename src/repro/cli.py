"""``cheri-run``/``repro``: run CHERI C programs, regenerate the paper
reports, and drive the differential fuzzer.

Usage::

    cheri-run test.c                  # reference semantics (cerberus)
    cheri-run test.c --impl clang-riscv-O3
    cheri-run test.c --all            # compare every implementation
    cheri-run --report table1        # regenerate Table 1
    cheri-run --report compliance    # the S5 comparison
    cheri-run --list                 # list known implementations
    repro fuzz --seed 0 --iterations 200
    repro fuzz --seed 0 --time-budget 30 --corpus-dir tests/corpus
"""

from __future__ import annotations

import argparse
import sys

from repro.impls import ALL_IMPLEMENTATIONS, by_name


def fuzz_main(argv: list[str]) -> int:
    """The ``fuzz`` subcommand: differential fuzzing of the registry."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Generate random CHERI C programs, run them on every "
                    "registered implementation, and classify every "
                    "divergence against the executable semantics")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default: 0)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="number of programs to generate "
                             "(default: 100 unless --time-budget is given)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop generating after this many seconds")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write minimized finding cases to this "
                             "regression-corpus directory")
    parser.add_argument("--save-known", action="store_true",
                        help="also write minimized known-cause divergence "
                             "cases to the corpus directory")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-iteration progress output")
    args = parser.parse_args(argv)

    from repro.fuzz import run_fuzz
    from repro.reporting.tables import render_fuzz_summary

    def progress(index: int, report) -> None:
        if not args.quiet and index % 25 == 0:
            print(f"  ... {index} programs, "
                  f"{report.divergence_total} divergences so far",
                  file=sys.stderr)

    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        save_known=args.save_known,
        progress=progress)
    print(render_fuzz_summary(report), end="")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    return _run_main(argv)


def _run_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="cheri-run",
        description="Run a CHERI C program under the executable semantics")
    parser.add_argument("file", nargs="?", help="C source file")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--all", action="store_true",
                        help="run under every implementation and compare")
    parser.add_argument("--report", choices=("table1", "compliance"),
                        help="regenerate a paper artefact instead of "
                             "running a file")
    parser.add_argument("--list", action="store_true",
                        help="list the known implementations")
    args = parser.parse_args(argv)

    if args.list:
        from repro.impls.registry import _BY_NAME
        for name in sorted(_BY_NAME):
            print(f"{name:32s} {_BY_NAME[name].description}")
        return 0

    if args.report:
        from repro.reporting.tables import render_compliance, render_table1
        if args.report == "table1":
            print(render_table1())
        else:
            from repro.testsuite.compare import compare_implementations
            reports = compare_implementations(ALL_IMPLEMENTATIONS)
            print(render_compliance(reports))
        return 0

    if args.file is None:
        parser.error("a C source file is required unless --report/--list "
                     "is given")

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()

    if args.all:
        for impl in ALL_IMPLEMENTATIONS:
            outcome = impl.run(source)
            print(f"== {impl.name}: {outcome.describe()}")
            if outcome.stdout:
                sys.stdout.write(outcome.stdout)
        return 0

    impl = by_name(args.impl)
    outcome = impl.run(source)
    if outcome.stdout:
        sys.stdout.write(outcome.stdout)
    print(f"[{impl.name}] {outcome.describe()}", file=sys.stderr)
    return outcome.exit_status if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
