"""``cheri-run``/``repro``: run CHERI C programs, regenerate the paper
reports, and drive the differential fuzzer.

Usage::

    cheri-run test.c                  # reference semantics (cerberus)
    cheri-run test.c --impl clang-riscv-O3
    cheri-run test.c --all            # compare every implementation
    cheri-run --report table1        # regenerate Table 1
    cheri-run --report compliance    # the S5 comparison
    cheri-run --list                 # list known implementations
    repro fuzz --seed 0 --iterations 200
    repro fuzz --seed 0 --time-budget 30 --corpus-dir tests/corpus
    repro trace test.c --explain     # semantic event trace + UB explainer
    repro trace test.c --jsonl out.jsonl --metrics
"""

from __future__ import annotations

import argparse
import sys

from repro.impls import ALL_IMPLEMENTATIONS, by_name


def fuzz_main(argv: list[str]) -> int:
    """The ``fuzz`` subcommand: differential fuzzing of the registry."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Generate random CHERI C programs, run them on every "
                    "registered implementation, and classify every "
                    "divergence against the executable semantics")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default: 0)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="number of programs to generate "
                             "(default: 100 unless --time-budget is given)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop generating after this many seconds")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write minimized finding cases to this "
                             "regression-corpus directory")
    parser.add_argument("--save-known", action="store_true",
                        help="also write minimized known-cause divergence "
                             "cases to the corpus directory")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write reference JSONL event traces of every "
                             "finding's minimized reproducer to this "
                             "directory")
    parser.add_argument("--preserve-explanation", action="store_true",
                        help="shrink findings under the 'same explaining "
                             "event' predicate: minimisation must keep the "
                             "reference trace's explaining signature")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-iteration progress output")
    args = parser.parse_args(argv)

    from repro.fuzz import run_fuzz
    from repro.reporting.tables import render_fuzz_summary

    def progress(index: int, report) -> None:
        if not args.quiet and index % 25 == 0:
            print(f"  ... {index} programs, "
                  f"{report.divergence_total} divergences so far",
                  file=sys.stderr)

    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        save_known=args.save_known,
        trace_dir=args.trace_dir,
        preserve_explanation=args.preserve_explanation,
        progress=progress)
    print(render_fuzz_summary(report), end="")
    return 0 if report.ok else 1


def trace_main(argv: list[str]) -> int:
    """The ``trace`` subcommand: run one program with the event-trace
    subsystem attached and report what the semantics observed."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run a CHERI C program with semantic event tracing: "
                    "allocation lifecycle, provenance transitions, "
                    "capability derivations, and every UB check")
    parser.add_argument("file", help="C source file")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--jsonl", default=None, metavar="FILE",
                        help="write the trace as JSON Lines "
                             "('-' for stdout)")
    parser.add_argument("--explain", action="store_true",
                        help="reconstruct the causal chain behind the "
                             "outcome (UB catalogue entry, trap, or ghost "
                             "excursion)")
    parser.add_argument("--ring", type=int, default=None, metavar="N",
                        help="keep only the last N events (bounded memory "
                             "for long runs)")
    parser.add_argument("--metrics", action="store_true",
                        help="print run metrics (event counts, UB "
                             "verdicts, allocator totals)")
    args = parser.parse_args(argv)

    from repro.obs import EventBus, Metrics, TraceRecorder, explain

    impl = by_name(args.impl)
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()

    bus = EventBus()
    recorder = TraceRecorder(ring=args.ring)
    recorder.attach(bus)
    metrics = Metrics()
    metrics.attach(bus)
    metrics.start()
    outcome = impl.run(source, bus=bus)
    metrics.finish(steps=bus.step)

    if outcome.stdout:
        sys.stdout.write(outcome.stdout)
    if args.jsonl == "-":
        recorder.write_jsonl(sys.stdout)
    elif args.jsonl is not None:
        count = recorder.write_jsonl(args.jsonl)
        print(f"[{impl.name}] wrote {count} events to {args.jsonl}",
              file=sys.stderr)
    if args.jsonl is None and not args.explain and not args.metrics:
        # Bare `repro trace prog.c`: human-readable event log.
        for event in recorder.events():
            print(f"  step {event.step:>4}  {event.kind:<16} {event.what}")
    if args.explain:
        sys.stdout.write(explain(recorder.events(),
                                 outcome=outcome.describe()))
    if args.metrics:
        sys.stdout.write(metrics.summary())
    print(f"[{impl.name}] {outcome.describe()}", file=sys.stderr)
    return outcome.exit_status if outcome.ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    return _run_main(argv)


def _run_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="cheri-run",
        description="Run a CHERI C program under the executable semantics")
    parser.add_argument("file", nargs="?", help="C source file")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--all", action="store_true",
                        help="run under every implementation and compare")
    parser.add_argument("--report", choices=("table1", "compliance"),
                        help="regenerate a paper artefact instead of "
                             "running a file")
    parser.add_argument("--list", action="store_true",
                        help="list the known implementations and their "
                             "memory-model options")
    parser.add_argument("--metrics", action="store_true",
                        help="print run metrics (event counts, UB "
                             "verdicts, allocator totals) after the run")
    args = parser.parse_args(argv)

    if args.list:
        from repro.impls.registry import _BY_NAME
        for name in sorted(_BY_NAME):
            impl = _BY_NAME[name]
            print(f"{name:32s} {impl.description}")
            print(f"{'':32s}   mode={impl.mode.name.lower()} "
                  f"O{impl.opt_level} {impl.options.describe()} "
                  f"subobject-bounds="
                  f"{'on' if impl.subobject_bounds else 'off'}")
        return 0

    if args.report:
        from repro.reporting.tables import render_compliance, render_table1
        if args.report == "table1":
            print(render_table1())
        else:
            from repro.testsuite.compare import compare_implementations
            reports = compare_implementations(ALL_IMPLEMENTATIONS)
            print(render_compliance(reports))
        return 0

    if args.file is None:
        parser.error("a C source file is required unless --report/--list "
                     "is given")

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()

    def run_with_metrics(impl):
        if not args.metrics:
            return impl.run(source), None
        from repro.obs import EventBus, Metrics
        bus = EventBus()
        metrics = Metrics()
        metrics.attach(bus)
        metrics.start()
        outcome = impl.run(source, bus=bus)
        metrics.finish(steps=bus.step)
        return outcome, metrics

    if args.all:
        for impl in ALL_IMPLEMENTATIONS:
            outcome, metrics = run_with_metrics(impl)
            print(f"== {impl.name}: {outcome.describe()}")
            if outcome.stdout:
                sys.stdout.write(outcome.stdout)
            if metrics is not None:
                sys.stdout.write(metrics.summary())
        return 0

    impl = by_name(args.impl)
    outcome, metrics = run_with_metrics(impl)
    if outcome.stdout:
        sys.stdout.write(outcome.stdout)
    if metrics is not None:
        sys.stdout.write(metrics.summary())
    print(f"[{impl.name}] {outcome.describe()}", file=sys.stderr)
    return outcome.exit_status if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
