"""``cheri-run``: run CHERI C programs and regenerate the paper reports.

Usage::

    cheri-run test.c                  # reference semantics (cerberus)
    cheri-run test.c --impl clang-riscv-O3
    cheri-run test.c --all            # compare every implementation
    cheri-run --report table1        # regenerate Table 1
    cheri-run --report compliance    # the S5 comparison
    cheri-run --list                 # list known implementations
"""

from __future__ import annotations

import argparse
import sys

from repro.impls import ALL_IMPLEMENTATIONS, by_name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cheri-run",
        description="Run a CHERI C program under the executable semantics")
    parser.add_argument("file", nargs="?", help="C source file")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--all", action="store_true",
                        help="run under every implementation and compare")
    parser.add_argument("--report", choices=("table1", "compliance"),
                        help="regenerate a paper artefact instead of "
                             "running a file")
    parser.add_argument("--list", action="store_true",
                        help="list the known implementations")
    args = parser.parse_args(argv)

    if args.list:
        from repro.impls.registry import _BY_NAME
        for name in sorted(_BY_NAME):
            print(f"{name:32s} {_BY_NAME[name].description}")
        return 0

    if args.report:
        from repro.reporting.tables import render_compliance, render_table1
        if args.report == "table1":
            print(render_table1())
        else:
            from repro.testsuite.compare import compare_implementations
            reports = compare_implementations(ALL_IMPLEMENTATIONS)
            print(render_compliance(reports))
        return 0

    if args.file is None:
        parser.error("a C source file is required unless --report/--list "
                     "is given")

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()

    if args.all:
        for impl in ALL_IMPLEMENTATIONS:
            outcome = impl.run(source)
            print(f"== {impl.name}: {outcome.describe()}")
            if outcome.stdout:
                sys.stdout.write(outcome.stdout)
        return 0

    impl = by_name(args.impl)
    outcome = impl.run(source)
    if outcome.stdout:
        sys.stdout.write(outcome.stdout)
    print(f"[{impl.name}] {outcome.describe()}", file=sys.stderr)
    return outcome.exit_status if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
