"""``cheri-run``/``repro``: run CHERI C programs, regenerate the paper
reports, and drive the differential fuzzer.

Usage::

    cheri-run test.c                  # reference semantics (cerberus)
    cheri-run test.c --impl clang-riscv-O3
    cheri-run test.c --all            # compare every implementation
    cheri-run --report table1        # regenerate Table 1
    cheri-run --report compliance    # the S5 comparison
    cheri-run --list                 # list known implementations
    repro suite --impl gcc-morello-O0 --jobs 4
    repro compare --jobs 4           # parallel S5 compliance report
    repro fuzz --seed 0 --iterations 200 --jobs 4
    repro fuzz --seed 0 --time-budget 30 --corpus-dir tests/corpus
    repro trace test.c --explain     # semantic event trace + UB explainer
    repro trace test.c --jsonl out.jsonl --metrics
    repro run test.c --dump-core     # print the elaborated Core IR
    repro suite --evaluator ast      # run on the recursive AST walker
    repro compare --allocator freelist   # the grid over reusing heaps
    repro fuzz --allocator freelist --seed 0   # + allocator targets

``--jobs N`` fans runs across N worker processes (0 = all cores) with
results stitched back in input order, so reports are bit-identical to
serial runs; ``--no-compile-cache`` disables the shared compilation
cache (see docs/PERFORMANCE.md).  ``--max-steps/--max-allocations/
--max-alloc-bytes/--deadline`` put a resource budget on every run, so
even a nonterminating program ends with a structured
``resource_exhausted`` outcome (see docs/ROBUSTNESS.md).
``--evaluator {ast,core,compiled}`` selects the execution strategy
(default: ``compiled``, the direct-threaded closure backend; see
docs/PERFORMANCE.md) and ``--dump-core`` prints the elaborated listing
-- with fold/fuse annotations under ``compiled`` -- instead of running.
"""

from __future__ import annotations

import argparse
import sys

from repro.impls import ALL_IMPLEMENTATIONS, by_name


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The execution-engine flags shared by run/suite/compare/fuzz."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan runs across N worker processes "
                             "(0 = all cores; default: 1, serial)")
    parser.add_argument("--no-compile-cache", action="store_true",
                        help="disable the shared compilation cache "
                             "(each run re-parses and re-optimises)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="directory for the on-disk compile cache "
                             "shared across processes and invocations "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the on-disk compile-cache layer "
                             "(in-memory caching still applies)")
    parser.add_argument("--evaluator",
                        choices=("ast", "core", "compiled"),
                        default=None,
                        help="execution strategy: the recursive AST "
                             "walker, the iterative Core-IR evaluator, "
                             "or the direct-threaded compiled backend "
                             "(default: compiled; all three are held "
                             "byte-identical by the differential gate)")
    parser.add_argument("--allocator",
                        choices=("bump", "freelist", "quarantine"),
                        default=None,
                        help="heap allocator policy override: bump "
                             "(never reuse; the default), freelist "
                             "(freed addresses recycle -- use-after-free "
                             "aliasing), or quarantine (FIFO-delayed "
                             "reuse, CHERIoT-style); run/suite/compare "
                             "re-run the selection under the policy, "
                             "fuzz adds policy targets to the grid")
    budgets = parser.add_argument_group(
        "resource budgets",
        "per-run limits (docs/ROBUSTNESS.md); a run over budget ends "
        "with a structured resource_exhausted outcome instead of "
        "hanging.  With --jobs, a worker blowing --deadline is torn "
        "down and the case retried/quarantined by the pool.")
    budgets.add_argument("--max-steps", type=int, default=None,
                         metavar="N",
                         help="interpreter evaluation-step limit per run")
    budgets.add_argument("--max-allocations", type=int, default=None,
                         metavar="N",
                         help="allocation-count limit per run")
    budgets.add_argument("--max-alloc-bytes", type=int, default=None,
                         metavar="N",
                         help="allocated-bytes limit per run")
    budgets.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock limit per run")


def _allocator_override(args, impl):
    """``impl`` under the ``--allocator`` policy (None = unchanged)."""
    policy = getattr(args, "allocator", None)
    if policy is None:
        return impl
    from repro.impls import with_allocator
    return with_allocator(impl, policy)


def _budget_from(args):
    """The Budget described by the CLI flags (None when no flag set)."""
    if (args.max_steps is None and args.max_allocations is None
            and args.max_alloc_bytes is None and args.deadline is None):
        return None
    from repro.robust import Budget
    return Budget(max_steps=args.max_steps,
                  max_alloc_bytes=args.max_alloc_bytes,
                  max_allocations=args.max_allocations,
                  deadline=args.deadline)


def _apply_cache_flag(args) -> bool:
    """Set the process-wide cache switches (in-memory and on-disk);
    returns the use_cache value to thread into worker processes (the
    disk configuration travels separately, through the pool's worker
    initializer)."""
    from repro.perf import configure_disk_cache, set_cache_enabled
    use_cache = not args.no_compile_cache
    set_cache_enabled(use_cache)
    configure_disk_cache(
        enabled=use_cache and not getattr(args, "no_disk_cache", False),
        directory=getattr(args, "cache_dir", None))
    return use_cache


def _apply_evaluator_flag(args) -> str | None:
    """Set the process-wide evaluator default when ``--evaluator`` is
    given; returns the choice to thread into worker processes (None =
    flag absent, keep the default)."""
    if getattr(args, "evaluator", None) is not None:
        from repro.core.coreeval import set_default_evaluator
        set_default_evaluator(args.evaluator)
    return getattr(args, "evaluator", None)


def fuzz_main(argv: list[str]) -> int:
    """The ``fuzz`` subcommand: differential fuzzing of the registry."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Generate random CHERI C programs, run them on every "
                    "registered implementation, and classify every "
                    "divergence against the executable semantics")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default: 0)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="number of programs to generate "
                             "(default: 100 unless --time-budget is given)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop generating after this many seconds")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="blind mode: write minimized finding cases "
                             "to this regression-corpus directory; "
                             "guided mode: the campaign corpus "
                             "(seeds/, findings/, state.json)")
    guided = parser.add_argument_group(
        "coverage-guided campaigns",
        "AFL-style guided fuzzing (docs/FUZZING.md): coverage-advancing "
        "programs persist as corpus seeds and later candidates mutate "
        "them; findings dedup to distinct bugs by explaining signature.")
    guided.add_argument("--guided", action="store_true",
                        help="run a coverage-guided campaign against "
                             "--corpus-dir instead of the blind loop")
    guided.add_argument("--shard", default=None, metavar="I/N",
                        help="evaluate only candidate indices congruent "
                             "to I mod N (guided; shard corpora merge "
                             "byte-for-byte via --merge)")
    guided.add_argument("--resume", action="store_true",
                        help="continue the campaign from the corpus "
                             "directory's stored cursor (guided)")
    guided.add_argument("--merge", action="append", default=None,
                        metavar="SRC",
                        help="merge this shard corpus into --corpus-dir "
                             "(repeatable; no campaign is run)")
    guided.add_argument("--minimise-corpus", action="store_true",
                        help="greedily prune --corpus-dir seeds whose "
                             "coverage is subsumed (no campaign is run)")
    parser.add_argument("--save-known", action="store_true",
                        help="also write minimized known-cause divergence "
                             "cases to the corpus directory")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write reference JSONL event traces of every "
                             "finding's minimized reproducer to this "
                             "directory")
    parser.add_argument("--preserve-explanation", action="store_true",
                        help="shrink findings under the 'same explaining "
                             "event' predicate: minimisation must keep the "
                             "reference trace's explaining signature")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-iteration progress output")
    _add_engine_flags(parser)
    args = parser.parse_args(argv)
    use_cache = _apply_cache_flag(args)
    evaluator = _apply_evaluator_flag(args)

    from repro.fuzz import run_fuzz
    from repro.reporting.tables import render_fuzz_summary
    from repro.robust import DEFAULT_FUZZ_BUDGET

    budget = _budget_from(args) or DEFAULT_FUZZ_BUDGET

    # --allocator POLICY extends the differential grid with targets
    # running that heap-reuse policy and switches on the generator's
    # heap-reuse statement shapes so the axis is actually exercised.
    from repro.fuzz.oracle import FUZZ_TARGETS, allocator_fuzz_targets
    policy_targets = allocator_fuzz_targets(args.allocator) \
        if args.allocator else ()
    # Keep the default object identity: the drivers pickle the target
    # tuple to workers only when it is not FUZZ_TARGETS itself.
    targets = FUZZ_TARGETS + policy_targets if policy_targets \
        else FUZZ_TARGETS
    heap_reuse = bool(policy_targets)

    guided_mode = (args.guided or args.merge or args.minimise_corpus
                   or args.shard or args.resume)
    if guided_mode and args.corpus_dir is None:
        parser.error("--guided/--shard/--resume/--merge/"
                     "--minimise-corpus require --corpus-dir")
    if (args.shard or args.resume) and not args.guided:
        parser.error("--shard/--resume only apply to --guided campaigns")

    if args.merge:
        from repro.fuzz import merge_corpus_dirs
        stats = merge_corpus_dirs(args.corpus_dir, args.merge)
        print(f"merged {len(args.merge)} shard corpora into "
              f"{args.corpus_dir}: +{stats['seeds']} seed(s), "
              f"+{stats['bugs']} distinct bug(s), "
              f"+{stats['witnesses']} witness(es)")
        return 0

    if args.minimise_corpus:
        from repro.fuzz import minimise_corpus
        kept, removed = minimise_corpus(args.corpus_dir)
        print(f"minimised {args.corpus_dir}: kept {len(kept)} seed(s), "
              f"removed {len(removed)} subsumed seed(s)")
        return 0

    if args.guided:
        from repro.fuzz import CampaignError, parse_shard, run_campaign
        from repro.reporting.tables import render_campaign_summary

        def campaign_progress(count: int, report) -> None:
            if not args.quiet and count % 25 == 0:
                print(f"  ... {count} candidates, "
                      f"{len(report.new_seeds)} new seeds, "
                      f"{len(report.new_bugs)} new distinct bugs so far",
                      file=sys.stderr)

        try:
            report = run_campaign(
                seed=args.seed,
                iterations=args.iterations,
                time_budget=args.time_budget,
                corpus_dir=args.corpus_dir,
                shard=parse_shard(args.shard) if args.shard else (0, 1),
                resume=args.resume,
                targets=targets,
                jobs=args.jobs,
                use_cache=use_cache,
                budget=budget,
                evaluator=evaluator,
                progress=campaign_progress)
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_campaign_summary(report), end="")
        return 0 if report.ok else 1

    def progress(index: int, report) -> None:
        if not args.quiet and index % 25 == 0:
            print(f"  ... {index} programs, "
                  f"{report.divergence_total} divergences so far",
                  file=sys.stderr)

    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        targets=targets,
        heap_reuse=heap_reuse,
        corpus_dir=args.corpus_dir,
        save_known=args.save_known,
        trace_dir=args.trace_dir,
        preserve_explanation=args.preserve_explanation,
        progress=progress,
        jobs=args.jobs,
        use_cache=use_cache,
        budget=budget,
        evaluator=evaluator)
    print(render_fuzz_summary(report), end="")
    return 0 if report.ok else 1


def _select_cases(names: list[str] | None):
    """Resolve ``--case`` filters against the suite (None = full)."""
    from repro.testsuite.suite import all_cases
    if not names:
        return None
    by_case_name = {case.name: case for case in all_cases()}
    unknown = [name for name in names if name not in by_case_name]
    if unknown:
        raise SystemExit(f"unknown test case(s): {', '.join(unknown)}; "
                         f"known cases: {', '.join(sorted(by_case_name))}")
    return tuple(by_case_name[name] for name in names)


def suite_main(argv: list[str]) -> int:
    """The ``suite`` subcommand: the validation suite on one impl."""
    parser = argparse.ArgumentParser(
        prog="repro suite",
        description="Run the 94-test validation suite against one "
                    "implementation and report pass/fail/no-claim")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--case", action="append", default=None,
                        metavar="NAME",
                        help="run only this case (repeatable)")
    parser.add_argument("--metrics", action="store_true",
                        help="print merged run metrics for the suite")
    _add_engine_flags(parser)
    args = parser.parse_args(argv)
    use_cache = _apply_cache_flag(args)
    evaluator = _apply_evaluator_flag(args)

    from repro.testsuite.compare import run_suite

    report = run_suite(_allocator_override(args, by_name(args.impl)),
                       _select_cases(args.case),
                       jobs=args.jobs, with_metrics=args.metrics,
                       use_cache=use_cache, budget=_budget_from(args),
                       evaluator=evaluator)
    print(report.summary_line())
    for result in report.failures():
        expected = result.expected.describe() if result.expected else "?"
        print(f"  FAIL {result.case.name}: expected {expected}, "
              f"got {result.outcome.describe()}")
    if args.metrics and report.metrics is not None:
        sys.stdout.write(report.metrics.summary())
    if args.metrics:
        from repro.perf import global_cache
        sys.stdout.write(global_cache().stats.summary())
    return 0 if report.failed == 0 else 1


def compare_main(argv: list[str]) -> int:
    """The ``compare`` subcommand: the S5 compliance comparison."""
    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Run the validation suite against every registered "
                    "implementation and render the S5 compliance report")
    parser.add_argument("--case", action="append", default=None,
                        metavar="NAME",
                        help="compare only this case (repeatable)")
    _add_engine_flags(parser)
    args = parser.parse_args(argv)
    use_cache = _apply_cache_flag(args)
    evaluator = _apply_evaluator_flag(args)

    from repro.reporting.tables import render_compliance
    from repro.testsuite.compare import compare_implementations

    grid = tuple(_allocator_override(args, impl)
                 for impl in ALL_IMPLEMENTATIONS)
    reports = compare_implementations(grid,
                                      _select_cases(args.case),
                                      jobs=args.jobs, use_cache=use_cache,
                                      budget=_budget_from(args),
                                      evaluator=evaluator)
    print(render_compliance(reports))
    return 0 if all(report.failed == 0 for report in reports) else 1


def trace_main(argv: list[str]) -> int:
    """The ``trace`` subcommand: run one program with the event-trace
    subsystem attached and report what the semantics observed."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run a CHERI C program with semantic event tracing: "
                    "allocation lifecycle, provenance transitions, "
                    "capability derivations, and every UB check")
    parser.add_argument("file", help="C source file")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--jsonl", default=None, metavar="FILE",
                        help="write the trace as JSON Lines "
                             "('-' for stdout)")
    parser.add_argument("--explain", action="store_true",
                        help="reconstruct the causal chain behind the "
                             "outcome (UB catalogue entry, trap, or ghost "
                             "excursion)")
    parser.add_argument("--ring", type=int, default=None, metavar="N",
                        help="keep only the last N events (bounded memory "
                             "for long runs)")
    parser.add_argument("--metrics", action="store_true",
                        help="print run metrics (event counts, UB "
                             "verdicts, allocator totals)")
    parser.add_argument("--evaluator",
                        choices=("ast", "core", "compiled"),
                        default=None,
                        help="execution strategy (default: compiled; "
                             "traced compiled runs dispatch through the "
                             "Core loop so every event carries the Core "
                             "op id that produced it)")
    args = parser.parse_args(argv)
    evaluator = _apply_evaluator_flag(args)

    from repro.obs import EventBus, Metrics, TraceRecorder, explain

    impl = by_name(args.impl)
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()

    bus = EventBus()
    recorder = TraceRecorder(ring=args.ring)
    recorder.attach(bus)
    metrics = Metrics()
    metrics.attach(bus)
    metrics.start()
    outcome = impl.run(source, bus=bus, evaluator=evaluator)
    metrics.finish(steps=bus.step)

    if outcome.stdout:
        sys.stdout.write(outcome.stdout)
    if args.jsonl == "-":
        recorder.write_jsonl(sys.stdout)
    elif args.jsonl is not None:
        count = recorder.write_jsonl(args.jsonl)
        print(f"[{impl.name}] wrote {count} events to {args.jsonl}",
              file=sys.stderr)
    if args.jsonl is None and not args.explain and not args.metrics:
        # Bare `repro trace prog.c`: human-readable event log.
        for event in recorder.events():
            print(f"  step {event.step:>4}  {event.kind:<16} {event.what}")
    if args.explain:
        sys.stdout.write(explain(recorder.events(),
                                 outcome=outcome.describe()))
    if args.metrics:
        sys.stdout.write(metrics.summary())
    print(f"[{impl.name}] {outcome.describe()}", file=sys.stderr)
    return outcome.exit_status if outcome.ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "suite":
        return suite_main(argv[1:])
    if argv and argv[0] == "compare":
        return compare_main(argv[1:])
    if argv and argv[0] == "run":
        return _run_main(argv[1:])
    return _run_main(argv)


def _run_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="cheri-run",
        description="Run a CHERI C program under the executable semantics")
    parser.add_argument("file", nargs="?", help="C source file")
    parser.add_argument("--impl", default="cerberus",
                        help="implementation name (default: cerberus)")
    parser.add_argument("--all", action="store_true",
                        help="run under every implementation and compare")
    parser.add_argument("--report", choices=("table1", "compliance"),
                        help="regenerate a paper artefact instead of "
                             "running a file")
    parser.add_argument("--list", action="store_true",
                        help="list the known implementations and their "
                             "memory-model options")
    parser.add_argument("--metrics", action="store_true",
                        help="print run metrics (event counts, UB "
                             "verdicts, allocator totals) after the run")
    parser.add_argument("--dump-core", action="store_true",
                        help="print the elaborated Core IR listing for "
                             "the chosen implementation instead of "
                             "running the program")
    _add_engine_flags(parser)
    args = parser.parse_args(argv)
    use_cache = _apply_cache_flag(args)
    evaluator = _apply_evaluator_flag(args)

    if args.list:
        from repro.impls.registry import _BY_NAME
        for name in sorted(_BY_NAME):
            impl = _BY_NAME[name]
            print(f"{name:32s} {impl.description}")
            print(f"{'':32s}   mode={impl.mode.name.lower()} "
                  f"O{impl.opt_level} {impl.options.describe()} "
                  f"subobject-bounds="
                  f"{'on' if impl.subobject_bounds else 'off'} "
                  f"allocator={impl.allocator}")
        return 0

    if args.report:
        from repro.reporting.tables import render_compliance, render_table1
        if args.report == "table1":
            print(render_table1())
        else:
            from repro.testsuite.compare import compare_implementations
            reports = compare_implementations(ALL_IMPLEMENTATIONS,
                                              jobs=args.jobs,
                                              use_cache=use_cache)
            print(render_compliance(reports))
        return 0

    if args.file is None:
        parser.error("a C source file is required unless --report/--list "
                     "is given")

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()

    if args.dump_core:
        from repro.core.coreeval import default_evaluator
        from repro.errors import CSyntaxError, CTypeError
        impl = by_name(args.impl)
        try:
            if (evaluator or default_evaluator()) == "compiled":
                # Under the compiled evaluator the listing additionally
                # annotates folded regions and fused pairs.
                from repro.core.compile import render_compiled
                from repro.perf import compile_threaded
                compiled = compile_threaded(impl, source,
                                            use_cache=use_cache)
                print(render_compiled(compiled))
            else:
                from repro.core.coreir import render_core
                from repro.perf import compile_core
                core = compile_core(impl, source, use_cache=use_cache)
                print(render_core(core))
        except (CSyntaxError, CTypeError) as exc:
            print(f"[{impl.name}] rejected: {exc}", file=sys.stderr)
            return 1
        return 0

    budget = _budget_from(args)

    def run_with_metrics(impl):
        if not args.metrics:
            return impl.run(source, budget=budget,
                            evaluator=evaluator), None
        from repro.obs import EventBus, Metrics
        bus = EventBus()
        metrics = Metrics()
        metrics.attach(bus)
        metrics.start()
        outcome = impl.run(source, bus=bus, budget=budget,
                           evaluator=evaluator)
        metrics.finish(steps=bus.step)
        return outcome, metrics

    if args.all:
        for impl in ALL_IMPLEMENTATIONS:
            impl = _allocator_override(args, impl)
            outcome, metrics = run_with_metrics(impl)
            print(f"== {impl.name}: {outcome.describe()}")
            if outcome.stdout:
                sys.stdout.write(outcome.stdout)
            if metrics is not None:
                sys.stdout.write(metrics.summary())
        return 0

    impl = _allocator_override(args, by_name(args.impl))
    outcome, metrics = run_with_metrics(impl)
    if outcome.stdout:
        sys.stdout.write(outcome.stdout)
    if metrics is not None:
        sys.stdout.write(metrics.summary())
        from repro.perf import global_cache
        sys.stdout.write(global_cache().stats.summary())
    print(f"[{impl.name}] {outcome.describe()}", file=sys.stderr)
    return outcome.exit_status if outcome.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
