"""The CHERI C type system.

C types are architecture-neutral descriptions; all sizing, alignment, and
integer-range questions go through :class:`~repro.ctypes.layout.TargetLayout`,
which is derived from a :class:`~repro.capability.abstract.Architecture`
(S3.10: ``ptraddr_t`` has implementation-defined width; ``(u)intptr_t``
is capability-sized).
"""

from repro.ctypes.types import (
    ArrayT,
    CType,
    Field,
    FuncT,
    IKind,
    Integer,
    Pointer,
    StructT,
    UnionT,
    Void,
    BOOL,
    CHAR,
    SCHAR,
    UCHAR,
    SHORT,
    USHORT,
    INT,
    UINT,
    LONG,
    ULONG,
    LLONG,
    ULLONG,
    INTPTR,
    UINTPTR,
    PTRADDR,
    SIZE_T,
    PTRDIFF_T,
    VOID,
    strip_const,
    compatible,
)
from repro.ctypes.layout import TargetLayout

__all__ = [
    "ArrayT", "CType", "Field", "FuncT", "IKind", "Integer", "Pointer",
    "StructT", "UnionT", "Void", "TargetLayout",
    "BOOL", "CHAR", "SCHAR", "UCHAR", "SHORT", "USHORT", "INT", "UINT",
    "LONG", "ULONG", "LLONG", "ULLONG", "INTPTR", "UINTPTR", "PTRADDR",
    "SIZE_T", "PTRDIFF_T", "VOID", "strip_const", "compatible",
]
