"""C type representations.

The type grammar covers everything the paper's test programs use:
integer types (including the CHERI C additions ``intptr_t``,
``uintptr_t`` -- capability-carrying -- and ``ptraddr_t``), pointers,
arrays, structs, unions, and function types.

CHERI C constraint (S3.7): "no other standard integer type shall have a
higher integer conversion rank than ``intptr_t`` and ``uintptr_t``" --
see :data:`RANK`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import CTypeError


class IKind(enum.Enum):
    """Integer type kinds. ``SIZE``/``PTRDIFF`` are distinct kinds so the
    frontend can report them by name, but alias LONG-width integers."""

    BOOL = "_Bool"
    CHAR = "char"
    SCHAR = "signed char"
    UCHAR = "unsigned char"
    SHORT = "short"
    USHORT = "unsigned short"
    INT = "int"
    UINT = "unsigned int"
    LONG = "long"
    ULONG = "unsigned long"
    LLONG = "long long"
    ULLONG = "unsigned long long"
    SIZE = "size_t"
    PTRDIFF = "ptrdiff_t"
    PTRADDR = "ptraddr_t"
    INTPTR = "intptr_t"
    UINTPTR = "uintptr_t"

    @property
    def is_signed(self) -> bool:
        return self in _SIGNED_KINDS

    @property
    def is_capability_carrying(self) -> bool:
        """True for the types represented by a full capability (S3.3)."""
        return self in _CAPABILITY_KINDS

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    # Members are singletons, so identity hashing is equivalent to the
    # default name hash -- and C-speed.  Layout tables, RANK, and signed
    # checks key dicts/sets by IKind on every integer operation.
    __hash__ = object.__hash__


_CAPABILITY_KINDS = frozenset({IKind.INTPTR, IKind.UINTPTR})

_SIGNED_KINDS = frozenset({
    IKind.CHAR,   # char is signed on our targets (AArch64 is unsigned in
                  # reality; signed matches the paper's x86-authored tests)
    IKind.SCHAR, IKind.SHORT, IKind.INT, IKind.LONG, IKind.LLONG,
    IKind.PTRDIFF, IKind.INTPTR,
})


#: Integer conversion ranks.  ``(u)intptr_t`` are maximal (S3.7).
RANK: dict[IKind, int] = {
    IKind.BOOL: 0,
    IKind.CHAR: 1, IKind.SCHAR: 1, IKind.UCHAR: 1,
    IKind.SHORT: 2, IKind.USHORT: 2,
    IKind.INT: 3, IKind.UINT: 3,
    IKind.LONG: 4, IKind.ULONG: 4,
    IKind.SIZE: 4, IKind.PTRDIFF: 4, IKind.PTRADDR: 4,
    IKind.LLONG: 5, IKind.ULLONG: 5,
    IKind.INTPTR: 6, IKind.UINTPTR: 6,
}


@dataclass(frozen=True)
class CType:
    """Base class for C types. ``const`` is the only qualifier modelled;
    S3.9 is the only place it has capability-level meaning."""

    const: bool = field(default=False, kw_only=True)

    def qualified_const(self) -> "CType":
        return replace(self, const=True)

    def unqualified(self) -> "CType":
        return replace(self, const=False) if self.const else self

    # Overridden by subclasses:
    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_pointer

    @property
    def is_complete(self) -> bool:
        return True


@dataclass(frozen=True)
class Void(CType):
    @property
    def is_complete(self) -> bool:
        return False

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class Integer(CType):
    kind: IKind = IKind.INT

    @property
    def is_integer(self) -> bool:
        return True

    @property
    def is_signed(self) -> bool:
        return self.kind.is_signed

    @property
    def is_capability_carrying(self) -> bool:
        return self.kind.is_capability_carrying

    def __str__(self) -> str:
        prefix = "const " if self.const else ""
        return prefix + str(self.kind)


@dataclass(frozen=True)
class Pointer(CType):
    pointee: CType = field(default_factory=Void)

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        suffix = " const" if self.const else ""
        return f"{self.pointee}*{suffix}"


@dataclass(frozen=True)
class ArrayT(CType):
    elem: CType = field(default_factory=lambda: Integer(IKind.INT))
    length: int | None = None

    @property
    def is_complete(self) -> bool:
        return self.length is not None

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.elem}[{n}]"


@dataclass(frozen=True)
class Field:
    name: str
    ctype: CType


@dataclass(frozen=True)
class StructT(CType):
    tag: str = ""
    fields: tuple[Field, ...] | None = None

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def field_type(self, name: str) -> CType:
        for f in self.fields or ():
            if f.name == name:
                return f.ctype
        raise CTypeError(f"{self} has no member {name!r}")

    def __str__(self) -> str:
        return f"struct {self.tag}"

    def __eq__(self, other: object) -> bool:
        # struct identity is by tag (one definition per program)
        return (isinstance(other, StructT) and not isinstance(other, UnionT)
                and other.tag == self.tag)

    def __hash__(self) -> int:
        return hash(("struct", self.tag))


@dataclass(frozen=True, eq=False)
class UnionT(StructT):
    def __str__(self) -> str:
        return f"union {self.tag}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnionT) and other.tag == self.tag

    def __hash__(self) -> int:
        return hash(("union", self.tag))


@dataclass(frozen=True)
class FuncT(CType):
    ret: CType = field(default_factory=Void)
    params: tuple[CType, ...] = ()
    variadic: bool = False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.ret}({params})"


# -- canonical instances --------------------------------------------------

VOID = Void()
BOOL = Integer(IKind.BOOL)
CHAR = Integer(IKind.CHAR)
SCHAR = Integer(IKind.SCHAR)
UCHAR = Integer(IKind.UCHAR)
SHORT = Integer(IKind.SHORT)
USHORT = Integer(IKind.USHORT)
INT = Integer(IKind.INT)
UINT = Integer(IKind.UINT)
LONG = Integer(IKind.LONG)
ULONG = Integer(IKind.ULONG)
LLONG = Integer(IKind.LLONG)
ULLONG = Integer(IKind.ULLONG)
INTPTR = Integer(IKind.INTPTR)
UINTPTR = Integer(IKind.UINTPTR)
PTRADDR = Integer(IKind.PTRADDR)
SIZE_T = Integer(IKind.SIZE)
PTRDIFF_T = Integer(IKind.PTRDIFF)


def strip_const(ctype: CType) -> CType:
    """Remove top-level const (array element const also stripped, since
    arrays inherit qualification from their elements)."""
    if isinstance(ctype, ArrayT):
        return replace(ctype, const=False, elem=strip_const(ctype.elem))
    return ctype.unqualified()


def compatible(a: CType, b: CType) -> bool:
    """Loose compatibility for assignment/comparison diagnostics.

    Qualifiers are ignored; pointer targets are compared recursively with
    ``void*`` compatible with every object pointer.
    """
    a, b = strip_const(a), strip_const(b)
    if a == b:
        return True
    if isinstance(a, Pointer) and isinstance(b, Pointer):
        if isinstance(a.pointee, Void) or isinstance(b.pointee, Void):
            return True
        return compatible(a.pointee, b.pointee)
    if a.is_integer and b.is_integer:
        return True
    return False
