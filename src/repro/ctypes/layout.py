"""Target layout: sizes, alignments, integer ranges, struct layout.

Everything implementation-defined about types lives here, derived from an
:class:`~repro.capability.abstract.Architecture`:

* ``sizeof(intptr_t)`` is the capability size (16 on Morello, 8 on the
  CHERIoT-style target) while its *value range* is the address range --
  the capability metadata is storage, not value (S3.3).
* ``ptraddr_t`` is an unsigned integer of address width (S3.10).
* Pointers are capability-sized and capability-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.capability.abstract import Architecture
from repro.ctypes.types import (
    ArrayT,
    CType,
    FuncT,
    IKind,
    Integer,
    Pointer,
    RANK,
    StructT,
    UnionT,
    Void,
)
from repro.errors import CTypeError


@dataclass(frozen=True)
class FieldLayout:
    name: str
    ctype: CType
    offset: int


class TargetLayout:
    """Sizing and layout rules for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        bits64 = arch.address_width == 64
        self._int_sizes: dict[IKind, int] = {
            IKind.BOOL: 1,
            IKind.CHAR: 1, IKind.SCHAR: 1, IKind.UCHAR: 1,
            IKind.SHORT: 2, IKind.USHORT: 2,
            IKind.INT: 4, IKind.UINT: 4,
            IKind.LONG: 8 if bits64 else 4,
            IKind.ULONG: 8 if bits64 else 4,
            IKind.LLONG: 8, IKind.ULLONG: 8,
            IKind.SIZE: 8 if bits64 else 4,
            IKind.PTRDIFF: 8 if bits64 else 4,
            IKind.PTRADDR: arch.ptraddr_size,
            IKind.INTPTR: arch.capability_size,
            IKind.UINTPTR: arch.capability_size,
        }

    # -- integer properties ------------------------------------------------

    def int_size(self, kind: IKind) -> int:
        """Storage size in bytes (capability-sized for ``(u)intptr_t``)."""
        return self._int_sizes[kind]

    def value_width(self, kind: IKind) -> int:
        """Width in bits of the *value* range.

        For capability-carrying types this is the address width: the
        metadata half of the representation does not contribute to the
        integer value (S3.3, S4.3 ``integer_value``).
        """
        if kind.is_capability_carrying:
            return self.arch.address_width
        return self._int_sizes[kind] * 8

    def int_min(self, kind: IKind) -> int:
        if not kind.is_signed:
            return 0
        return -(1 << (self.value_width(kind) - 1))

    def int_max(self, kind: IKind) -> int:
        width = self.value_width(kind)
        if kind.is_signed:
            return (1 << (width - 1)) - 1
        return (1 << width) - 1

    def in_range(self, kind: IKind, value: int) -> bool:
        return self.int_min(kind) <= value <= self.int_max(kind)

    def wrap(self, kind: IKind, value: int) -> int:
        """Reduce ``value`` modulo the type's range (conversion to an
        unsigned type, or the implementation-defined signed conversion)."""
        width = self.value_width(kind)
        value &= (1 << width) - 1
        if kind.is_signed and value >> (width - 1):
            value -= 1 << width
        return value

    @staticmethod
    def rank(kind: IKind) -> int:
        return RANK[kind]

    # -- sizeof / alignof ----------------------------------------------------

    def sizeof(self, ctype: CType) -> int:
        if isinstance(ctype, Void):
            raise CTypeError("sizeof(void) is invalid")
        if isinstance(ctype, Integer):
            return self.int_size(ctype.kind)
        if isinstance(ctype, Pointer):
            return self.arch.capability_size
        if isinstance(ctype, ArrayT):
            if ctype.length is None:
                raise CTypeError("sizeof on incomplete array type")
            return self.sizeof(ctype.elem) * ctype.length
        if isinstance(ctype, (StructT, UnionT)):
            return self.struct_size(ctype)
        if isinstance(ctype, FuncT):
            raise CTypeError("sizeof on a function type")
        raise CTypeError(f"sizeof: unhandled type {ctype}")

    def alignof(self, ctype: CType) -> int:
        if isinstance(ctype, Integer):
            size = self.int_size(ctype.kind)
            if ctype.kind.is_capability_carrying:
                return self.arch.capability_size
            return size
        if isinstance(ctype, Pointer):
            return self.arch.capability_size
        if isinstance(ctype, ArrayT):
            return self.alignof(ctype.elem)
        if isinstance(ctype, (StructT, UnionT)):
            if ctype.fields is None:
                raise CTypeError(f"alignof on incomplete {ctype}")
            return max((self.alignof(f.ctype) for f in ctype.fields),
                       default=1)
        raise CTypeError(f"alignof: unhandled type {ctype}")

    # -- struct / union layout ---------------------------------------------

    def struct_fields(self, ctype: StructT) -> list[FieldLayout]:
        """Member offsets using the standard C layout algorithm."""
        if ctype.fields is None:
            raise CTypeError(f"layout of incomplete {ctype}")
        out: list[FieldLayout] = []
        if isinstance(ctype, UnionT):
            for f in ctype.fields:
                out.append(FieldLayout(f.name, f.ctype, 0))
            return out
        offset = 0
        for f in ctype.fields:
            align = self.alignof(f.ctype)
            offset = _align_up(offset, align)
            out.append(FieldLayout(f.name, f.ctype, offset))
            offset += self.sizeof(f.ctype)
        return out

    def struct_size(self, ctype: StructT) -> int:
        if ctype.fields is None:
            raise CTypeError(f"sizeof on incomplete {ctype}")
        align = self.alignof(ctype)
        if isinstance(ctype, UnionT):
            raw = max((self.sizeof(f.ctype) for f in ctype.fields), default=0)
        else:
            fields = self.struct_fields(ctype)
            raw = 0
            if fields:
                last = fields[-1]
                raw = last.offset + self.sizeof(last.ctype)
        return max(_align_up(raw, align), 1)

    def offsetof(self, ctype: StructT, member: str) -> int:
        for f in self.struct_fields(ctype):
            if f.name == member:
                return f.offset
        raise CTypeError(f"{ctype} has no member {member!r}")

    # -- capability-carrying predicate ---------------------------------------

    def is_capability_type(self, ctype: CType) -> bool:
        """Types represented at runtime by a full capability (S3.3)."""
        if isinstance(ctype, Pointer):
            return True
        return (isinstance(ctype, Integer)
                and ctype.kind.is_capability_carrying)


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
