"""Target layout: sizes, alignments, integer ranges, struct layout.

Everything implementation-defined about types lives here, derived from an
:class:`~repro.capability.abstract.Architecture`:

* ``sizeof(intptr_t)`` is the capability size (16 on Morello, 8 on the
  CHERIoT-style target) while its *value range* is the address range --
  the capability metadata is storage, not value (S3.3).
* ``ptraddr_t`` is an unsigned integer of address width (S3.10).
* Pointers are capability-sized and capability-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.capability.abstract import Architecture
from repro.ctypes.types import (
    ArrayT,
    CType,
    FuncT,
    IKind,
    Integer,
    Pointer,
    RANK,
    StructT,
    UnionT,
    Void,
)
from repro.errors import CTypeError


@dataclass(frozen=True)
class FieldLayout:
    name: str
    ctype: CType
    offset: int


#: One layout per architecture: layouts are pure functions of the
#: (frozen) architecture and memoise struct layout per type node, so
#: every call site shares a single instance instead of rebuilding the
#: sizing tables per run.
_INSTANCES: dict[str, "TargetLayout"] = {}

#: Bound on the per-layout struct-layout memo before it is dropped and
#: rebuilt (a long fuzz campaign generates fresh type nodes).
_MEMO_LIMIT = 4096


class TargetLayout:
    """Sizing and layout rules for one architecture."""

    def __new__(cls, arch: Architecture) -> "TargetLayout":
        inst = _INSTANCES.get(arch.name)
        if inst is None or inst.arch is not arch:
            inst = super().__new__(cls)
            _INSTANCES[arch.name] = inst
        return inst

    def __init__(self, arch: Architecture) -> None:
        if getattr(self, "arch", None) is arch:
            return      # shared per-arch instance, already initialised
        self.arch = arch
        bits64 = arch.address_width == 64
        self._int_sizes: dict[IKind, int] = {
            IKind.BOOL: 1,
            IKind.CHAR: 1, IKind.SCHAR: 1, IKind.UCHAR: 1,
            IKind.SHORT: 2, IKind.USHORT: 2,
            IKind.INT: 4, IKind.UINT: 4,
            IKind.LONG: 8 if bits64 else 4,
            IKind.ULONG: 8 if bits64 else 4,
            IKind.LLONG: 8, IKind.ULLONG: 8,
            IKind.SIZE: 8 if bits64 else 4,
            IKind.PTRDIFF: 8 if bits64 else 4,
            IKind.PTRADDR: arch.ptraddr_size,
            IKind.INTPTR: arch.capability_size,
            IKind.UINTPTR: arch.capability_size,
        }
        # Precomputed per-kind range tables: every integer conversion
        # consults these.
        self._widths = {k: (arch.address_width
                            if k.is_capability_carrying else s * 8)
                        for k, s in self._int_sizes.items()}
        self._mins = {k: (-(1 << (w - 1)) if k.is_signed else 0)
                      for k, w in self._widths.items()}
        self._maxs = {k: ((1 << (w - 1)) - 1 if k.is_signed
                          else (1 << w) - 1)
                      for k, w in self._widths.items()}
        # id-keyed struct-layout memo; each entry retains the key object
        # so a recycled id can never alias a different type node.
        self._struct_memo: dict[int, tuple] = {}

    # -- integer properties ------------------------------------------------

    def int_size(self, kind: IKind) -> int:
        """Storage size in bytes (capability-sized for ``(u)intptr_t``)."""
        return self._int_sizes[kind]

    def value_width(self, kind: IKind) -> int:
        """Width in bits of the *value* range.

        For capability-carrying types this is the address width: the
        metadata half of the representation does not contribute to the
        integer value (S3.3, S4.3 ``integer_value``).
        """
        return self._widths[kind]

    def int_min(self, kind: IKind) -> int:
        return self._mins[kind]

    def int_max(self, kind: IKind) -> int:
        return self._maxs[kind]

    def in_range(self, kind: IKind, value: int) -> bool:
        return self._mins[kind] <= value <= self._maxs[kind]

    def wrap(self, kind: IKind, value: int) -> int:
        """Reduce ``value`` modulo the type's range (conversion to an
        unsigned type, or the implementation-defined signed conversion)."""
        width = self._widths[kind]
        value &= (1 << width) - 1
        if value >> (width - 1) and kind.is_signed:
            value -= 1 << width
        return value

    @staticmethod
    def rank(kind: IKind) -> int:
        return RANK[kind]

    # -- sizeof / alignof ----------------------------------------------------

    def sizeof(self, ctype: CType) -> int:
        if isinstance(ctype, Void):
            raise CTypeError("sizeof(void) is invalid")
        if isinstance(ctype, Integer):
            return self.int_size(ctype.kind)
        if isinstance(ctype, Pointer):
            return self.arch.capability_size
        if isinstance(ctype, ArrayT):
            if ctype.length is None:
                raise CTypeError("sizeof on incomplete array type")
            return self.sizeof(ctype.elem) * ctype.length
        if isinstance(ctype, (StructT, UnionT)):
            return self.struct_size(ctype)
        if isinstance(ctype, FuncT):
            raise CTypeError("sizeof on a function type")
        raise CTypeError(f"sizeof: unhandled type {ctype}")

    def alignof(self, ctype: CType) -> int:
        if isinstance(ctype, Integer):
            size = self.int_size(ctype.kind)
            if ctype.kind.is_capability_carrying:
                return self.arch.capability_size
            return size
        if isinstance(ctype, Pointer):
            return self.arch.capability_size
        if isinstance(ctype, ArrayT):
            return self.alignof(ctype.elem)
        if isinstance(ctype, (StructT, UnionT)):
            if ctype.fields is None:
                raise CTypeError(f"alignof on incomplete {ctype}")
            return max((self.alignof(f.ctype) for f in ctype.fields),
                       default=1)
        raise CTypeError(f"alignof: unhandled type {ctype}")

    # -- struct / union layout ---------------------------------------------

    def struct_fields(self, ctype: StructT) -> list[FieldLayout]:
        """Member offsets using the standard C layout algorithm.

        The layout of a (frozen) type node never changes, so results are
        memoised per node; callers must treat the list as read-only.
        """
        memo = self._struct_memo.get(id(ctype))
        if memo is not None and memo[0] is ctype:
            return memo[1]
        if ctype.fields is None:
            raise CTypeError(f"layout of incomplete {ctype}")
        out: list[FieldLayout] = []
        if isinstance(ctype, UnionT):
            for f in ctype.fields:
                out.append(FieldLayout(f.name, f.ctype, 0))
        else:
            offset = 0
            for f in ctype.fields:
                align = self.alignof(f.ctype)
                offset = _align_up(offset, align)
                out.append(FieldLayout(f.name, f.ctype, offset))
                offset += self.sizeof(f.ctype)
        if len(self._struct_memo) >= _MEMO_LIMIT:
            self._struct_memo.clear()
        self._struct_memo[id(ctype)] = (ctype, out)
        return out

    def struct_size(self, ctype: StructT) -> int:
        if ctype.fields is None:
            raise CTypeError(f"sizeof on incomplete {ctype}")
        align = self.alignof(ctype)
        if isinstance(ctype, UnionT):
            raw = max((self.sizeof(f.ctype) for f in ctype.fields), default=0)
        else:
            fields = self.struct_fields(ctype)
            raw = 0
            if fields:
                last = fields[-1]
                raw = last.offset + self.sizeof(last.ctype)
        return max(_align_up(raw, align), 1)

    def offsetof(self, ctype: StructT, member: str) -> int:
        for f in self.struct_fields(ctype):
            if f.name == member:
                return f.offset
        raise CTypeError(f"{ctype} has no member {member!r}")

    # -- capability-carrying predicate ---------------------------------------

    def is_capability_type(self, ctype: CType) -> bool:
        """Types represented at runtime by a full capability (S3.3)."""
        if isinstance(ctype, Pointer):
            return True
        return (isinstance(ctype, Integer)
                and ctype.kind.is_capability_carrying)


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
