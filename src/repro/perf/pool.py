"""Deterministic, fault-tolerant multiprocessing fan-out with
persistent warm workers.

Every run in this codebase is a pure function of its inputs: an
implementation configuration plus a program (each run builds a fresh
:class:`~repro.memory.model.MemoryModel`, and nothing reads the clock or
global mutable state during interpretation).  :func:`parallel_map`
exploits that: it fans items across a process pool and returns results
**in input order**, so a parallel run is bit-identical to the serial
one -- the scheduling of workers can never leak into a report.

Workers are **long-lived**: one process-wide
:class:`ProcessPoolExecutor` is created on first use and reused across
``parallel_map`` calls, so each worker's process-local
:class:`~repro.perf.cache.CompileCache` stays populated from task to
task and from call to call.  Before PR 8 every call (and every retry)
built and tore down its own executor, which is why ``--jobs N`` ran
*slower* than serial on real workloads: workers were born cold,
recompiled everything, and died with their caches.  The warm pool plus
the shared on-disk cache layer (:mod:`repro.perf.disk`, whose
configuration ships to every worker through the pool initializer) is
what makes fan-out pay.  Task groups are sized from the *measured*
per-item cost of previous calls (:data:`_CHUNK_TARGET_SECONDS` of work
per group), so cheap items batch enough to amortise IPC while expensive
items keep groups small for load balance and prompt hang detection.

The pool is *hardened* (docs/ROBUSTNESS.md): a worker that crashes
(``os._exit``, OOM kill, segfault) or blows its per-task deadline does
not take the run with it.  Deadlines are tracked **incrementally**
(``wait(..., FIRST_COMPLETED)`` with a per-group allowance) so a hung
worker is detected within roughly ``task_timeout`` of its group's
start, not after the whole batch's collective budget.  The affected
items are retried -- once by default -- each in its own single-item
single-worker executor after an exponential backoff, so one bad item
cannot poison its neighbours twice; a broken or hung persistent pool is
torn down and rebuilt warm (from the disk cache) on the next call.
Items that still fail come back as :class:`TaskFailure` sentinels in
their input slot, which the callers (``run_suite`` /
``compare_implementations`` / ``run_fuzz``) render as *quarantined*
per-case verdicts instead of aborting.  Because a transient fault is
retried to completion, the stitched result list -- and therefore the
final report -- stays identical to a fault-free serial run.

``jobs <= 1`` (or a single item) short-circuits to a plain in-process
list comprehension: the serial path and the parallel path execute the
same worker function on the same items, differing only in *where*.
Environments without working multiprocessing primitives (restricted
sandboxes) fall back to the serial path rather than failing.  Neither
serial path consults the test-only :class:`~repro.robust.FaultPlan`;
fault-plan runs always use a dedicated throwaway executor so injected
kills and hangs can never leave a poisoned persistent pool behind.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Slot marker for "no result yet" (distinct from any fn() result).
_PENDING = object()

#: Exceptions that mean "the worker died under us", not "fn raised":
#: these are retried; anything else propagates (a bug in fn is a bug).
_WORKER_DEATH = (BrokenProcessPool, OSError, EOFError)

#: Exceptions that mean "no usable multiprocessing primitives here"
#: when raised by executor construction (e.g. /dev/shm sealed off).
_NO_MULTIPROCESSING = (OSError, PermissionError, ImportError, ValueError)

#: The fault plan installed in this worker process (tests only).
_WORKER_PLAN = None

#: Target wall-clock work per task group: long enough to amortise one
#: submit/result round-trip, short enough for load balance and prompt
#: hang detection.
_CHUNK_TARGET_SECONDS = 0.25

#: EWMA of measured per-item cost, keyed per worker function, feeding
#: the next call's chunk sizing.
_COST_ESTIMATES: dict[str, float] = {}


@dataclass(frozen=True)
class TaskFailure:
    """Input-slot sentinel for an item whose worker died repeatedly.

    Attributes:
        index: the item's input index.
        error: one-line description of the last failure.
        attempts: how many times the item was attempted.
    """

    index: int
    error: str
    attempts: int


def resolve_jobs(jobs: int | None) -> int:
    """Translate a CLI ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _init_worker(plan, engine_config=None) -> None:
    """Worker initializer: install the fault plan (tests only) and the
    parent's engine configuration (disk-cache layer), so a spawned or
    recycled worker resolves the same shared cache directory as the
    parent instead of its own defaults."""
    global _WORKER_PLAN
    _WORKER_PLAN = plan
    if engine_config is not None:
        from repro.perf.cache import apply_worker_config
        apply_worker_config(engine_config)


def _run_group(fn, pairs):
    """Run one task group ``[(index, item), ...]`` inside a worker.

    Grouping amortises IPC: one submit/result round-trip carries many
    items.  The fault plan (if any) is consulted per *item index*, so a
    planned kill targets the same logical task regardless of grouping.
    Returns ``(values, elapsed_seconds)``; the elapsed time feeds the
    parent's per-item cost estimate for future chunk sizing.
    """
    plan = _WORKER_PLAN
    out = []
    started = time.perf_counter()
    for index, item in pairs:
        if plan is not None:
            plan.maybe_kill(index)
        out.append(fn(item))
    return out, time.perf_counter() - started


def _fn_cost_key(fn) -> str:
    return (f"{getattr(fn, '__module__', '?')}."
            f"{getattr(fn, '__qualname__', repr(fn))}")


def _record_cost(fn, items: int, seconds: float) -> None:
    if items <= 0 or seconds <= 0.0:
        return
    per_item = seconds / items
    key = _fn_cost_key(fn)
    previous = _COST_ESTIMATES.get(key)
    _COST_ESTIMATES[key] = per_item if previous is None \
        else 0.5 * previous + 0.5 * per_item


def _auto_chunksize(fn, count: int, jobs: int) -> int:
    """Group size targeting :data:`_CHUNK_TARGET_SECONDS` of measured
    work per group, bounded so every worker gets at least ~2 groups
    (load balance).  With no measurement yet (first call for this fn),
    fall back to the static jobs*4 split."""
    cost = _COST_ESTIMATES.get(_fn_cost_key(fn))
    if cost is None or cost <= 0.0:
        return max(1, count // (jobs * 4))
    size = max(1, round(_CHUNK_TARGET_SECONDS / cost))
    return max(1, min(size, math.ceil(count / (jobs * 2))))


class WorkerPool:
    """The process-wide persistent executor behind :func:`parallel_map`.

    Reused across calls so workers stay warm; rebuilt when more workers
    are requested, when the engine configuration changes (workers must
    share the parent's disk-cache directory), or after it broke (worker
    death / hang teardown).  Fault-plan runs never touch it.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._workers = 0
        self._config = None

    def acquire(self, workers: int) -> ProcessPoolExecutor | None:
        """A warm executor with at least ``workers`` workers, or
        ``None`` when multiprocessing is unusable here."""
        from repro.perf.cache import disk_cache_config
        config = disk_cache_config()
        if (self._executor is None or self._workers < workers
                or self._config != config
                or getattr(self._executor, "_broken", False)):
            self.shutdown()
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context(),
                    initializer=_init_worker, initargs=(None, config))
            except _NO_MULTIPROCESSING:
                self._executor = None
                return None
            self._workers = workers
            self._config = config
        return self._executor

    @property
    def workers(self) -> int:
        return self._workers if self._executor is not None else 0

    def shutdown(self, *, hard: bool = False) -> None:
        executor, self._executor = self._executor, None
        self._workers = 0
        self._config = None
        if executor is not None:
            _teardown(executor, hard=hard)


_POOL = WorkerPool()


def shutdown_workers() -> None:
    """Shut the persistent worker pool down (atexit; tests)."""
    _POOL.shutdown()


atexit.register(shutdown_workers)


def _run_isolated(fn, item, index, fault_plan, task_timeout):
    """Run one item on a dedicated single-worker executor.

    Returns ``(value, None)`` on success or ``(None, error)`` when the
    worker died or timed out.  Used for retries, where isolation keeps
    a persistently-crashing item from poisoning its pool-mates.
    """
    from repro.perf.cache import disk_cache_config
    try:
        executor = ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context(),
            initializer=_init_worker,
            initargs=(fault_plan, disk_cache_config()))
    except _NO_MULTIPROCESSING as exc:
        # The item being retried is *known bad* -- its worker already
        # died or hung once.  Running it inline here would let a
        # crash-looping item take down the whole run and would silently
        # ignore task_timeout, so the quarantine contract wins: report
        # a retryable error and let the caller quarantine.
        return None, (f"no isolated worker available for retry "
                      f"(multiprocessing unusable: {exc!r})")
    hung = False
    try:
        try:
            future = executor.submit(_run_group, fn, [(index, item)])
        except _WORKER_DEATH as exc:
            return None, f"worker died: {exc!r}"
        timeout = None if task_timeout is None else task_timeout + 1.0
        done, not_done = wait([future], timeout=timeout)
        if not_done:
            hung = True
            return None, f"task exceeded its {task_timeout}s deadline"
        try:
            return future.result()[0][0], None
        except _WORKER_DEATH as exc:
            return None, f"worker died: {exc!r}"
    finally:
        _teardown(executor, hard=hung)


def _teardown(executor: ProcessPoolExecutor, *, hard: bool) -> None:
    """Shut an executor down; ``hard`` kills possibly-hung workers."""
    if hard:
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
    try:
        executor.shutdown(wait=not hard, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pool cleanup races
        pass


def _collect(fn, future_groups, task_timeout, workers, results, errors):
    """Drain the first attempt's futures into ``results``/``errors``.

    Deadline tracking is incremental: groups are assumed to start in
    submission order as worker slots free up, and each running group
    gets ``task_timeout * len(group)`` from its (estimated) start.  The
    first overdue group trips the timeout -- within ~one group budget
    of the hang, not after the whole batch's collective budget as the
    pre-PR-8 single collective ``wait`` allowed.

    Returns ``(timed_out, died)``: whether a deadline fired (the caller
    must tear the executor down hard) and whether any worker died (the
    caller must not reuse a possibly-broken persistent pool).
    """
    died = False

    def settle(future) -> None:
        nonlocal died
        group = future_groups[future]
        try:
            values, elapsed = future.result()
        except _WORKER_DEATH as exc:
            died = True
            for index in group:
                errors[index] = f"worker died: {exc!r}"
            return
        _record_cost(fn, len(values), elapsed)
        for index, value in zip(group, values):
            results[index] = value

    if task_timeout is None:
        done, _ = wait(future_groups)
        for future in done:
            settle(future)
        return False, died

    pending = set(future_groups)
    # Submission order approximates start order: the executor hands
    # queued groups to workers first-come-first-served, so at any
    # moment the first `workers` unfinished groups are "running" and
    # carry a deadline; the rest are queued with no clock ticking.
    queued = list(future_groups)
    running: dict = {}

    def promote(now: float) -> None:
        while queued and len(running) < workers:
            future = queued.pop(0)
            if future in pending:
                running[future] = \
                    now + task_timeout * len(future_groups[future])

    promote(time.monotonic())
    timed_out = False
    while pending:
        now = time.monotonic()
        next_deadline = min(running.values(),
                            default=now + task_timeout)
        done, _ = wait(pending, timeout=max(0.0, next_deadline - now),
                       return_when=FIRST_COMPLETED)
        now = time.monotonic()
        for future in done:
            settle(future)
            pending.discard(future)
            running.pop(future, None)
        if done:
            promote(now)
        elif any(deadline <= now for deadline in running.values()):
            timed_out = True
            break
    if timed_out:
        # Everything unfinished -- the hung group and any group queued
        # behind it -- is handed to the retry stage; the executor is
        # torn down hard, so innocents re-run on fresh workers.
        for future in pending:
            for index in future_groups[future]:
                if results[index] is _PENDING:
                    errors[index] = (f"task exceeded its "
                                     f"{task_timeout}s deadline")
    return timed_out, died


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 jobs: int | None = 1,
                 chunksize: int | None = None, *,
                 retries: int = 1,
                 task_timeout: float | None = None,
                 backoff: float = 0.1,
                 fault_plan=None,
                 bus=None) -> list:
    """Ordered map of ``fn`` over ``items`` across ``jobs`` processes.

    ``fn`` and every item must be picklable (top-level functions and
    frozen-dataclass configurations are).  Results are ordered by input
    index regardless of worker completion order.

    The first attempt runs on the persistent warm pool (see module
    docstring) in IPC-amortising groups sized from measured per-item
    cost (``chunksize`` overrides).  Fault tolerance: a crashed worker
    fails only the items of its task group; those are retried
    ``retries`` times on a fresh single-item executor (exponential
    ``backoff``).  With ``task_timeout`` set, a group that exceeds its
    wall-clock allowance trips within about one group budget, the pool
    is torn down hard, and its unfinished items are treated like
    crashes.  Items that exhaust their retries yield
    :class:`TaskFailure` in their result slot -- callers decide whether
    that is a quarantined verdict or an error.  ``fault_plan`` installs
    a test-only :class:`~repro.robust.FaultPlan` in each worker (on a
    dedicated throwaway executor, never the persistent pool);
    ``bus`` receives ``robust.retry`` / ``robust.quarantine`` events.

    Exceptions *raised by fn itself* propagate unchanged (a bug in the
    worker function must stay loud); only worker death and timeouts are
    converted into retries and failures.
    """
    seq: Sequence[_T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    jobs = min(jobs, len(seq))
    if chunksize is None:
        chunksize = _auto_chunksize(fn, len(seq), jobs)

    results: list = [_PENDING] * len(seq)
    errors: dict[int, str] = {}
    pending = list(range(len(seq)))

    # -- first attempt: warm persistent pool, IPC-amortising groups ----
    groups = [pending[i:i + chunksize]
              for i in range(0, len(pending), chunksize)]
    workers = min(jobs, len(groups))
    if fault_plan is not None:
        # Fault-plan runs get a throwaway executor: injected kills and
        # hangs must never leave a poisoned persistent pool behind, and
        # the plan itself only installs through an initializer.
        from repro.perf.cache import disk_cache_config
        try:
            executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(),
                initializer=_init_worker,
                initargs=(fault_plan, disk_cache_config()))
        except _NO_MULTIPROCESSING:
            executor = None
        persistent = False
    else:
        executor = _POOL.acquire(workers)
        persistent = True
    if executor is None:
        # No usable multiprocessing primitives (e.g. /dev/shm sealed
        # off); the serial path computes the identical result (and
        # never injects faults).
        return [fn(item) for item in seq]
    timed_out = died = False
    try:
        future_groups = {}
        for group in groups:
            try:
                future = executor.submit(
                    _run_group, fn, [(i, seq[i]) for i in group])
            except _WORKER_DEATH as exc:
                died = True
                for index in group:
                    errors[index] = f"worker died: {exc!r}"
                continue
            future_groups[future] = group
        timed_out, died_collecting = _collect(
            fn, future_groups, task_timeout, workers, results, errors)
        died = died or died_collecting
    finally:
        if not persistent:
            _teardown(executor, hard=timed_out)
        elif timed_out or died:
            # A broken or hung pool is discarded; the next call builds
            # a fresh one that warm-starts from the disk cache.
            _POOL.shutdown(hard=timed_out)
    pending = [i for i in pending if results[i] is _PENDING]

    # -- retries: each item in its own single-worker executor ----------
    # A crashed worker fails every unfinished future on its executor
    # (BrokenProcessPool poisons the pool), so rerunning survivors next
    # to a persistent offender would re-fail them.  Isolation makes a
    # second failure attributable to the item itself.
    for attempt in range(1, retries + 1):
        if not pending:
            break
        time.sleep(backoff * (2 ** (attempt - 1)))
        if bus is not None:
            bus.emit("robust.retry", attempt=attempt,
                     indices=list(pending),
                     what=f"retrying {len(pending)} task(s) on fresh "
                          f"isolated workers (attempt {attempt + 1})")
        still = []
        for index in pending:
            value, error = _run_isolated(fn, seq[index], index,
                                         fault_plan, task_timeout)
            if error is None:
                results[index] = value
                errors.pop(index, None)
            else:
                errors[index] = error
                still.append(index)
        pending = still

    attempts = retries + 1
    for index in pending:
        error = errors.get(index, "worker died")
        results[index] = TaskFailure(index, error, attempts)
        if bus is not None:
            bus.emit("robust.quarantine", index=index, error=error,
                     what=f"task {index} quarantined after {attempts} "
                          f"attempt(s): {error}")
    return results
