"""Deterministic, fault-tolerant multiprocessing fan-out.

Every run in this codebase is a pure function of its inputs: an
implementation configuration plus a program (each run builds a fresh
:class:`~repro.memory.model.MemoryModel`, and nothing reads the clock or
global mutable state during interpretation).  :func:`parallel_map`
exploits that: it fans items across a process pool and returns results
**in input order**, so a parallel run is bit-identical to the serial
one -- the scheduling of workers can never leak into a report.

The pool is *hardened* (docs/ROBUSTNESS.md): a worker that crashes
(``os._exit``, OOM kill, segfault) or blows its per-task deadline does
not take the run with it.  The affected items are retried -- once by
default -- on a fresh executor after an exponential backoff, each item
in its own single-item task so one bad item cannot poison its
neighbours twice.  Items that still fail come back as
:class:`TaskFailure` sentinels in their input slot, which the callers
(``run_suite`` / ``compare_implementations`` / ``run_fuzz``) render as
*quarantined* per-case verdicts instead of aborting.  Because a
transient fault is retried to completion, the stitched result list --
and therefore the final report -- stays identical to a fault-free
serial run.

``jobs <= 1`` (or a single item) short-circuits to a plain in-process
list comprehension: the serial path and the parallel path execute the
same worker function on the same items, differing only in *where*.
Environments without working multiprocessing primitives (restricted
sandboxes) fall back to the serial path rather than failing.  Neither
serial path consults the test-only :class:`~repro.robust.FaultPlan`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Slot marker for "no result yet" (distinct from any fn() result).
_PENDING = object()

#: Exceptions that mean "the worker died under us", not "fn raised":
#: these are retried; anything else propagates (a bug in fn is a bug).
_WORKER_DEATH = (BrokenProcessPool, OSError, EOFError)

#: The fault plan installed in this worker process (tests only).
_WORKER_PLAN = None


@dataclass(frozen=True)
class TaskFailure:
    """Input-slot sentinel for an item whose worker died repeatedly.

    Attributes:
        index: the item's input index.
        error: one-line description of the last failure.
        attempts: how many times the item was attempted.
    """

    index: int
    error: str
    attempts: int


def resolve_jobs(jobs: int | None) -> int:
    """Translate a CLI ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _init_worker(plan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def _run_group(fn, pairs):
    """Run one task group ``[(index, item), ...]`` inside a worker.

    Grouping amortises IPC: one submit/result round-trip carries many
    items.  The fault plan (if any) is consulted per *item index*, so a
    planned kill targets the same logical task regardless of grouping.
    """
    plan = _WORKER_PLAN
    out = []
    for index, item in pairs:
        if plan is not None:
            plan.maybe_kill(index)
        out.append(fn(item))
    return out


def _run_isolated(fn, item, index, fault_plan, task_timeout):
    """Run one item on a dedicated single-worker executor.

    Returns ``(value, None)`` on success or ``(None, error)`` when the
    worker died or timed out.  Used for retries, where isolation keeps
    a persistently-crashing item from poisoning its pool-mates.
    """
    try:
        executor = ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context(),
            initializer=_init_worker, initargs=(fault_plan,))
    except (OSError, PermissionError, ImportError, ValueError):
        return fn(item), None
    hung = False
    try:
        try:
            future = executor.submit(_run_group, fn, [(index, item)])
        except _WORKER_DEATH as exc:
            return None, f"worker died: {exc!r}"
        timeout = None if task_timeout is None else task_timeout + 1.0
        done, not_done = wait([future], timeout=timeout)
        if not_done:
            hung = True
            return None, f"task exceeded its {task_timeout}s deadline"
        try:
            return future.result()[0], None
        except _WORKER_DEATH as exc:
            return None, f"worker died: {exc!r}"
    finally:
        _teardown(executor, hard=hung)


def _teardown(executor: ProcessPoolExecutor, *, hard: bool) -> None:
    """Shut an executor down; ``hard`` kills possibly-hung workers."""
    if hard:
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
    try:
        executor.shutdown(wait=not hard, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pool cleanup races
        pass


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 jobs: int | None = 1,
                 chunksize: int | None = None, *,
                 retries: int = 1,
                 task_timeout: float | None = None,
                 backoff: float = 0.1,
                 fault_plan=None,
                 bus=None) -> list:
    """Ordered map of ``fn`` over ``items`` across ``jobs`` processes.

    ``fn`` and every item must be picklable (top-level functions and
    frozen-dataclass configurations are).  Results are ordered by input
    index regardless of worker completion order.

    Fault tolerance: a crashed worker fails only the items of its task
    group; those are retried ``retries`` times on a fresh executor
    (single-item groups, exponential ``backoff``).  With
    ``task_timeout`` set, an attempt that exceeds its wall-clock
    allowance is torn down hard and its unfinished items treated like
    crashes.  Items that exhaust their retries yield
    :class:`TaskFailure` in their result slot -- callers decide whether
    that is a quarantined verdict or an error.  ``fault_plan`` installs
    a test-only :class:`~repro.robust.FaultPlan` in each worker;
    ``bus`` receives ``robust.retry`` / ``robust.quarantine`` events.

    Exceptions *raised by fn itself* propagate unchanged (a bug in the
    worker function must stay loud); only worker death and timeouts are
    converted into retries and failures.
    """
    seq: Sequence[_T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    jobs = min(jobs, len(seq))
    if chunksize is None:
        # Small chunks for load balance, but never one-item chunks over
        # a large input (IPC overhead would dominate the tiny runs).
        chunksize = max(1, len(seq) // (jobs * 4))

    results: list = [_PENDING] * len(seq)
    errors: dict[int, str] = {}
    pending = list(range(len(seq)))

    # -- first attempt: one shared executor, IPC-amortising groups -----
    groups = [pending[i:i + chunksize]
              for i in range(0, len(pending), chunksize)]
    workers = min(jobs, len(groups))
    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(),
            initializer=_init_worker, initargs=(fault_plan,))
    except (OSError, PermissionError, ImportError, ValueError):
        # No usable multiprocessing primitives (e.g. /dev/shm sealed
        # off); the serial path computes the identical result (and
        # never injects faults).
        return [fn(item) for item in seq]
    not_done = set()
    try:
        future_groups = {}
        for group in groups:
            try:
                future = executor.submit(
                    _run_group, fn, [(i, seq[i]) for i in group])
            except _WORKER_DEATH as exc:
                for index in group:
                    errors[index] = f"worker died: {exc!r}"
                continue
            future_groups[future] = group
        timeout = None
        if task_timeout is not None:
            # Every worker handles ~groups/workers groups of ~chunksize
            # items; allow that many per-item timeouts plus slack.
            rounds = math.ceil(len(groups) / workers)
            timeout = task_timeout * rounds * chunksize + 1.0
        done, not_done = wait(future_groups, timeout=timeout)
        for future in done:
            group = future_groups[future]
            try:
                values = future.result()
            except _WORKER_DEATH as exc:
                for index in group:
                    errors[index] = f"worker died: {exc!r}"
                continue
            for index, value in zip(group, values):
                results[index] = value
        for future in not_done:
            for index in future_groups[future]:
                errors[index] = (f"task exceeded its "
                                 f"{task_timeout}s deadline")
    finally:
        _teardown(executor, hard=bool(not_done))
    pending = [i for i in pending if results[i] is _PENDING]

    # -- retries: each item in its own single-worker executor ----------
    # A crashed worker fails every unfinished future on its executor
    # (BrokenProcessPool poisons the pool), so rerunning survivors next
    # to a persistent offender would re-fail them.  Isolation makes a
    # second failure attributable to the item itself.
    for attempt in range(1, retries + 1):
        if not pending:
            break
        time.sleep(backoff * (2 ** (attempt - 1)))
        if bus is not None:
            bus.emit("robust.retry", attempt=attempt,
                     indices=list(pending),
                     what=f"retrying {len(pending)} task(s) on fresh "
                          f"isolated workers (attempt {attempt + 1})")
        still = []
        for index in pending:
            value, error = _run_isolated(fn, seq[index], index,
                                         fault_plan, task_timeout)
            if error is None:
                results[index] = value
                errors.pop(index, None)
            else:
                errors[index] = error
                still.append(index)
        pending = still

    attempts = retries + 1
    for index in pending:
        error = errors.get(index, "worker died")
        results[index] = TaskFailure(index, error, attempts)
        if bus is not None:
            bus.emit("robust.quarantine", index=index, error=error,
                     what=f"task {index} quarantined after {attempts} "
                          f"attempt(s): {error}")
    return results
