"""Deterministic multiprocessing fan-out for suite and fuzz runs.

Every run in this codebase is a pure function of its inputs: an
implementation configuration plus a program (each run builds a fresh
:class:`~repro.memory.model.MemoryModel`, and nothing reads the clock or
global mutable state during interpretation).  :func:`parallel_map`
exploits that: it fans items across a process pool and returns results
**in input order**, so a parallel run is bit-identical to the serial
one -- the scheduling of workers can never leak into a report.

``jobs <= 1`` (or a single item) short-circuits to a plain in-process
list comprehension: the serial path and the parallel path execute the
same worker function on the same items, differing only in *where*.
Environments without working multiprocessing primitives (restricted
sandboxes) fall back to the serial path rather than failing.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: int | None) -> int:
    """Translate a CLI ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T],
                 jobs: int | None = 1,
                 chunksize: int | None = None) -> list[_R]:
    """Ordered map of ``fn`` over ``items`` across ``jobs`` processes.

    ``fn`` and every item must be picklable (top-level functions and
    frozen-dataclass configurations are).  Results are ordered by input
    index regardless of worker completion order.
    """
    seq: Sequence[_T] = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    jobs = min(jobs, len(seq))
    if chunksize is None:
        # Small chunks for load balance, but never one-item chunks over
        # a large input (IPC overhead would dominate the tiny runs).
        chunksize = max(1, len(seq) // (jobs * 4))
    try:
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(fn, seq, chunksize=chunksize)
    except (OSError, PermissionError, ImportError):
        # No usable multiprocessing primitives (e.g. /dev/shm sealed
        # off); the serial path computes the identical result.
        return [fn(item) for item in seq]
