"""The compilation cache behind :meth:`Implementation.compile`.

Compilation -- lexing, parsing, and the modelled optimisation passes --
is a pure function of ``(source, arch, opt_level, subobject_bounds,
options)``.  Everything else an :class:`~repro.impls.config.Implementation`
carries (address map, abstract-vs-hardware mode, revocation) only
affects *running* the compiled program, so e.g. all four ``-O0``
hardware implementations plus the reference can share a single parse of
each test program.  The S5 comparison compiles each of the 94 programs
twice (once per distinct opt level) instead of seven times, and the
differential oracle compiles each generated program a handful of times
instead of once per target.

Four layers of reuse:

* a *parse* memo keyed by ``(source, arch)`` -- the AST before
  optimisation, shared across opt levels (AST nodes are frozen
  dataclasses, so sharing is safe);
* the *compiled* cache keyed by the full five-axis tuple, holding the
  optimised program -- or the frontend error, so a program the frontend
  rejects is rejected once, not once per implementation;
* the *core* cache, keyed by the same five-axis tuple, holding the
  elaborated :class:`~repro.core.coreir.CoreProgram` (built from the
  optimised AST) -- or the elaboration error, cached with the same
  once-not-once-per-implementation policy as frontend rejections;
* the *threaded* cache, keyed by the same five-axis tuple, holding the
  direct-threaded :class:`~repro.core.compile.CompiledProgram` built
  from the cached Core program.  Compiled programs are closures and so
  **process-local**: they never pickle across the worker pool -- a
  worker that needs one compiles it in-process from the task's source
  (tasks carry sources, not programs), and a ``CompiledProgram`` that
  is pickled anyway reduces to its Core program and recompiles on
  unpickle.

All are bounded LRU maps (entries evicted oldest-first), sized for a
long fuzz campaign without unbounded growth.  The cache is per-process:
worker processes forked by :mod:`repro.perf.pool` inherit the parent's
entries at fork time and then populate their own copies (closure
tables survive a fork, so forked workers start warm; spawned ones
start cold and fall back to compiling locally).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.compile import compile_core as compile_threaded_ir
from repro.core.cparser import parse_program
from repro.core.elaborate import elaborate_program
from repro.core.optimizer import optimize_program
from repro.errors import CSyntaxError, CTypeError

#: Default entry bound for both cache layers.
DEFAULT_MAXSIZE = 4096


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}


class CompileCache:
    """LRU cache of compiled programs (and frontend rejections)."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        self.maxsize = maxsize
        self.stats = CacheStats()
        # key -> ("ok", Program) | ("error", CSyntaxError | CTypeError)
        self._compiled: OrderedDict[tuple, tuple[str, object]] = OrderedDict()
        self._parsed: OrderedDict[tuple, object] = OrderedDict()
        # key -> ("ok", CoreProgram) | ("error", ...): elaborated Core,
        # same five-axis identity as the compiled layer.
        self._core: OrderedDict[tuple, tuple[str, object]] = OrderedDict()
        # key -> ("ok", CompiledProgram) | ("error", ...): the
        # direct-threaded closure tables (process-local; see module
        # docstring).
        self._threaded: OrderedDict[tuple, tuple[str, object]] = \
            OrderedDict()

    @staticmethod
    def key_for(impl, source: str) -> tuple:
        """The compile identity of ``source`` under ``impl``: every
        configuration axis that can change the compiled program, and
        none of the run-only axes (address map, mode, revocation)."""
        return (source, impl.arch.name, impl.opt_level,
                impl.subobject_bounds, impl.options)

    def __len__(self) -> int:
        return len(self._compiled)

    def clear(self) -> None:
        self._compiled.clear()
        self._parsed.clear()
        self._core.clear()
        self._threaded.clear()
        self.stats = CacheStats()

    def compile(self, impl, source: str):
        """Parse + optimise ``source`` for ``impl``, reusing any cached
        artefact.  Raises :class:`CSyntaxError`/:class:`CTypeError`
        exactly like the uncached frontend."""
        key = self.key_for(impl, source)
        entry = self._compiled.get(key)
        if entry is not None:
            self._compiled.move_to_end(key)
            self.stats.hits += 1
            tag, payload = entry
            if tag == "error":
                raise payload
            return payload
        self.stats.misses += 1
        try:
            program = self._parse(impl, source)
            program = optimize_program(program, impl.layout, impl.opt_level)
        except (CSyntaxError, CTypeError) as exc:
            self._store(key, ("error", exc))
            raise
        self._store(key, ("ok", program))
        return program

    def _parse(self, impl, source: str):
        pkey = (source, impl.arch.name)
        program = self._parsed.get(pkey)
        if program is not None:
            self._parsed.move_to_end(pkey)
            return program
        program = parse_program(source, impl.layout)
        self._parsed[pkey] = program
        while len(self._parsed) > self.maxsize:
            self._parsed.popitem(last=False)
        return program

    def core(self, impl, source: str):
        """Compile + elaborate ``source`` for ``impl``, reusing any
        cached :class:`~repro.core.coreir.CoreProgram`.  Frontend *and*
        elaboration rejections are cached under the same five-axis key,
        so an elaboration-rejected program is rejected once, not once
        per implementation sharing the key."""
        key = self.key_for(impl, source)
        entry = self._core.get(key)
        if entry is not None:
            self._core.move_to_end(key)
            tag, payload = entry
            if tag == "error":
                raise payload
            return payload
        try:
            program = self.compile(impl, source)
            core = elaborate_program(program)
        except (CSyntaxError, CTypeError) as exc:
            self._core[key] = ("error", exc)
            while len(self._core) > self.maxsize:
                self._core.popitem(last=False)
            raise
        self._core[key] = ("ok", core)
        while len(self._core) > self.maxsize:
            self._core.popitem(last=False)
        return core

    def threaded(self, impl, source: str):
        """Compile + elaborate + thread ``source`` for ``impl``,
        reusing any cached :class:`~repro.core.compile.CompiledProgram`.
        Frontend and elaboration rejections are cached under the same
        five-axis key (the same policy as the other layers)."""
        key = self.key_for(impl, source)
        entry = self._threaded.get(key)
        if entry is not None:
            self._threaded.move_to_end(key)
            tag, payload = entry
            if tag == "error":
                raise payload
            return payload
        try:
            core = self.core(impl, source)
        except (CSyntaxError, CTypeError) as exc:
            self._threaded[key] = ("error", exc)
            while len(self._threaded) > self.maxsize:
                self._threaded.popitem(last=False)
            raise
        compiled = compile_threaded_ir(core, impl)
        self._threaded[key] = ("ok", compiled)
        while len(self._threaded) > self.maxsize:
            self._threaded.popitem(last=False)
        return compiled

    def _store(self, key: tuple, entry: tuple[str, object]) -> None:
        self._compiled[key] = entry
        while len(self._compiled) > self.maxsize:
            self._compiled.popitem(last=False)


_GLOBAL_CACHE = CompileCache()
_ENABLED = True


def global_cache() -> CompileCache:
    """The process-wide cache used by :meth:`Implementation.compile`."""
    return _GLOBAL_CACHE


def set_cache_enabled(enabled: bool) -> None:
    """Process-wide switch (the CLI's ``--no-compile-cache``)."""
    global _ENABLED
    _ENABLED = enabled


def cache_enabled() -> bool:
    return _ENABLED


def clear_cache() -> None:
    _GLOBAL_CACHE.clear()


def compile_program(impl, source: str, use_cache: bool | None = None):
    """Compile ``source`` for ``impl``; ``use_cache=None`` defers to the
    process-wide switch.  Uncached compiles bypass the cache entirely
    (no lookups, no stats)."""
    if use_cache is None:
        use_cache = _ENABLED
    if not use_cache:
        program = parse_program(source, impl.layout)
        return optimize_program(program, impl.layout, impl.opt_level)
    return _GLOBAL_CACHE.compile(impl, source)


def compile_core(impl, source: str, use_cache: bool | None = None):
    """Compile + elaborate ``source`` for ``impl`` into a
    :class:`~repro.core.coreir.CoreProgram`; ``use_cache=None`` defers
    to the process-wide switch."""
    if use_cache is None:
        use_cache = _ENABLED
    if not use_cache:
        program = parse_program(source, impl.layout)
        program = optimize_program(program, impl.layout, impl.opt_level)
        return elaborate_program(program)
    return _GLOBAL_CACHE.core(impl, source)


def compile_threaded(impl, source: str, use_cache: bool | None = None):
    """Compile + elaborate + direct-thread ``source`` for ``impl`` into
    a :class:`~repro.core.compile.CompiledProgram`; ``use_cache=None``
    defers to the process-wide switch.  An uncached compile bypasses
    every layer (no lookups, no stats, no snapshot sharing)."""
    if use_cache is None:
        use_cache = _ENABLED
    if not use_cache:
        program = parse_program(source, impl.layout)
        program = optimize_program(program, impl.layout, impl.opt_level)
        return compile_threaded_ir(elaborate_program(program), impl)
    return _GLOBAL_CACHE.threaded(impl, source)
