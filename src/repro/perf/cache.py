"""The compilation cache behind :meth:`Implementation.compile`.

Compilation -- lexing, parsing, and the modelled optimisation passes --
is a pure function of ``(source, arch, opt_level, subobject_bounds,
options)``.  Everything else an :class:`~repro.impls.config.Implementation`
carries (address map, abstract-vs-hardware mode, revocation) only
affects *running* the compiled program, so e.g. all four ``-O0``
hardware implementations plus the reference can share a single parse of
each test program.  The S5 comparison compiles each of the 94 programs
twice (once per distinct opt level) instead of seven times, and the
differential oracle compiles each generated program a handful of times
instead of once per target.

Five layers of reuse, each with its own :class:`CacheStats` in
``CompileCache.stats`` (a :class:`CacheStatsSet`):

* a *parse* memo keyed by ``(source, arch)`` -- the AST before
  optimisation, shared across opt levels (AST nodes are frozen
  dataclasses, so sharing is safe);
* the *compiled* cache keyed by the full five-axis tuple, holding the
  optimised program -- or the frontend error, so a program the frontend
  rejects is rejected once, not once per implementation;
* the *core* cache, keyed by the same five-axis tuple, holding the
  elaborated :class:`~repro.core.coreir.CoreProgram` (built from the
  optimised AST) -- or the elaboration error, cached with the same
  once-not-once-per-implementation policy as frontend rejections;
* the *threaded* cache, keyed by the same five-axis tuple, holding the
  direct-threaded :class:`~repro.core.compile.CompiledProgram` built
  from the cached Core program.  Compiled programs are closures and so
  **process-local**: they never pickle across the worker pool -- a
  worker that needs one compiles it in-process from the task's source
  (tasks carry sources, not programs), and a ``CompiledProgram`` that
  is pickled anyway reduces to its Core program and recompiles on
  unpickle;
* the *disk* layer (:mod:`repro.perf.disk`): a content-addressed
  on-disk store of pickled Core programs backing the core layer, keyed
  by the SHA-256 of the same five axes, shared across worker processes
  **and across CLI invocations**.  A core-layer miss consults it before
  compiling, and a fresh compile publishes to it, so a warm-started
  process (or a cold pool worker) performs zero frontend compiles for
  sources any previous run compiled.  Rejections are never written to
  disk -- they are cheap to rediscover and memory-cached per process.

The in-memory layers are bounded LRU maps (entries evicted
oldest-first), sized for a long fuzz campaign without unbounded growth,
and are per-process: worker processes forked by :mod:`repro.perf.pool`
inherit the parent's entries at fork time and then populate their own
copies.  The disk layer is what makes that cheap to live with --
spawned or recycled workers warm-start from it instead of recompiling.

``set_cache_enabled(False)`` (the CLI's ``--no-compile-cache``)
bypasses every layer; ``configure_disk_cache`` (the CLI's
``--cache-dir``/``--no-disk-cache``) controls only the disk layer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.compile import compile_core as compile_threaded_ir
from repro.core.cparser import parse_program
from repro.core.elaborate import elaborate_program
from repro.core.optimizer import optimize_program
from repro.errors import CSyntaxError, CTypeError
from repro.perf.disk import DiskCache, default_cache_dir

#: Default entry bound for the in-memory cache layers.
DEFAULT_MAXSIZE = 4096


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache layer."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}


class CacheStatsSet:
    """Per-layer :class:`CacheStats` for one :class:`CompileCache`.

    One entry per layer (``parse``/``compiled``/``core``/``threaded``/
    ``disk``) plus aggregates.  The pre-PR-8 single counter was blind
    to the core and threaded layers -- the default ``compiled``
    evaluator never touched it, so warm runs reported a 0.0 hit rate.
    """

    LAYERS = ("parse", "compiled", "core", "threaded", "disk")

    def __init__(self) -> None:
        self.parse = CacheStats()
        self.compiled = CacheStats()
        self.core = CacheStats()
        self.threaded = CacheStats()
        self.disk = CacheStats()

    def layer(self, name: str) -> CacheStats:
        return getattr(self, name)

    @property
    def hits(self) -> int:
        return sum(self.layer(name).hits for name in self.LAYERS)

    @property
    def misses(self) -> int:
        return sum(self.layer(name).misses for name in self.LAYERS)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def compiles_performed(self) -> int:
        """Frontend compiles this cache actually executed: every parse
        that ran (a disk hit serves the elaborated Core program without
        parsing, so a fully warm-started run reads 0 here)."""
        return self.parse.misses

    def to_dict(self) -> dict:
        report = {name: self.layer(name).to_dict()
                  for name in self.LAYERS}
        report["total"] = {"hits": self.hits, "misses": self.misses,
                           "hit_rate": round(self.hit_rate, 4)}
        report["compiles_performed"] = self.compiles_performed
        return report

    def summary(self) -> str:
        """Human-readable per-layer table (the CLI's ``--metrics``)."""
        lines = ["compile cache (layer: hits/misses, hit-rate):"]
        for name in self.LAYERS:
            stats = self.layer(name)
            lines.append(f"  {name:<9s} {stats.hits:6d} /{stats.misses:6d}"
                         f"   {stats.hit_rate:5.2f}")
        lines.append(f"  compiles performed: {self.compiles_performed}")
        return "\n".join(lines) + "\n"


class CompileCache:
    """LRU cache of compiled programs (and frontend rejections).

    ``disk`` selects the persistent backing layer: the default follows
    the process-wide configuration (``configure_disk_cache``); pass an
    explicit :class:`~repro.perf.disk.DiskCache` to pin a directory, or
    ``None`` for a purely in-memory cache.
    """

    #: Sentinel: resolve the disk layer from the process-wide
    #: configuration at lookup time (so CLI flags applied after
    #: construction still govern the import-time global cache).
    PROCESS_DISK = object()

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE,
                 disk=PROCESS_DISK) -> None:
        self.maxsize = maxsize
        self.stats = CacheStatsSet()
        self._disk = disk
        # key -> ("ok", Program) | ("error", CSyntaxError | CTypeError)
        self._compiled: OrderedDict[tuple, tuple[str, object]] = OrderedDict()
        self._parsed: OrderedDict[tuple, object] = OrderedDict()
        # key -> ("ok", CoreProgram) | ("error", ...): elaborated Core,
        # same five-axis identity as the compiled layer.
        self._core: OrderedDict[tuple, tuple[str, object]] = OrderedDict()
        # key -> ("ok", CompiledProgram) | ("error", ...): the
        # direct-threaded closure tables (process-local; see module
        # docstring).
        self._threaded: OrderedDict[tuple, tuple[str, object]] = \
            OrderedDict()

    @staticmethod
    def key_for(impl, source: str) -> tuple:
        """The compile identity of ``source`` under ``impl``: every
        configuration axis that can change the compiled program
        (:data:`repro.impls.config.COMPILE_AXES`), and none of the
        run-only axes (address map, mode, revocation, allocator policy)
        -- one compiled program serves every allocator policy, so the
        policy grid shares these cache layers."""
        return (source, impl.arch.name, impl.opt_level,
                impl.subobject_bounds, impl.options)

    def active_disk(self) -> DiskCache | None:
        if self._disk is CompileCache.PROCESS_DISK:
            return _process_disk()
        return self._disk

    def entry_counts(self) -> dict[str, int]:
        """In-memory entries per layer."""
        return {"parse": len(self._parsed),
                "compiled": len(self._compiled),
                "core": len(self._core),
                "threaded": len(self._threaded)}

    def __len__(self) -> int:
        """Total in-memory entries across every layer."""
        return sum(self.entry_counts().values())

    def clear(self) -> None:
        """Drop the in-memory layers and reset stats.  The disk layer
        is shared across processes and deliberately survives -- remove
        its directory to clear it."""
        self._compiled.clear()
        self._parsed.clear()
        self._core.clear()
        self._threaded.clear()
        self.stats = CacheStatsSet()

    def compile(self, impl, source: str):
        """Parse + optimise ``source`` for ``impl``, reusing any cached
        artefact.  Raises :class:`CSyntaxError`/:class:`CTypeError`
        exactly like the uncached frontend."""
        key = self.key_for(impl, source)
        entry = self._compiled.get(key)
        if entry is not None:
            self._compiled.move_to_end(key)
            self.stats.compiled.hits += 1
            tag, payload = entry
            if tag == "error":
                raise payload
            return payload
        self.stats.compiled.misses += 1
        try:
            program = self._parse(impl, source)
            program = optimize_program(program, impl.layout, impl.opt_level)
        except (CSyntaxError, CTypeError) as exc:
            self._store(key, ("error", exc))
            raise
        self._store(key, ("ok", program))
        return program

    def _parse(self, impl, source: str):
        pkey = (source, impl.arch.name)
        program = self._parsed.get(pkey)
        if program is not None:
            self._parsed.move_to_end(pkey)
            self.stats.parse.hits += 1
            return program
        self.stats.parse.misses += 1
        program = parse_program(source, impl.layout)
        self._parsed[pkey] = program
        while len(self._parsed) > self.maxsize:
            self._parsed.popitem(last=False)
        return program

    def core(self, impl, source: str):
        """Compile + elaborate ``source`` for ``impl``, reusing any
        cached :class:`~repro.core.coreir.CoreProgram` -- from memory
        first, then from the shared disk layer.  Frontend *and*
        elaboration rejections are cached (in memory only) under the
        same five-axis key, so an elaboration-rejected program is
        rejected once, not once per implementation sharing the key."""
        key = self.key_for(impl, source)
        entry = self._core.get(key)
        if entry is not None:
            self._core.move_to_end(key)
            self.stats.core.hits += 1
            tag, payload = entry
            if tag == "error":
                raise payload
            return payload
        self.stats.core.misses += 1
        disk = self.active_disk()
        if disk is not None:
            core = disk.load(key)
            if core is not None:
                self.stats.disk.hits += 1
                self._store_core(key, ("ok", core))
                return core
            self.stats.disk.misses += 1
        try:
            program = self.compile(impl, source)
            core = elaborate_program(program)
        except (CSyntaxError, CTypeError) as exc:
            self._store_core(key, ("error", exc))
            raise
        self._store_core(key, ("ok", core))
        if disk is not None:
            disk.store(key, core)
        return core

    def threaded(self, impl, source: str):
        """Compile + elaborate + thread ``source`` for ``impl``,
        reusing any cached :class:`~repro.core.compile.CompiledProgram`.
        Frontend and elaboration rejections are cached under the same
        five-axis key (the same policy as the other layers)."""
        key = self.key_for(impl, source)
        entry = self._threaded.get(key)
        if entry is not None:
            self._threaded.move_to_end(key)
            self.stats.threaded.hits += 1
            tag, payload = entry
            if tag == "error":
                raise payload
            return payload
        self.stats.threaded.misses += 1
        try:
            core = self.core(impl, source)
        except (CSyntaxError, CTypeError) as exc:
            self._threaded[key] = ("error", exc)
            while len(self._threaded) > self.maxsize:
                self._threaded.popitem(last=False)
            raise
        compiled = compile_threaded_ir(core, impl)
        self._threaded[key] = ("ok", compiled)
        while len(self._threaded) > self.maxsize:
            self._threaded.popitem(last=False)
        return compiled

    def _store(self, key: tuple, entry: tuple[str, object]) -> None:
        self._compiled[key] = entry
        while len(self._compiled) > self.maxsize:
            self._compiled.popitem(last=False)

    def _store_core(self, key: tuple, entry: tuple[str, object]) -> None:
        self._core[key] = entry
        while len(self._core) > self.maxsize:
            self._core.popitem(last=False)


_GLOBAL_CACHE = CompileCache()
_ENABLED = True

#: Process-wide disk-layer configuration (the CLI's ``--cache-dir`` /
#: ``--no-disk-cache``).  ``None`` directory = the default location.
_DISK_ENABLED = True
_DISK_DIR: str | None = None
_DISK_INSTANCE: DiskCache | None = None


def global_cache() -> CompileCache:
    """The process-wide cache used by :meth:`Implementation.compile`."""
    return _GLOBAL_CACHE


def set_cache_enabled(enabled: bool) -> None:
    """Process-wide switch (the CLI's ``--no-compile-cache``)."""
    global _ENABLED
    _ENABLED = enabled


def cache_enabled() -> bool:
    return _ENABLED


def configure_disk_cache(enabled: bool | None = None,
                         directory: str | None = None) -> None:
    """Configure the process-wide disk layer.

    ``enabled=False`` turns it off entirely; ``directory=None`` keeps
    the default (``~/.cache/repro``-style, see
    :func:`repro.perf.disk.default_cache_dir`).  Worker processes
    receive this configuration through the pool initializer so parent
    and workers always share one directory.
    """
    global _DISK_ENABLED, _DISK_DIR, _DISK_INSTANCE
    if enabled is not None:
        _DISK_ENABLED = enabled
    _DISK_DIR = directory
    _DISK_INSTANCE = None


def disk_cache_config() -> tuple[bool, str | None]:
    """The (enabled, directory) snapshot shipped to pool workers."""
    return (_DISK_ENABLED, _DISK_DIR)


def apply_worker_config(config: tuple[bool, str | None]) -> None:
    """Install a parent's engine configuration in a pool worker."""
    enabled, directory = config
    configure_disk_cache(enabled=enabled, directory=directory)


def _process_disk() -> DiskCache | None:
    """The configured process-wide :class:`DiskCache` (lazy; ``None``
    when disabled)."""
    global _DISK_INSTANCE
    if not _DISK_ENABLED:
        return None
    if _DISK_INSTANCE is None:
        directory = _DISK_DIR if _DISK_DIR is not None \
            else default_cache_dir()
        _DISK_INSTANCE = DiskCache(directory)
    return _DISK_INSTANCE


def clear_cache() -> None:
    _GLOBAL_CACHE.clear()


def compile_program(impl, source: str, use_cache: bool | None = None):
    """Compile ``source`` for ``impl``; ``use_cache=None`` defers to the
    process-wide switch.  Uncached compiles bypass the cache entirely
    (no lookups, no stats)."""
    if use_cache is None:
        use_cache = _ENABLED
    if not use_cache:
        program = parse_program(source, impl.layout)
        return optimize_program(program, impl.layout, impl.opt_level)
    return _GLOBAL_CACHE.compile(impl, source)


def compile_core(impl, source: str, use_cache: bool | None = None):
    """Compile + elaborate ``source`` for ``impl`` into a
    :class:`~repro.core.coreir.CoreProgram`; ``use_cache=None`` defers
    to the process-wide switch."""
    if use_cache is None:
        use_cache = _ENABLED
    if not use_cache:
        program = parse_program(source, impl.layout)
        program = optimize_program(program, impl.layout, impl.opt_level)
        return elaborate_program(program)
    return _GLOBAL_CACHE.core(impl, source)


def compile_threaded(impl, source: str, use_cache: bool | None = None):
    """Compile + elaborate + direct-thread ``source`` for ``impl`` into
    a :class:`~repro.core.compile.CompiledProgram`; ``use_cache=None``
    defers to the process-wide switch.  An uncached compile bypasses
    every layer (no lookups, no stats, no snapshot sharing)."""
    if use_cache is None:
        use_cache = _ENABLED
    if not use_cache:
        program = parse_program(source, impl.layout)
        program = optimize_program(program, impl.layout, impl.opt_level)
        return compile_threaded_ir(elaborate_program(program), impl)
    return _GLOBAL_CACHE.threaded(impl, source)
