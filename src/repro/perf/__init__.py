"""Execution-engine performance layer: compile caching and fan-out.

The S5 experiment and the fuzz loop both run the *same* program text on
many implementation configurations.  Two facts make that cheap to
exploit:

* compilation (parse + modelled optimisation) is a pure function of
  ``(source, arch, opt_level, subobject_bounds, options)`` -- the
  address map and execution mode only matter at *run* time -- so one
  compile can serve every implementation sharing those axes
  (:mod:`repro.perf.cache`);
* every run is deterministic and isolated (a fresh
  :class:`~repro.memory.model.MemoryModel` per run), so runs can be
  fanned out across worker processes and stitched back together in
  input order with bit-identical results (:mod:`repro.perf.pool`).

``repro run|suite|compare|fuzz`` expose both through ``--jobs N`` and
``--no-compile-cache``; ``benchmarks/bench_engine.py`` tracks the
resulting throughput in the ``BENCH_engine.json`` trajectory.
"""

from repro.perf.cache import (
    CacheStats,
    CompileCache,
    cache_enabled,
    clear_cache,
    compile_core,
    compile_program,
    compile_threaded,
    global_cache,
    set_cache_enabled,
)
from repro.perf.pool import TaskFailure, parallel_map, resolve_jobs

__all__ = [
    "CacheStats",
    "CompileCache",
    "TaskFailure",
    "cache_enabled",
    "clear_cache",
    "compile_core",
    "compile_program",
    "compile_threaded",
    "global_cache",
    "parallel_map",
    "resolve_jobs",
    "set_cache_enabled",
]
