"""Execution-engine performance layer: compile caching and fan-out.

The S5 experiment and the fuzz loop both run the *same* program text on
many implementation configurations.  Two facts make that cheap to
exploit:

* compilation (parse + modelled optimisation) is a pure function of
  ``(source, arch, opt_level, subobject_bounds, options)`` -- the
  address map and execution mode only matter at *run* time -- so one
  compile can serve every implementation sharing those axes
  (:mod:`repro.perf.cache`);
* every run is deterministic and isolated (a fresh
  :class:`~repro.memory.model.MemoryModel` per run), so runs can be
  fanned out across worker processes and stitched back together in
  input order with bit-identical results (:mod:`repro.perf.pool`).

The pool's workers are *persistent and warm* -- one process-wide
executor reused across calls, each worker keeping its own populated
cache -- and the cache's Core layer is backed by a content-addressed
on-disk store (:mod:`repro.perf.disk`) shared across processes and
CLI invocations, so a warm-started run performs zero compiles.

``repro run|suite|compare|fuzz`` expose all of this through ``--jobs
N``, ``--no-compile-cache``, ``--cache-dir DIR``, and
``--no-disk-cache``; ``benchmarks/bench_engine.py`` tracks the
resulting throughput in the ``BENCH_engine.json`` trajectory.
"""

from repro.perf.cache import (
    CacheStats,
    CacheStatsSet,
    CompileCache,
    cache_enabled,
    clear_cache,
    compile_core,
    compile_program,
    compile_threaded,
    configure_disk_cache,
    disk_cache_config,
    global_cache,
    set_cache_enabled,
)
from repro.perf.disk import DiskCache, default_cache_dir
from repro.perf.pool import (
    TaskFailure,
    parallel_map,
    resolve_jobs,
    shutdown_workers,
)

__all__ = [
    "CacheStats",
    "CacheStatsSet",
    "CompileCache",
    "DiskCache",
    "TaskFailure",
    "cache_enabled",
    "clear_cache",
    "compile_core",
    "compile_program",
    "compile_threaded",
    "configure_disk_cache",
    "default_cache_dir",
    "disk_cache_config",
    "global_cache",
    "parallel_map",
    "resolve_jobs",
    "set_cache_enabled",
    "shutdown_workers",
]
