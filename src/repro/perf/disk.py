"""Content-addressed on-disk compile cache, shared across processes.

The in-memory :class:`~repro.perf.cache.CompileCache` dies with its
process, so before this layer existed every CLI invocation -- and every
cold pool worker -- recompiled the 94-case suite from scratch
(``BENCH_engine.json`` recorded a 0.0 warm hit rate for exactly that
reason).  :class:`DiskCache` persists the *elaborated Core layer*: the
:class:`~repro.core.coreir.CoreProgram` is the last representation that
both pickles cleanly and is expensive to rebuild (the direct-threaded
closure tables above it are process-local by design and cheap to
re-thread from Core).

Addressing is by content, not by name: the entry for a compile is
``sha256(format version + arch + opt level + subobject mode + options +
source)``, i.e. exactly the five axes that define compile identity in
:meth:`CompileCache.key_for` plus the on-disk format version.  Changing
any axis -- or bumping :data:`DISK_FORMAT_VERSION` when the compiler's
internals change shape -- lands on a different address, so stale
entries are never *wrongly* served; they are simply never looked up
again (and an old entry that is somehow looked up fails the in-payload
version/digest check and reads as a miss).

Concurrency contract: any number of processes may share one directory.

* **Writers** never write in place: an entry is pickled to a temp file
  in the same shard directory and published with :func:`os.replace`,
  which is atomic on POSIX and on NTFS -- a reader sees either the
  whole entry or no entry, never a torn one.  Two processes racing to
  publish the same key both write identical content; last rename wins.
* **Readers** treat *every* failure -- missing file, truncated pickle,
  corrupt bytes, version mismatch, digest mismatch, unpicklable class
  -- as a miss.  The caller then recompiles and rewrites the entry, so
  a damaged cache heals itself instead of crashing a run.

The default directory is ``~/.cache/repro`` (respecting
``$XDG_CACHE_HOME`` and the ``$REPRO_CACHE_DIR`` override); the CLI's
``--cache-dir``/``--no-disk-cache`` select or disable it per run.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile

#: Bump when the pickled payload shape -- or anything about how Core
#: programs are built -- changes incompatibly.  Part of both the
#: address digest (old entries become unreachable) and the payload
#: (an old file reached anyway reads as a miss).
DISK_FORMAT_VERSION = 1

#: Filename suffix for published entries (temp files use ``.tmp``).
_SUFFIX = ".pkl"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def digest_for(key: tuple) -> str:
    """The content address of one compile-identity key.

    ``key`` is :meth:`CompileCache.key_for`'s five-axis tuple
    ``(source, arch_name, opt_level, subobject_bounds, options)``.
    ``repr(options)`` is a frozen dataclass of enums, so it is stable
    across processes and grows new fields loudly (a new option axis
    changes every digest -- correct invalidation by construction).
    Run-only axes (mode, address map, revocation, allocator policy)
    are deliberately absent: one on-disk entry serves every run
    configuration, including the whole allocator-policy grid.
    """
    source, arch, opt_level, subobject, options = key
    payload = "\x00".join((
        f"v{DISK_FORMAT_VERSION}", arch, str(opt_level), str(subobject),
        repr(options), source,
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class DiskCache:
    """One on-disk cache directory of pickled Core programs.

    Stateless apart from its directory path: every operation re-reads
    the filesystem, so independent :class:`DiskCache` instances (and
    independent processes) sharing a directory see each other's
    entries immediately.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)

    def _path_for(self, digest: str) -> pathlib.Path:
        # Two-level sharding keeps any one directory small during long
        # fuzz campaigns (every generated program is a distinct key).
        return self.directory / digest[:2] / (digest + _SUFFIX)

    def load(self, key: tuple):
        """The cached :class:`~repro.core.coreir.CoreProgram` for
        ``key``, or ``None`` on *any* failure (missing, truncated,
        corrupt, wrong version, wrong digest, unpicklable)."""
        digest = digest_for(key)
        path = self._path_for(digest)
        try:
            blob = path.read_bytes()
            entry = pickle.loads(blob)
            if (not isinstance(entry, dict)
                    or entry.get("version") != DISK_FORMAT_VERSION
                    or entry.get("digest") != digest):
                raise ValueError("entry failed validation")
            return entry["core"]
        except FileNotFoundError:
            return None
        except Exception:
            # Damaged entry: drop it (best-effort -- a concurrent
            # writer may already have replaced it) so the caller's
            # recompile-and-rewrite leaves the cache healthy.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def store(self, key: tuple, core) -> bool:
        """Publish ``core`` under ``key`` via write-to-temp + atomic
        rename.  Best-effort: a read-only or full filesystem makes this
        a no-op (the run still completes, just uncached)."""
        digest = digest_for(key)
        path = self._path_for(digest)
        try:
            payload = pickle.dumps({
                "version": DISK_FORMAT_VERSION,
                "digest": digest,
                "core": core,
            }, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def __len__(self) -> int:
        """Published entry count (walks the directory; test/debug use)."""
        try:
            return sum(1 for _ in self.directory.glob("??/*" + _SUFFIX))
        except OSError:
            return 0
