"""Allocations: the ``A`` component of the memory state (S4.3).

Each allocation records its footprint, kind, liveness, writability, and
PNVI-ae exposure.  CHERI-specific: the *capability footprint* may be
padded beyond the requested size so the allocation's capability bounds
are exactly representable (S3.2: "allocators need to use additional
padding and/or alignment to ensure that the required capability is
representable and does not overlap other allocations").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ctypes.types import CType


class AllocKind(enum.Enum):
    STACK = "stack"      # automatic-storage objects
    HEAP = "heap"        # malloc'd regions
    GLOBAL = "global"    # static-storage objects
    FUNCTION = "function"  # code: function designators
    STRING = "string"    # string literals (read-only, static storage)

    # Members are singletons; the allocator keys its cursor table by
    # kind on every allocation, so keep hashing at C speed.
    __hash__ = object.__hash__


@dataclass
class Allocation:
    """One allocation's entry in ``A``.

    Attributes:
        base/size: the *object* footprint (what provenance checks use).
        cap_base/cap_size: the possibly padded capability footprint.
        readonly: const-qualified object or string literal (S3.9).
        alive: cleared by ``kill`` (scope exit / free); dead allocations
            are retained so use-after-free is detectable as UB.
        exposed: PNVI-ae exposure flag, set when the address is cast to
            an integer or its representation is read.
    """

    ident: int
    base: int
    size: int
    align: int
    kind: AllocKind
    ctype: CType | None = None
    name: str = ""
    readonly: bool = False
    alive: bool = True
    exposed: bool = False
    cap_base: int = field(default=-1)
    cap_size: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.cap_base < 0:
            self.cap_base = self.base
        if self.cap_size < 0:
            self.cap_size = self.size

    @property
    def top(self) -> int:
        return self.base + self.size

    def footprint_contains(self, addr: int, size: int = 1) -> bool:
        """Is ``[addr, addr+size)`` within the object footprint (1g)?"""
        return self.base <= addr and addr + size <= self.top

    def in_range_or_one_past(self, addr: int) -> bool:
        """ISO pointer-arithmetic validity: within or one-past (S3.2)."""
        return self.base <= addr <= self.top
