"""Capability derivation for arithmetic on capability-carrying types.

S3.7: "For binary arithmetic operations on two values of
capability-carrying types, CHERI C has to define how the bounds and tag
of the result are derived ... the resulting capabilities are derived
from their left arguments" and "for binary operations, the capability
derivation picks as a source for the resulting capability the argument
which was not a result of implicit or explicit conversion from a
non-capability type."

S4.4: "We made this derivation step explicit by elaborating it in the
intermediate Core language."  Here the elaboration is this function,
which the interpreter calls for every arithmetic operation at a
capability-carrying type.

Representation choice that makes the rule compositional: an integer
value that was *converted from* a non-capability type stays in the plain
``Z`` arm of ``integer_value`` even when its C type is ``(u)intptr_t``
(it is NULL-derived -- it carries no authority).  The derivation source
is then simply "the left capability-carrying argument, else the right".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UB, UndefinedBehaviour
from repro.memory.options import IntptrPolicy
from repro.memory.provenance import ProvKind
from repro.memory.values import IntegerValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.model import MemoryModel


def derive(lhs: IntegerValue, rhs: IntegerValue | None, result: int, *,
           signed: bool, hardware: bool,
           model: "MemoryModel | None" = None) -> IntegerValue:
    """Build the result of an arithmetic op at a capability-carrying type.

    ``result`` is the already-computed numeric value (after any wrapping
    the type requires).  ``rhs`` is ``None`` for unary operations.

    The derivation source is the left argument when it carries a
    capability (S3.7: non-commutative!), otherwise the right; when
    neither does, the result is a plain (NULL-derived) integer.

    Abstract machine (default policy, S3.3 option (3)/(c)): the address
    moves via the *ghost* path, so a non-representable result keeps its
    numeric value and gains unspecified ghost state.  The rejected S3.3
    options (1) and (2) are available through the model's
    :class:`~repro.memory.options.SemanticsOptions` for the ablation
    study.  Hardware: the tag is really cleared on non-representable
    results.
    """
    source: IntegerValue | None = None
    if lhs.is_capability:
        source = lhs
    elif rhs is not None and rhs.is_capability:
        source = rhs
    if source is None:
        return IntegerValue.of_int(result)
    if hardware:
        moved = source.with_value_hardware(result)
    else:
        policy = (model.options.intptr if model is not None
                  else IntptrPolicy.DEFINED_WITH_GHOST)
        moved = _apply_abstract_policy(source, result, policy)
    bus = model.bus if model is not None else None
    if bus is not None:
        _emit_derivation(bus, source, moved, hardware)
    # Signedness of the result follows the result type, not the source.
    return IntegerValue.of_cap(moved.cap, signed, moved.prov)


def _emit_derivation(bus, source: IntegerValue, moved: IntegerValue,
                     hardware: bool) -> None:
    """The S4.4 derivation step as trace events: one ``deriv.arith`` per
    op, plus ``ghost.set``/``cap.tag_clear`` when the move left the
    representable region (the S3.3 excursion)."""
    cap, new = source.cap, moved.cap
    assert cap is not None and new is not None
    ctx = {}
    if source.prov.kind is ProvKind.ALLOC:
        ctx["alloc"] = source.prov.ident
    elif source.prov.is_symbolic:
        ctx["iota"] = source.prov.ident
    representable = cap.bounds_fields.is_representable(cap.address,
                                                       new.address)
    bus.emit("deriv.arith", frm=hex(cap.address), to=hex(new.address),
             representable=representable, **ctx,
             what=f"(u)intptr_t arithmetic {cap.address:#x} -> "
                  f"{new.address:#x}"
                  + ("" if representable else " (non-representable)"))
    if hardware:
        if cap.tag and not new.tag:
            bus.emit("cap.tag_clear", **ctx,
                     what=f"tag cleared: move to {new.address:#x} left the "
                          f"representable region")
        return
    label = cap.ghost.transition_to(new.ghost)
    if label is not None:
        bus.emit("ghost.set", ghost=label, **ctx,
                 what=f"excursion to {new.address:#x}: {label} ghost state "
                      f"set (S3.3 option (c))")


def _apply_abstract_policy(source: IntegerValue, result: int,
                           policy: IntptrPolicy) -> IntegerValue:
    cap = source.cap
    assert cap is not None
    addr = result & cap.arch.address_mask
    if policy is IntptrPolicy.UB_OUTSIDE_BOUNDS:
        bounds = cap.decoded()
        if not (bounds.base <= addr <= bounds.top):
            raise UndefinedBehaviour(
                UB.OUT_OF_BOUNDS_PTR_ARITH,
                f"(u)intptr_t arithmetic to {addr:#x} outside "
                f"[{bounds.base:#x},{bounds.top:#x}] (S3.3 option 1)")
    elif policy is IntptrPolicy.UB_OUTSIDE_REPRESENTABLE:
        if not cap.bounds_fields.is_representable(cap.address, addr):
            raise UndefinedBehaviour(
                UB.OUT_OF_BOUNDS_PTR_ARITH,
                f"(u)intptr_t arithmetic to {addr:#x} outside the "
                f"representable region (S3.3 option 2)")
    return source.with_value(result)
