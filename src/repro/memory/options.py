"""Switchable semantic design options (the alternatives of S3).

The paper's S3 is a design-space discussion: for several questions it
enumerates options, weighs them against porting effort, optimisation
freedom, and portability, and picks one.  The memory model implements
*all* the enumerated options behind this configuration object, with the
paper's choices as defaults, so the trade-offs can be measured (see
``benchmarks/bench_ablation.py``) rather than just asserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OOBArithPolicy(enum.Enum):
    """S3.2: what may pointer arithmetic construct?

    The paper adopts ISO_UB: "These lead us to keep the stricter ISO
    rule also for CHERI C, option (a)".
    """

    ISO_UB = "a: UB beyond one-past (ISO 6.5.6p8)"
    PORTABLE_ENVELOPE = ("b: defined within the conservative "
                         "cross-architecture envelope of [45 S4.3.5]")
    ARCH_REPRESENTABLE = ("c: defined within the architecture's "
                          "representable region")


class IntptrPolicy(enum.Enum):
    """S3.3: what may (u)intptr_t arithmetic do?

    The paper adopts DEFINED_WITH_GHOST: "We choose (3)" with the
    ghost-state refinement (c).
    """

    UB_OUTSIDE_BOUNDS = ("1: like pointers -- UB beyond one-past the "
                         "allocation")
    UB_OUTSIDE_REPRESENTABLE = ("2: UB outside the representable region")
    DEFINED_WITH_GHOST = ("3: always defined; non-representable "
                          "excursions recorded in ghost state")


class EqualityPolicy(enum.Enum):
    """S3.6: what does pointer == compare?

    The paper adopts ADDRESS_ONLY: "pragmatically it seems that porting
    code is most straightforward with the third option".
    """

    EXACT_WITH_TAGS = "1: bitwise representation equality including tags"
    EXACT_WITHOUT_TAGS = "2: representation equality ignoring tags"
    ADDRESS_ONLY = "3: equality of the address fields only"


@dataclass(frozen=True)
class SemanticsOptions:
    """One point in the S3 design space (defaults = the paper's CHERI C)."""

    oob_arith: OOBArithPolicy = OOBArithPolicy.ISO_UB
    intptr: IntptrPolicy = IntptrPolicy.DEFINED_WITH_GHOST
    equality: EqualityPolicy = EqualityPolicy.ADDRESS_ONLY

    def describe(self) -> str:
        return (f"oob={self.oob_arith.name.lower()} "
                f"intptr={self.intptr.name.lower()} "
                f"eq={self.equality.name.lower()}")


PAPER_CHOICES = SemanticsOptions()
