"""Memory values and the capability-carrying integer value (S4.3).

The paper defines ``integer_value = Z (+) (B x Cap)``: an integer value
is either a plain mathematical integer or a capability together with a
signedness flag, the latter being the representation of ``(u)intptr_t``
values.  "This representation allows us to preserve all capability
fields when casting pointers to (u)intptr_t and back."

Pointer values pair a provenance with a capability.  Integer values also
carry a provenance: PNVI-ae-udi itself keeps integers provenance-free,
but the CHERI C memory model (like the Cerberus-CHERI implementation)
threads the originating allocation through ``(u)intptr_t`` values so that
round-trip casts (S3.3) and union type punning (S3.4) re-establish the
same provenance without an exposed-allocation search when possible; the
exposure machinery remains the fallback for plain integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.capability.abstract import Capability
from repro.ctypes.types import ArrayT, CType, StructT, UnionT
from repro.memory.provenance import Provenance


@dataclass(frozen=True)
class IntegerValue:
    """``Z (+) (B x Cap)``: exactly one of ``num`` / ``cap`` is set.

    ``signed`` only matters in the capability case (it is the ``B`` of
    the paper's sum type); plain integers carry their value exactly and
    take their type's signedness from context.
    """

    num: int | None = None
    cap: Capability | None = None
    signed: bool = True
    prov: Provenance = field(default_factory=Provenance.empty)

    def __post_init__(self) -> None:
        if (self.num is None) == (self.cap is None):
            raise ValueError("IntegerValue must be exactly one of num/cap")

    @classmethod
    def of_int(cls, value: int) -> "IntegerValue":
        return cls(num=value)

    @classmethod
    def of_cap(cls, cap: Capability, signed: bool,
               prov: Provenance | None = None) -> "IntegerValue":
        return cls(cap=cap, signed=signed,
                   prov=prov if prov is not None else Provenance.empty())

    @property
    def is_capability(self) -> bool:
        return self.cap is not None

    def value(self) -> int:
        """The mathematical integer value.

        For capability-carrying values this is the address part,
        interpreted according to the signedness flag -- the metadata does
        not contribute (S4.3 ``integer_value``).
        """
        if self.cap is None:
            assert self.num is not None
            return self.num
        addr = self.cap.address
        width = self.cap.arch.address_width
        if self.signed and addr >> (width - 1):
            addr -= 1 << width
        return addr

    def with_value(self, new: int) -> "IntegerValue":
        """Same shape, new numeric value.

        In the capability case the address moves via the abstract-machine
        *ghost* path (S3.3 option (c)): non-representable excursions are
        recorded in ghost state, never lose the numeric value.
        """
        if self.cap is None:
            return IntegerValue.of_int(new)
        width = self.cap.arch.address_width
        return IntegerValue.of_cap(
            self.cap.with_address_ghost(new & ((1 << width) - 1)),
            self.signed, self.prov)

    def with_value_hardware(self, new: int) -> "IntegerValue":
        """Hardware semantics: non-representable moves clear the tag."""
        if self.cap is None:
            return IntegerValue.of_int(new)
        width = self.cap.arch.address_width
        return IntegerValue.of_cap(
            self.cap.with_address(new & ((1 << width) - 1)),
            self.signed, self.prov)


@dataclass(frozen=True)
class PointerValue:
    """A pointer value: provenance plus capability (S4.3 rule (2a))."""

    prov: Provenance
    cap: Capability

    @property
    def address(self) -> int:
        return self.cap.address

    def with_cap(self, cap: Capability) -> "PointerValue":
        return replace(self, cap=cap)

    def with_prov(self, prov: Provenance) -> "PointerValue":
        return replace(self, prov=prov)

    def is_null(self) -> bool:
        return self.cap.is_null()


# ---------------------------------------------------------------------------
# Memory values (the typed view of object contents)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryValue:
    """Base class: a typed value as read from / written to memory."""

    ctype: CType


@dataclass(frozen=True)
class MVUnspecified(MemoryValue):
    """An unspecified value (uninitialised object, or a capability whose
    ghost state makes a field unspecified)."""


@dataclass(frozen=True)
class MVInteger(MemoryValue):
    ival: IntegerValue = IntegerValue.of_int(0)


@dataclass(frozen=True)
class MVPointer(MemoryValue):
    ptr: PointerValue = None  # type: ignore[assignment]


@dataclass(frozen=True)
class MVArray(MemoryValue):
    elems: tuple[MemoryValue, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.ctype, ArrayT):
            raise TypeError("MVArray requires an array type")


@dataclass(frozen=True)
class MVStruct(MemoryValue):
    members: tuple[tuple[str, MemoryValue], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.ctype, StructT):
            raise TypeError("MVStruct requires a struct/union type")

    def member(self, name: str) -> MemoryValue:
        for n, v in self.members:
            if n == name:
                return v
        raise KeyError(name)


@dataclass(frozen=True)
class MVUnion(MemoryValue):
    """A union value: the active member and its value."""

    active: str = ""
    value: MemoryValue | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.ctype, UnionT):
            raise TypeError("MVUnion requires a union type")
