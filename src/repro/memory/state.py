"""The memory state ``(A, S, M)`` with ``M = B x C`` (S4.3).

``A`` is the allocation table; ``S`` is the PNVI-ae-udi bookkeeping (the
exposure flags live on allocations, symbolic ``iota`` provenances here);
``B`` maps addresses to abstract bytes; ``C`` maps capability-aligned
addresses to ``(tag, ghost_state)`` pairs.

The paper's Coq model threads this state through a ``memM`` monad; in
Python the state is a mutable object owned by the
:class:`~repro.memory.model.MemoryModel`, which is the only writer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capability.abstract import Architecture
from repro.capability.ghost import GhostState
from repro.memory.absbyte import AbsByte
from repro.memory.allocation import Allocation
from repro.memory.allocator import AddressMap, make_allocator
from repro.memory.provenance import Provenance


@dataclass
class CapMeta:
    """One entry of the ``C`` dictionary: tag bit + two ghost bits."""

    tag: bool = False
    ghost: GhostState = field(default_factory=GhostState)


class MemState:
    """Mutable memory state.  See the module docstring for the mapping
    onto the paper's ``(A, S, (B, C))`` tuple."""

    def __init__(self, arch: Architecture, address_map: AddressMap,
                 allocator: str = "bump") -> None:
        self.arch = arch
        self.allocations: dict[int, Allocation] = {}        # A
        self.iotas: dict[int, tuple[int, ...]] = {}          # S (udi part)
        self.bytes: dict[int, AbsByte] = {}                  # B
        self.capmeta: dict[int, CapMeta] = {}                # C
        self.allocator = make_allocator(allocator, address_map,
                                        arch.compression)
        self._next_alloc_id = 1
        self._next_iota_id = 1

    # -- A: allocations -----------------------------------------------------

    def fresh_allocation_id(self) -> int:
        ident = self._next_alloc_id
        self._next_alloc_id += 1
        return ident

    def allocation(self, ident: int) -> Allocation:
        return self.allocations[ident]

    def add_allocation(self, alloc: Allocation) -> None:
        self.allocations[alloc.ident] = alloc

    def live_allocation_at(self, addr: int) -> Allocation | None:
        """The live allocation whose object footprint contains ``addr``."""
        for alloc in self.allocations.values():
            if alloc.alive and alloc.base <= addr < alloc.top:
                return alloc
        return None

    def exposed_candidates(self, addr: int) -> list[Allocation]:
        """Exposed live allocations for which ``addr`` is within bounds or
        one-past -- the PNVI-ae integer-to-pointer candidates."""
        return [a for a in self.allocations.values()
                if a.alive and a.exposed and a.base <= addr <= a.top]

    def expose(self, ident: int) -> None:
        """PNVI-ae exposure: mark the allocation, if live."""
        alloc = self.allocations.get(ident)
        if alloc is not None and alloc.alive:
            alloc.exposed = True

    # -- S: symbolic provenances (udi) ----------------------------------------

    def fresh_iota(self, candidates: tuple[int, ...]) -> Provenance:
        iota = self._next_iota_id
        self._next_iota_id += 1
        self.iotas[iota] = candidates
        return Provenance.symbolic(iota)

    def iota_candidates(self, iota_id: int) -> tuple[int, ...]:
        return self.iotas[iota_id]

    def resolve_iota(self, iota_id: int, ident: int) -> None:
        """Collapse a symbolic provenance to one allocation (first use)."""
        self.iotas[iota_id] = (ident,)

    # -- B: bytes -------------------------------------------------------

    def read_byte(self, addr: int) -> AbsByte:
        return self.bytes.get(addr, AbsByte.unspec())

    def write_byte(self, addr: int, byte: AbsByte) -> None:
        self.bytes[addr] = byte

    # -- C: capability metadata ------------------------------------------

    def cap_align_down(self, addr: int) -> int:
        size = self.arch.capability_size
        return addr & ~(size - 1)

    def cap_slots(self, addr: int, size: int) -> list[int]:
        """Capability-aligned slot addresses overlapping [addr, addr+size)."""
        if size <= 0:
            return []
        cap = self.arch.capability_size
        first = self.cap_align_down(addr)
        last = self.cap_align_down(addr + size - 1)
        return list(range(first, last + 1, cap))

    def capmeta_at(self, addr: int) -> CapMeta:
        return self.capmeta.get(addr, CapMeta())

    def set_capmeta(self, addr: int, meta: CapMeta) -> None:
        self.capmeta[addr] = meta

    def taint_capmeta(self, addr: int, size: int, hardware: bool) -> None:
        """A non-capability write landed on [addr, addr+size).

        Hardware: overlapping tags are *cleared* (S2.1 unforgeability).
        Abstract machine: previously set tags become *unspecified* in
        ghost state (S3.5, S4.3), licensing optimisations that remove the
        write.
        """
        for slot in self.cap_slots(addr, size):
            meta = self.capmeta.get(slot)
            if meta is None:
                continue
            if hardware:
                meta.tag = False
            elif meta.tag or not meta.ghost.tag_unspecified:
                meta.ghost = meta.ghost.with_tag_unspecified()
