"""Address-space policy: where allocations land.

The appendix of the paper shows that observable CHERI C behaviour can
depend on *allocator address ranges*: GCC's bare-metal allocator places
the stack below 2^31, so masking an ``intptr_t`` with ``INT_MAX`` is the
identity there, while Clang/CheriBSD stacks sit high enough that the same
mask moves the address far out of bounds ("In contrast, GCC does not
exhibit this issue, likely because of its memory allocator's address
ranges").  Each simulated implementation therefore gets its own
:class:`AddressMap`.

The allocator also implements the representability padding of S3.2:
"allocators need to use additional padding and/or alignment to ensure
that the required capability is representable and does not overlap other
allocations".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capability.concentrate import CompressionParams
from repro.errors import MemoryModelError
from repro.memory.allocation import AllocKind


@dataclass(frozen=True)
class AddressMap:
    """Base addresses for each storage region (see repro.impls for the
    per-implementation instances)."""

    name: str
    stack_base: int      # stack allocations grow downward from here
    heap_base: int       # heap allocations grow upward from here
    globals_base: int    # static-storage objects grow upward from here
    code_base: int       # function "allocations" grow upward from here

    def region_base(self, kind: AllocKind) -> int:
        if kind is AllocKind.STACK:
            return self.stack_base
        if kind is AllocKind.HEAP:
            return self.heap_base
        if kind is AllocKind.FUNCTION:
            return self.code_base
        return self.globals_base


def representable_region(params: CompressionParams, size: int,
                         align: int) -> tuple[int, int]:
    """Alignment and padded size making bounds exactly representable.

    Returns ``(align', size')`` such that any base aligned to ``align'``
    with length ``size'`` encodes exactly under ``params`` and
    ``size' >= size``, ``align' >= align``.  Iterates because padding the
    length can bump the required exponent.
    """
    if size < 0:
        raise MemoryModelError("negative allocation size")
    mw, eb = params.mantissa_width, params.exponent_low_bits
    cur_size = max(size, 1)
    while True:
        exponent = (cur_size >> (mw - 1)).bit_length()
        internal = exponent != 0 or bool((cur_size >> (mw - 2)) & 1)
        if not internal:
            return max(align, 1), cur_size
        granule = 1 << (exponent + eb)
        new_size = _align_up(cur_size, granule)
        new_align = max(align, granule)
        if new_size == cur_size:
            return new_align, new_size
        cur_size = new_size


class BumpAllocator:
    """Simple region-per-kind bump allocator.

    Stack allocations grow downward (matching the appendix traces where
    successive frames have decreasing addresses); everything else grows
    upward.  Dead regions are never reused except via :meth:`rewind`,
    which the interpreter uses on scope exit so that stack reuse -- the
    behaviour that makes use-after-scope observable on real hardware --
    is faithfully modelled.
    """

    def __init__(self, address_map: AddressMap,
                 params: CompressionParams) -> None:
        self.address_map = address_map
        self.params = params
        #: Optional event bus (set by the owning MemoryModel); when
        #: attached, every reservation emits ``region.reserve``.
        self.bus = None
        #: Optional :class:`~repro.robust.BudgetMeter` (set by the
        #: owning MemoryModel); when attached, every reservation is
        #: charged against the run's allocation budget.
        self.meter = None
        self._cursors: dict[AllocKind, int] = {
            kind: address_map.region_base(kind) for kind in AllocKind
        }

    @staticmethod
    def _region(kind: AllocKind) -> AllocKind:
        """String literals live in the globals region (rodata)."""
        return AllocKind.GLOBAL if kind is AllocKind.STRING else kind

    def cursor(self, kind: AllocKind) -> int:
        return self._cursors[self._region(kind)]

    def rewind(self, kind: AllocKind, cursor: int) -> None:
        """Reset a region cursor (stack frame pop)."""
        self._cursors[self._region(kind)] = cursor

    def allocate(self, kind: AllocKind, size: int,
                 align: int) -> tuple[int, int]:
        """Reserve a region; returns ``(base, padded_size)``.

        The padded size and alignment guarantee an exactly representable
        capability (S3.2) and keep distinct allocations' capability
        footprints disjoint.
        """
        region = self._region(kind)
        align2, size2 = representable_region(self.params, size, align)
        meter = self.meter
        if meter is not None:
            # Charge the *padded* size before moving the cursor so a
            # cut-off run leaves the region untouched past the cut.
            meter.charge_allocation(size2,
                                    f"{region.name.lower()} allocation")
        cursor = self._cursors[region]
        if kind is AllocKind.STACK:
            base = _align_down(cursor - size2, align2)
            if base < 0:
                raise MemoryModelError("stack region exhausted")
            self._cursors[region] = base
        else:
            base = _align_up(cursor, align2)
            self._cursors[region] = base + size2
        bus = self.bus
        if bus is not None:
            bus.emit("region.reserve", region=region.name.lower(),
                     base=hex(base), size=size, padded_size=size2,
                     align=align2,
                     what=f"{region.name.lower()} [{base:#x},+{size2}) for "
                          f"{size} bytes (representability pad "
                          f"{size2 - size})")
        return base, size2


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


def _align_down(value: int, align: int) -> int:
    return value & ~(align - 1)
