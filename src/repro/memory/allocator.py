"""Address-space policy: where allocations land.

The appendix of the paper shows that observable CHERI C behaviour can
depend on *allocator address ranges*: GCC's bare-metal allocator places
the stack below 2^31, so masking an ``intptr_t`` with ``INT_MAX`` is the
identity there, while Clang/CheriBSD stacks sit high enough that the same
mask moves the address far out of bounds ("In contrast, GCC does not
exhibit this issue, likely because of its memory allocator's address
ranges").  Each simulated implementation therefore gets its own
:class:`AddressMap`.

Behaviour can equally depend on the *allocation policy* ("Picking a
CHERI Allocator: Security and Performance Considerations", Bramley et
al.): whether ``free``'d heap addresses are reused decides whether a
use-after-free capability aliases a fresh object, and temporal-safety
designs (CHERIoT) quarantine freed regions until revocation has swept
them.  The policy surface is :class:`AllocatorPolicy`; three
deterministic implementations are provided:

``bump`` (:class:`BumpAllocator`)
    The historical default.  Dead regions are never reused except via
    :meth:`~AllocatorPolicy.rewind` on scope exit.
``freelist`` (:class:`FreeListAllocator`)
    Size-class free lists: a freed heap region's capability footprint is
    recycled for the next same-size ``malloc``, so dangling capabilities
    alias the new object exactly as on conventional hardware allocators.
``quarantine`` (:class:`QuarantineAllocator`)
    Free-list reuse delayed by a bounded FIFO quarantine (CHERIoT-style
    temporal safety): a freed region only becomes reusable after
    :data:`QUARANTINE_CAPACITY` further frees, giving revocation sweeps
    a window to invalidate dangling capabilities first.

The allocator also implements the representability padding of S3.2:
"allocators need to use additional padding and/or alignment to ensure
that the required capability is representable and does not overlap other
allocations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.capability.concentrate import CompressionParams
from repro.errors import MemoryModelError
from repro.memory.allocation import AllocKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.allocation import Allocation


#: FIFO depth of the ``quarantine`` policy: a freed region becomes
#: reusable only once this many *younger* frees have queued behind it.
QUARANTINE_CAPACITY = 4


@dataclass(frozen=True)
class AddressMap:
    """Base addresses for each storage region (see repro.impls for the
    per-implementation instances)."""

    name: str
    stack_base: int      # stack allocations grow downward from here
    heap_base: int       # heap allocations grow upward from here
    globals_base: int    # static-storage objects grow upward from here
    code_base: int       # function "allocations" grow upward from here

    def region_base(self, kind: AllocKind) -> int:
        if kind is AllocKind.STACK:
            return self.stack_base
        if kind is AllocKind.HEAP:
            return self.heap_base
        if kind is AllocKind.FUNCTION:
            return self.code_base
        return self.globals_base


def representable_region(params: CompressionParams, size: int,
                         align: int) -> tuple[int, int]:
    """Alignment and padded size making bounds exactly representable.

    Returns ``(align', size')`` such that any base aligned to ``align'``
    with length ``size'`` encodes exactly under ``params`` and
    ``size' >= size``, ``align' >= align``.  Iterates because padding the
    length can bump the required exponent.
    """
    if size < 0:
        raise MemoryModelError("negative allocation size")
    mw, eb = params.mantissa_width, params.exponent_low_bits
    cur_size = max(size, 1)
    while True:
        exponent = (cur_size >> (mw - 1)).bit_length()
        internal = exponent != 0 or bool((cur_size >> (mw - 2)) & 1)
        if not internal:
            return max(align, 1), cur_size
        granule = 1 << (exponent + eb)
        new_size = _align_up(cur_size, granule)
        new_align = max(align, granule)
        if new_size == cur_size:
            return new_align, new_size
        cur_size = new_size


class AllocatorPolicy:
    """Region-per-kind allocator with a pluggable heap-reuse policy.

    Stack allocations grow downward (matching the appendix traces where
    successive frames have decreasing addresses); everything else grows
    upward.  Subclasses decide what happens to *freed heap regions* by
    overriding :meth:`release` and :meth:`_take_reusable`; the base
    class never reuses anything except via :meth:`rewind`, which the
    interpreter uses on scope exit so that stack reuse -- the behaviour
    that makes use-after-scope observable on real hardware -- is
    faithfully modelled.

    The policy name is the value of the ``allocator`` Implementation
    axis.  It is a *run-only* axis: compiled programs are
    policy-independent (the compile caches are shared across policies),
    but run memos and snapshots key on it (see
    :func:`repro.core.compile.run_config_key`).
    """

    #: The registry key and the value carried on region events.
    policy = "bump"

    def __init__(self, address_map: AddressMap,
                 params: CompressionParams) -> None:
        self.address_map = address_map
        self.params = params
        #: Optional event bus (set by the owning MemoryModel); when
        #: attached, every reservation emits ``region.reserve`` (or
        #: ``region.reuse`` when a freed region is recycled).
        self.bus = None
        #: Optional :class:`~repro.robust.BudgetMeter` (set by the
        #: owning MemoryModel); when attached, every reservation is
        #: charged against the run's allocation budget.
        self.meter = None
        self._cursors: dict[AllocKind, int] = {
            kind: address_map.region_base(kind) for kind in AllocKind
        }

    @staticmethod
    def _region(kind: AllocKind) -> AllocKind:
        """String literals live in the globals region (rodata)."""
        return AllocKind.GLOBAL if kind is AllocKind.STRING else kind

    def cursor(self, kind: AllocKind) -> int:
        return self._cursors[self._region(kind)]

    def rewind(self, kind: AllocKind, cursor: int) -> None:
        """Reset a region cursor (stack frame pop)."""
        self._cursors[self._region(kind)] = cursor

    def allocate(self, kind: AllocKind, size: int,
                 align: int) -> tuple[int, int]:
        """Reserve a region; returns ``(base, padded_size)``.

        The padded size and alignment guarantee an exactly representable
        capability (S3.2) and keep distinct allocations' capability
        footprints disjoint.  Heap requests first consult the policy's
        reuse pool (:meth:`_take_reusable`); everything else -- and any
        heap request the pool cannot satisfy -- bumps the region cursor.
        """
        region = self._region(kind)
        align2, size2 = representable_region(self.params, size, align)
        meter = self.meter
        if meter is not None:
            # Charge the *padded* size before moving the cursor so a
            # cut-off run leaves the region untouched past the cut.
            meter.charge_allocation(size2,
                                    f"{region.name.lower()} allocation")
        if region is AllocKind.HEAP:
            base = self._take_reusable(size2, align2)
            if base is not None:
                bus = self.bus
                if bus is not None:
                    bus.emit("region.reuse", region=region.name.lower(),
                             base=hex(base), size=size, padded_size=size2,
                             align=align2, policy=self.policy,
                             what=f"heap [{base:#x},+{size2}) reused for "
                                  f"{size} bytes ({self.policy} policy)")
                return base, size2
        cursor = self._cursors[region]
        if kind is AllocKind.STACK:
            base = _align_down(cursor - size2, align2)
            if base < 0:
                raise MemoryModelError("stack region exhausted")
            self._cursors[region] = base
        else:
            base = _align_up(cursor, align2)
            self._cursors[region] = base + size2
        bus = self.bus
        if bus is not None:
            bus.emit("region.reserve", region=region.name.lower(),
                     base=hex(base), size=size, padded_size=size2,
                     align=align2, policy=self.policy,
                     what=f"{region.name.lower()} [{base:#x},+{size2}) for "
                          f"{size} bytes (representability pad "
                          f"{size2 - size})")
        return base, size2

    # -- the policy surface -------------------------------------------------

    def release(self, alloc: "Allocation") -> None:
        """A heap allocation died (``free``/``realloc``).

        The bump policy never reuses freed regions, so this is a no-op;
        reusing policies record the capability footprint for recycling.
        """

    def _take_reusable(self, padded_size: int,
                       align: int) -> int | None:
        """A base address to recycle for a heap request, or ``None``."""
        return None

    # -- snapshots (compiled-backend globals memos) -------------------------

    def snapshot(self) -> dict[str, Any]:
        """Deep-copied policy state for the compiled backend's
        globals-snapshot machinery (:mod:`repro.core.compile`)."""
        return {"cursors": dict(self._cursors)}

    def restore(self, snap: dict[str, Any]) -> None:
        self._cursors.update(snap["cursors"])


class BumpAllocator(AllocatorPolicy):
    """The historical default: freed heap regions are never reused.

    Kept as a distinct class (rather than an alias) so the registry and
    long-standing tests can continue to name it, and so its behaviour is
    pinned byte-identical to the pre-policy allocator.
    """

    policy = "bump"


class FreeListAllocator(AllocatorPolicy):
    """Size-class free lists with immediate reuse.

    ``free`` pushes the capability footprint onto a per-padded-size
    list; the next ``malloc`` whose padded size matches pops the most
    recently freed compatible region (LIFO, like glibc tcache/fastbins).
    A dangling capability therefore aliases the replacement object --
    the use-after-free behaviour conventional allocators exhibit and the
    reason temporal-safety work (revocation, quarantine) exists.
    """

    policy = "freelist"

    def __init__(self, address_map: AddressMap,
                 params: CompressionParams) -> None:
        super().__init__(address_map, params)
        #: padded capability size -> freed base addresses, oldest first.
        self._free: dict[int, list[int]] = {}

    def release(self, alloc: "Allocation") -> None:
        self._free.setdefault(alloc.cap_size, []).append(alloc.cap_base)

    def _take_reusable(self, padded_size: int,
                       align: int) -> int | None:
        bucket = self._free.get(padded_size)
        if not bucket:
            return None
        # LIFO, but only a base the request's alignment permits; the
        # scan is deterministic (most recent compatible entry wins).
        for i in range(len(bucket) - 1, -1, -1):
            if bucket[i] % align == 0:
                return bucket.pop(i)
        return None

    def snapshot(self) -> dict[str, Any]:
        snap = super().snapshot()
        snap["free"] = {size: list(bases)
                        for size, bases in self._free.items()}
        return snap

    def restore(self, snap: dict[str, Any]) -> None:
        super().restore(snap)
        self._free = {size: list(bases)
                      for size, bases in snap["free"].items()}


class QuarantineAllocator(FreeListAllocator):
    """Free-list reuse delayed by a bounded FIFO quarantine.

    Models CHERIoT-style temporal safety: a freed region sits in
    quarantine (unreusable) until :data:`QUARANTINE_CAPACITY` younger
    frees have queued behind it, at which point the oldest entry
    graduates to the free list.  Composed with the ``revocation``
    Implementation flag this approximates the sweep-before-reuse
    guarantee; without revocation it merely *delays* the aliasing the
    ``freelist`` policy makes immediate.
    """

    policy = "quarantine"

    def __init__(self, address_map: AddressMap,
                 params: CompressionParams) -> None:
        super().__init__(address_map, params)
        #: FIFO of quarantined (cap_size, cap_base), oldest first.
        self._quarantine: list[tuple[int, int]] = []

    def release(self, alloc: "Allocation") -> None:
        self._quarantine.append((alloc.cap_size, alloc.cap_base))
        bus = self.bus
        if bus is not None:
            bus.emit("region.quarantine", region="heap",
                     base=hex(alloc.cap_base), padded_size=alloc.cap_size,
                     depth=len(self._quarantine), policy=self.policy,
                     what=f"heap [{alloc.cap_base:#x},+{alloc.cap_size}) "
                          f"quarantined ({len(self._quarantine)}/"
                          f"{QUARANTINE_CAPACITY})")
        while len(self._quarantine) > QUARANTINE_CAPACITY:
            size, base = self._quarantine.pop(0)
            self._free.setdefault(size, []).append(base)

    def snapshot(self) -> dict[str, Any]:
        snap = super().snapshot()
        snap["quarantine"] = list(self._quarantine)
        return snap

    def restore(self, snap: dict[str, Any]) -> None:
        super().restore(snap)
        self._quarantine = list(snap["quarantine"])


#: The ``allocator`` axis registry: policy name -> class.
ALLOCATOR_POLICIES: dict[str, type[AllocatorPolicy]] = {
    BumpAllocator.policy: BumpAllocator,
    FreeListAllocator.policy: FreeListAllocator,
    QuarantineAllocator.policy: QuarantineAllocator,
}


def make_allocator(policy: str, address_map: AddressMap,
                   params: CompressionParams) -> AllocatorPolicy:
    """Instantiate the named allocator policy."""
    try:
        cls = ALLOCATOR_POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(ALLOCATOR_POLICIES))
        raise MemoryModelError(
            f"unknown allocator policy {policy!r} (known: {known})"
        ) from None
    return cls(address_map, params)


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


def _align_down(value: int, align: int) -> int:
    return value & ~(align - 1)
