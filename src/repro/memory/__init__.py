"""The CHERI C memory object model (S4.3).

State is the paper's ``mem_state = A x S x M`` with ``M = B x C``:

* ``A`` -- allocations (:mod:`repro.memory.allocation`);
* ``S`` -- PNVI-ae-udi bookkeeping: exposure flags live on allocations,
  symbolic (``iota``) provenances in :class:`~repro.memory.state.MemState`;
* ``B`` -- an address-indexed dictionary of abstract bytes
  (:mod:`repro.memory.absbyte`);
* ``C`` -- per-capability-aligned-location tag + two-bit ghost state.

The operational interface -- allocate, kill, load, store, pointer
arithmetic, casts, memcpy and friends -- is
:class:`~repro.memory.model.MemoryModel`, which runs in either of two
modes (:class:`~repro.memory.model.Mode`): the *abstract machine* of the
paper's semantics (UB + ghost state) or *hardware* execution (traps,
real tag clearing) used by the simulated Clang/GCC implementations.
"""

from repro.memory.allocation import Allocation, AllocKind
from repro.memory.allocator import (
    ALLOCATOR_POLICIES,
    AllocatorPolicy,
    BumpAllocator,
    FreeListAllocator,
    QuarantineAllocator,
    make_allocator,
)
from repro.memory.invariants import CheckedMemoryModel, check_invariants
from repro.memory.absbyte import AbsByte
from repro.memory.model import MemoryModel, Mode
from repro.memory.provenance import Provenance
from repro.memory.state import MemState
from repro.memory.values import (
    IntegerValue,
    MemoryValue,
    MVArray,
    MVInteger,
    MVPointer,
    MVStruct,
    MVUnion,
    MVUnspecified,
    PointerValue,
)

__all__ = [
    "AbsByte", "Allocation", "AllocKind", "ALLOCATOR_POLICIES",
    "AllocatorPolicy", "BumpAllocator", "CheckedMemoryModel",
    "FreeListAllocator", "QuarantineAllocator", "check_invariants",
    "make_allocator", "IntegerValue", "MemoryModel",
    "MemoryValue", "MemState", "Mode", "MVArray", "MVInteger", "MVPointer",
    "MVStruct", "MVUnion", "MVUnspecified", "PointerValue", "Provenance",
]
