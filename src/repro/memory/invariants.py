"""Machine-checked global invariants of the memory object model.

The paper's S7: the Coq mechanisation "makes it potentially usable for
proof about the language, e.g. to make precise properties such as
provenance validity and capability integrity that are informally
described in the CHERI architecture specification."  This module states
those two properties precisely over our state and checks them
dynamically: :class:`CheckedMemoryModel` re-validates the full state
after every mutating operation, so running the whole validation suite
under it is a bounded-exhaustive check of the invariants over every
reachable state of every test program.

**Capability integrity** (after [44]'s informal statement): every
*reliably* tagged capability in memory (tag set, ghost clean) was
legitimately derived -- its bounds lie within the capability footprint
of some allocation (live or dead: CHERI without revocation does not
revoke on free), or it is one of the implementation's own root-derived
capabilities (function sentries, the sealing root).

**Provenance validity** (after [28]): every abstract byte's provenance
and every allocation-provenance in the state names an allocation that
exists in ``A``; tag metadata exists only at capability-aligned
addresses; allocations' capability footprints are pairwise disjoint.
"""

from __future__ import annotations

from repro.errors import MemoryModelError
from repro.memory.model import MemoryModel
from repro.memory.provenance import ProvKind


def check_invariants(model: MemoryModel) -> None:
    """Raise :class:`MemoryModelError` on any invariant violation."""
    _check_allocation_disjointness(model)
    _check_provenance_validity(model)
    _check_tag_alignment(model)
    _check_capability_integrity(model)


def _check_allocation_disjointness(model: MemoryModel) -> None:
    # Only live allocations must be disjoint: dead records are retained
    # (for temporal UB detection) and stack/heap space is legitimately
    # reused after their lifetime ends.
    spans = sorted((a.cap_base, a.cap_base + a.cap_size, a.ident)
                   for a in model.state.allocations.values() if a.alive)
    for (a0, a1, ai), (b0, _b1, bi) in zip(spans, spans[1:]):
        if a1 > b0:
            raise MemoryModelError(
                f"allocations @{ai} and @{bi} overlap: "
                f"[{a0:#x},{a1:#x}) vs base {b0:#x}")


def _check_provenance_validity(model: MemoryModel) -> None:
    allocations = model.state.allocations
    for addr, byte in model.state.bytes.items():
        if byte.prov.kind is ProvKind.ALLOC and \
                byte.prov.ident not in allocations:
            raise MemoryModelError(
                f"byte at {addr:#x} carries provenance @{byte.prov.ident} "
                "which names no allocation")
        if byte.prov.is_symbolic and \
                byte.prov.ident not in model.state.iotas:
            raise MemoryModelError(
                f"byte at {addr:#x} carries unknown iota "
                f"@{byte.prov.ident}")
    for iota, candidates in model.state.iotas.items():
        for ident in candidates:
            if ident not in allocations:
                raise MemoryModelError(
                    f"iota {iota} references missing allocation @{ident}")


def _check_tag_alignment(model: MemoryModel) -> None:
    size = model.arch.capability_size
    for addr in model.state.capmeta:
        if addr % size:
            raise MemoryModelError(
                f"capability metadata at misaligned address {addr:#x}")


def _check_capability_integrity(model: MemoryModel) -> None:
    size = model.arch.capability_size
    space = 1 << model.arch.address_width
    allocations = list(model.state.allocations.values())
    for slot, meta in model.state.capmeta.items():
        if not meta.tag or not meta.ghost.is_clean:
            continue
        data = bytes(model.state.read_byte(slot + i).value or 0
                     for i in range(size))
        cap = model.arch.decode(data, True)
        bounds = cap.decoded()
        if bounds.top > space or bounds.base >= bounds.top and \
                bounds.base != bounds.top:
            pass  # zero-length capabilities are fine
        derived_ok = any(
            a.cap_base <= bounds.base and
            bounds.top <= a.cap_base + a.cap_size
            for a in allocations)
        # Root-derived implementation capabilities (the sealing root,
        # NULL-derived whole-space values) span beyond any allocation.
        whole_space = bounds.base == 0 and bounds.top == space
        otype_root = bounds.top <= (1 << model.arch.otype_width)
        if not (derived_ok or whole_space or otype_root):
            raise MemoryModelError(
                f"tagged capability at slot {slot:#x} has bounds "
                f"[{bounds.base:#x},{bounds.top:#x}) derived from no "
                "allocation")


class CheckedMemoryModel(MemoryModel):
    """A memory model that re-checks all global invariants after every
    mutating operation -- the dynamic analogue of mechanised proof."""

    #: Mutating public operations to guard.
    _GUARDED = ("allocate_object", "allocate_region", "allocate_string",
                "allocate_function", "free", "realloc", "store", "memcpy",
                "memset", "kill_allocation")

    def __getattribute__(self, name):
        attr = super().__getattribute__(name)
        if name in CheckedMemoryModel._GUARDED:
            def guarded(*args, **kwargs):
                result = attr(*args, **kwargs)
                check_invariants(self)
                return result
            return guarded
        return attr
