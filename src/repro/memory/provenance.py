"""Pointer provenance (PNVI-ae-udi, S2.3 / S3.11).

A provenance is one of:

* **empty** -- no associated allocation (e.g. a pointer fabricated from
  an integer that matched no exposed allocation); any access through it
  is UB;
* **an allocation ID** -- the normal case;
* **symbolic** (``iota``) -- the "user disambiguation" of PNVI-ae-udi:
  an integer-to-pointer cast whose address sits exactly on the boundary
  between two exposed allocations (one-past the end of one, the start of
  the other) is ambiguous; the choice is deferred and resolved by the
  first use that disambiguates it.

Provenance is an abstract-machine notion only; it is never represented at
runtime by conventional implementations and is *complementary* to, not
subsumed by, capability checks (S3.11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ProvKind(enum.Enum):
    EMPTY = "empty"
    ALLOC = "alloc"
    SYMBOLIC = "iota"


@dataclass(frozen=True)
class Provenance:
    kind: ProvKind
    ident: int = 0  # allocation id, or iota id for SYMBOLIC

    @classmethod
    def empty(cls) -> "Provenance":
        return _EMPTY

    @classmethod
    def alloc(cls, alloc_id: int) -> "Provenance":
        return cls(ProvKind.ALLOC, alloc_id)

    @classmethod
    def symbolic(cls, iota_id: int) -> "Provenance":
        return cls(ProvKind.SYMBOLIC, iota_id)

    @property
    def is_empty(self) -> bool:
        return self.kind is ProvKind.EMPTY

    @property
    def is_symbolic(self) -> bool:
        return self.kind is ProvKind.SYMBOLIC

    @property
    def alloc_id(self) -> int:
        if self.kind is not ProvKind.ALLOC:
            raise ValueError(f"provenance {self} has no allocation id")
        return self.ident

    def describe(self) -> str:
        """Appendix-A style: ``@86`` for allocations, ``@empty``."""
        if self.kind is ProvKind.EMPTY:
            return "@empty"
        if self.kind is ProvKind.SYMBOLIC:
            return f"@iota{self.ident}"
        return f"@{self.ident}"


_EMPTY = Provenance(ProvKind.EMPTY)
