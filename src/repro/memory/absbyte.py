"""Abstract memory bytes.

S4.3: "Each byte consists of provenance (pi), an optional 8-bit numeric
value, and an optional integer index."

The optional value models uninitialised memory (reading it yields an
unspecified value).  The index records, for bytes of a stored pointer
representation, *which* byte of the capability this is; the abstraction
function uses it to check that a pointer read back bytewise was copied
coherently (a requirement inherited from the PNVI models).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.provenance import Provenance


@dataclass(frozen=True)
class AbsByte:
    prov: Provenance
    value: int | None = None
    index: int | None = None

    def __post_init__(self) -> None:
        if self.value is not None and not 0 <= self.value <= 0xFF:
            raise ValueError(f"byte value out of range: {self.value}")

    @classmethod
    def unspec(cls) -> "AbsByte":
        """An uninitialised byte."""
        return _UNSPEC

    @property
    def is_unspecified(self) -> bool:
        return self.value is None


_UNSPEC = AbsByte(Provenance.empty())
