"""CHERI C intrinsics (S4.5).

"Many of the CHERI C intrinsics are polymorphic in the capability type
they accept, and their return type may depend on it" -- each intrinsic
here carries an :class:`IntrinsicSig` whose entries may be concrete C
types or the marker :data:`SAME_AS_ARG0`, the embedded-DSL type
derivation the paper adds to Cerberus.

Ghost-state interaction (S3.5): on a capability whose tag is unspecified
in ghost state, ``cheri_tag_get`` and ``cheri_is_equal_exact`` return an
*unspecified* value (not UB); bounds queries on a capability with
unspecified bounds likewise.  The address is always defined (S3.3).
Permissions are represented exactly (S3.10), so permission queries stay
defined.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capability.abstract import Capability
from repro.capability.otype import OType
from repro.capability.permissions import Permission, PermissionSet
from repro.ctypes.types import BOOL, CType, LONG, PTRADDR, SIZE_T
from repro.memory.model import MemoryModel


class _Unspecified:
    """Sentinel: the intrinsic's result is an unspecified value."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<unspecified>"


UNSPECIFIED = _Unspecified()

#: Type-derivation marker: result/parameter has the (capability-carrying)
#: type of the call's first argument.
SAME_AS_ARG0 = "same-as-arg0"


@dataclass(frozen=True)
class IntrinsicSig:
    """Signature with possibly-derived types (the S4.5 DSL)."""

    params: tuple[object, ...]   # CType | SAME_AS_ARG0 ("any capability")
    ret: object                  # CType | SAME_AS_ARG0


class Intrinsics:
    """Implementation of the intrinsics against one memory model."""

    def __init__(self, model: MemoryModel) -> None:
        self.model = model
        self.arch = model.arch

    def _emit(self, kind: str, **data) -> None:
        bus = self.model.bus
        if bus is not None:
            bus.emit(kind, **data)

    # -- field getters ------------------------------------------------------

    def address_get(self, cap: Capability) -> int:
        """``cheri_address_get``: always defined, even under ghost state
        (the address part of a (u)intptr_t value is always defined, S3.3)."""
        return cap.address

    def base_get(self, cap: Capability) -> int | _Unspecified:
        if cap.ghost.bounds_unspecified:
            return UNSPECIFIED
        return cap.base

    def length_get(self, cap: Capability) -> int | _Unspecified:
        if cap.ghost.bounds_unspecified:
            return UNSPECIFIED
        return cap.length

    def top_get(self, cap: Capability) -> int | _Unspecified:
        if cap.ghost.bounds_unspecified:
            return UNSPECIFIED
        return cap.top

    def offset_get(self, cap: Capability) -> int | _Unspecified:
        if cap.ghost.bounds_unspecified:
            return UNSPECIFIED
        return cap.address - cap.base

    def tag_get(self, cap: Capability) -> bool | _Unspecified:
        """Unspecified once the representation was manipulated (S3.5)."""
        if cap.ghost.tag_unspecified:
            return UNSPECIFIED
        return cap.tag

    def perms_get(self, cap: Capability) -> int:
        """The permission bits, packed per the architecture's layout.

        Defined even under ghost state: the effect of representation
        manipulation on fields other than the tag is implementation
        defined, not unspecified (S3.5 summary)."""
        word = 0
        for i, perm in enumerate(self.arch.perm_order):
            if perm in cap.perms:
                word |= 1 << i
        return word

    def type_get(self, cap: Capability) -> int:
        return cap.otype.value

    def is_sealed(self, cap: Capability) -> bool:
        return cap.is_sealed

    def is_sentry(self, cap: Capability) -> bool:
        return cap.otype.is_sentry

    def is_valid(self, cap: Capability) -> bool | _Unspecified:
        return self.tag_get(cap)

    # -- field setters (monotonic) ---------------------------------------

    def address_set(self, cap: Capability, addr: int) -> Capability:
        masked = addr & self.arch.address_mask
        if self.model.hardware:
            new = cap.with_address(masked)
        else:
            new = cap.with_address_ghost(masked)
        self._emit("cap.address_set", frm=hex(cap.address), to=hex(masked),
                   what=f"address set {cap.address:#x} -> {masked:#x}")
        return new

    def offset_set(self, cap: Capability, offset: int) -> Capability:
        if cap.ghost.bounds_unspecified:
            # base is unspecified; the result address would be too -- keep
            # ghost and move relative to the current (defined) address.
            return self.address_set(cap, cap.address + offset)
        return self.address_set(cap, cap.base + offset)

    def tag_clear(self, cap: Capability) -> Capability:
        self._emit("cap.tag_clear", addr=hex(cap.address),
                   what=f"tag cleared at {cap.address:#x}")
        return cap.with_tag(False)

    def perms_and(self, cap: Capability, mask: int) -> Capability:
        kept = PermissionSet.from_iterable(
            perm for i, perm in enumerate(self.arch.perm_order)
            if (mask >> i) & 1)
        new = cap.with_perms_masked(kept)
        self._emit("cap.perms_and", mask=mask, perms=new.perms.describe(),
                   what=f"permissions masked to [{new.perms.describe()}]")
        return new

    def bounds_set(self, cap: Capability, length: int) -> Capability:
        new, exact = cap.set_bounds(cap.address, length)
        self._emit("cap.bounds_set", addr=hex(cap.address), length=length,
                   exact=exact,
                   what=f"bounds narrowed to [{new.base:#x}-{new.top:#x}]"
                        f" (len {length}"
                        + ("" if exact else ", padded") + ")")
        return new

    def bounds_set_exact(self, cap: Capability, length: int) -> Capability:
        """Like ``bounds_set`` but the tag is cleared when the requested
        bounds are not exactly representable."""
        new, exact = cap.set_bounds(cap.address, length)
        self._emit("cap.bounds_set", addr=hex(cap.address), length=length,
                   exact=exact, exact_requested=True,
                   what=f"exact bounds [{cap.address:#x},+{length})"
                        + ("" if exact else " not representable: tag "
                                            "cleared"))
        if exact:
            return new
        self._emit("cap.tag_clear", addr=hex(cap.address),
                   what="tag cleared: requested exact bounds not "
                        "representable")
        return new.with_tag(False)

    # -- sealing --------------------------------------------------------

    def seal(self, cap: Capability, authority: Capability) -> Capability:
        ok = (authority.tag and not authority.is_sealed
              and authority.has_perm(Permission.SEAL)
              and authority.in_bounds(authority.address, 1))
        otype = OType(authority.address
                      & ((1 << self.arch.otype_width) - 1))
        sealed = cap.sealed_with(otype)
        self._emit("cap.seal", addr=hex(cap.address), otype=otype.value,
                   ok=ok,
                   what=f"sealed with otype {otype.value}"
                        + ("" if ok else " (bad authority: tag cleared)"))
        return sealed if ok else sealed.with_tag(False)

    def unseal(self, cap: Capability, authority: Capability) -> Capability:
        ok = (authority.tag and not authority.is_sealed
              and authority.has_perm(Permission.UNSEAL)
              and cap.is_sealed
              and authority.address == cap.otype.value)
        out = cap.unsealed()
        self._emit("cap.unseal", addr=hex(cap.address),
                   otype=cap.otype.value, ok=ok,
                   what=f"unsealed from otype {cap.otype.value}"
                        + ("" if ok else " (bad authority: tag cleared)"))
        return out if ok else out.with_tag(False)

    def sentry_create(self, cap: Capability) -> Capability:
        self._emit("cap.seal", addr=hex(cap.address),
                   otype=OType.sentry().value, ok=True,
                   what=f"sealed as sentry at {cap.address:#x}")
        return cap.sealed_with(OType.sentry())

    # -- comparisons ----------------------------------------------------

    def is_equal_exact(self, a: Capability,
                       b: Capability) -> bool | _Unspecified:
        """``cheri_is_equal_exact``: all fields including tag (S3.6).

        "If some of their fields, such as tag or bounds, are marked as
        unspecified in ghost state, its return value is unspecified as
        well."
        """
        if not (a.ghost.is_clean and b.ghost.is_clean):
            return UNSPECIFIED
        return a.equal_exact(b)

    def is_subset(self, a: Capability, b: Capability) -> bool | _Unspecified:
        """Is ``a``'s authority a subset of ``b``'s?"""
        if not (a.ghost.is_clean and b.ghost.is_clean):
            return UNSPECIFIED
        return (a.base >= b.base and a.top <= b.top
                and a.perms.is_subset_of(b.perms))

    # -- representability queries (no capability argument) -----------------

    def representable_length(self, length: int) -> int:
        """``cheri_representable_length``: round a length up to the next
        value representable at a suitably aligned base."""
        from repro.memory.allocator import representable_region
        _align, size = representable_region(self.arch.compression,
                                            length, 1)
        return size

    def representable_alignment_mask(self, length: int) -> int:
        """``cheri_representable_alignment_mask``: address mask giving
        the alignment a base needs for this length to be exact."""
        from repro.memory.allocator import representable_region
        align, _size = representable_region(self.arch.compression,
                                            length, 1)
        return self.arch.address_mask & ~(align - 1)


#: Signatures for the C-level intrinsic functions (S4.5 DSL).  ``CAP``
#: parameters accept any capability-carrying type (pointer or
#: ``(u)intptr_t``); the marker return means "same type as argument 0".
SIGNATURES: dict[str, IntrinsicSig] = {
    "cheri_address_get": IntrinsicSig((SAME_AS_ARG0,), PTRADDR),
    "cheri_base_get": IntrinsicSig((SAME_AS_ARG0,), PTRADDR),
    "cheri_length_get": IntrinsicSig((SAME_AS_ARG0,), SIZE_T),
    "cheri_offset_get": IntrinsicSig((SAME_AS_ARG0,), SIZE_T),
    "cheri_tag_get": IntrinsicSig((SAME_AS_ARG0,), BOOL),
    "cheri_perms_get": IntrinsicSig((SAME_AS_ARG0,), SIZE_T),
    "cheri_type_get": IntrinsicSig((SAME_AS_ARG0,), LONG),
    "cheri_is_sealed": IntrinsicSig((SAME_AS_ARG0,), BOOL),
    "cheri_is_sentry": IntrinsicSig((SAME_AS_ARG0,), BOOL),
    "cheri_is_valid": IntrinsicSig((SAME_AS_ARG0,), BOOL),
    "cheri_address_set": IntrinsicSig((SAME_AS_ARG0, PTRADDR), SAME_AS_ARG0),
    "cheri_offset_set": IntrinsicSig((SAME_AS_ARG0, SIZE_T), SAME_AS_ARG0),
    "cheri_tag_clear": IntrinsicSig((SAME_AS_ARG0,), SAME_AS_ARG0),
    "cheri_perms_and": IntrinsicSig((SAME_AS_ARG0, SIZE_T), SAME_AS_ARG0),
    "cheri_bounds_set": IntrinsicSig((SAME_AS_ARG0, SIZE_T), SAME_AS_ARG0),
    "cheri_bounds_set_exact": IntrinsicSig((SAME_AS_ARG0, SIZE_T),
                                           SAME_AS_ARG0),
    "cheri_is_equal_exact": IntrinsicSig((SAME_AS_ARG0, SAME_AS_ARG0), BOOL),
    "cheri_is_subset": IntrinsicSig((SAME_AS_ARG0, SAME_AS_ARG0), BOOL),
    "cheri_representable_length": IntrinsicSig((SIZE_T,), SIZE_T),
    "cheri_representable_alignment_mask": IntrinsicSig((SIZE_T,), SIZE_T),
    "cheri_seal": IntrinsicSig((SAME_AS_ARG0, SAME_AS_ARG0), SAME_AS_ARG0),
    "cheri_unseal": IntrinsicSig((SAME_AS_ARG0, SAME_AS_ARG0),
                                 SAME_AS_ARG0),
    "cheri_sentry_create": IntrinsicSig((SAME_AS_ARG0,), SAME_AS_ARG0),
    "cheri_top_get": IntrinsicSig((SAME_AS_ARG0,), PTRADDR),
}
