"""The CHERI C memory object model (S4.3).

This is the Python rendering of the paper's Coq ``CheriMemory`` module:
allocation and deallocation, typed loads and stores with the full CHERI
check sequence (permissions, ghost tag, tag, bounds, then the PNVI
provenance checks), pointer arithmetic under the strict ISO rule (S3.2
option (a)), pointer/integer conversions with PNVI-ae exposure and udi
symbolic provenance, and the bulk operations (``memcpy`` et al.) with
capability-preserving semantics (S3.5).

Two execution modes share this one implementation:

* :attr:`Mode.ABSTRACT` -- the paper's abstract machine.  Violations are
  undefined behaviour (:class:`~repro.errors.UndefinedBehaviour` with the
  S4.2 catalogue); ghost state records representability excursions and
  representation-byte writes.
* :attr:`Mode.HARDWARE` -- what a CHERI CPU does: tags are really
  cleared, violations raise :class:`~repro.errors.CheriTrap`, there are
  no provenance or liveness checks (temporal safety is not guaranteed,
  S3 objective 3), and uninitialised memory reads as zero bytes.

The divergence between the two modes on the same program is exactly the
subject of the paper's S3 discussion and S5 experimental comparison.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.capability.abstract import Architecture, Capability
from repro.capability.ghost import GhostState
from repro.capability.otype import OType
from repro.capability.permissions import Permission, PermissionSet
from repro.ctypes.layout import TargetLayout
from repro.ctypes.types import (
    ArrayT,
    CType,
    IKind,
    Integer,
    Pointer,
    StructT,
    UnionT,
)
from repro.errors import (
    CheriTrap,
    MemoryModelError,
    TrapKind,
    UB,
    UndefinedBehaviour,
)
from repro.memory.absbyte import AbsByte
from repro.memory.allocation import Allocation, AllocKind
from repro.memory.allocator import AddressMap
from repro.memory.options import (
    EqualityPolicy, OOBArithPolicy, PAPER_CHOICES, SemanticsOptions,
)
from repro.memory.provenance import Provenance, ProvKind
from repro.memory.state import CapMeta, MemState
from repro.memory.values import (
    IntegerValue,
    MemoryValue,
    MVArray,
    MVInteger,
    MVPointer,
    MVStruct,
    MVUnion,
    MVUnspecified,
    PointerValue,
)
from repro.obs.events import EventBus
from repro.reporting.capprint import format_capability

if TYPE_CHECKING:  # pragma: no cover - hints only (import cycle guard)
    from repro.robust.budget import BudgetMeter


class Mode(enum.Enum):
    ABSTRACT = "abstract"
    HARDWARE = "hardware"


#: Permissions granted to data allocations (intersected with the
#: architecture's available set; STORE/STORE_CAP dropped for const).
DATA_PERMS = PermissionSet.of(
    Permission.GLOBAL, Permission.LOAD, Permission.STORE,
    Permission.LOAD_CAP, Permission.STORE_CAP, Permission.STORE_LOCAL_CAP,
    Permission.MUTABLE_LOAD,
)

#: Permissions granted to function capabilities.
CODE_PERMS = PermissionSet.of(
    Permission.GLOBAL, Permission.LOAD, Permission.EXECUTE,
    Permission.LOAD_CAP, Permission.SYSTEM, Permission.EXECUTIVE,
)


class MemoryModel:
    """The memory object model interface (S4.3).

    One instance owns one :class:`~repro.memory.state.MemState` and is
    the only mutator of it.  ``subobject_bounds`` enables the stricter
    Clang sub-object mode (S3.8; off by default, matching the paper's
    "conservative" setting).
    """

    def __init__(self, arch: Architecture, mode: Mode,
                 address_map: AddressMap, *,
                 subobject_bounds: bool = False,
                 options: SemanticsOptions | None = None,
                 revocation: bool = False,
                 allocator: str = "bump",
                 bus: EventBus | None = None,
                 meter: "BudgetMeter | None" = None) -> None:
        self.arch = arch
        self.mode = mode
        self.layout = TargetLayout(arch)
        self.state = MemState(arch, address_map, allocator)
        self.subobject_bounds = subobject_bounds
        self.options = options if options is not None else PAPER_CHOICES
        self.revocation = revocation
        self.bus = bus
        self.state.allocator.bus = bus
        #: Resource governance (see :mod:`repro.robust`): the allocator
        #: charges every reservation against it and the interpreter
        #: flattens its step/deadline limits onto the hot path.
        self.meter = meter
        self.state.allocator.meter = meter
        self._root = arch.root_capability()

    # ------------------------------------------------------------------
    # Error helpers
    # ------------------------------------------------------------------

    @property
    def hardware(self) -> bool:
        return self.mode is Mode.HARDWARE

    def _ub(self, ub: UB, detail: str = "", **ctx) -> UndefinedBehaviour:
        bus = self.bus
        if bus is not None:
            bus.emit("check.ub", ub=str(ub),
                     what=f"{ub}: {detail}" if detail else str(ub), **ctx)
        return UndefinedBehaviour(ub, detail)

    def _trap(self, kind: TrapKind, detail: str = "", **ctx) -> CheriTrap:
        bus = self.bus
        if bus is not None:
            bus.emit("check.trap", trap=str(kind),
                     what=f"{kind}: {detail}" if detail else str(kind), **ctx)
        return CheriTrap(kind, detail)

    def _fmt_cap(self, cap: Capability, prov: Provenance | None) -> str:
        """Appendix-A rendering respecting the mode (hardware output
        must not carry a provenance, see reporting.capprint)."""
        if self.hardware:
            return format_capability(cap, hardware=True)
        return format_capability(cap, prov)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate_object(self, ctype: CType, kind: AllocKind, name: str = "",
                        *, readonly: bool = False,
                        align: int | None = None) -> PointerValue:
        """Create an object allocation and its bounded capability.

        "The (non-optimised) generated code for &x constructs a
        capability with bounds spanning exactly the footprint of the
        stack slot used for x" (S3.1).  The capability footprint may be
        padded for representability (S3.2); the *object* footprint (used
        by provenance checks) is exactly ``sizeof(ctype)``.
        """
        size = self.layout.sizeof(ctype)
        alignment = align if align is not None else self.layout.alignof(ctype)
        return self._allocate(size, alignment, kind, name, readonly,
                              ctype=ctype)

    def allocate_region(self, size: int, align: int | None = None,
                        name: str = "malloc") -> PointerValue:
        """``malloc``: an untyped heap allocation."""
        alignment = align if align is not None else self.arch.capability_size
        return self._allocate(size, alignment, AllocKind.HEAP, name,
                              readonly=False, ctype=None)

    def allocate_string(self, data: bytes, name: str = "") -> PointerValue:
        """A string literal: read-only static storage, NUL-terminated."""
        payload = data + b"\x00"
        ptr = self._allocate(len(payload), 1, AllocKind.STRING, name,
                             readonly=True, ctype=None)
        for i, b in enumerate(payload):
            self.state.write_byte(ptr.address + i, AbsByte(ptr.prov, b))
        return ptr

    def allocate_function(self, name: str) -> PointerValue:
        """A function designator: sealed-entry (sentry) code capability.

        CHERI C function pointers are sealed so they cannot be modified
        or dereferenced as data, only branched to (S2.1).
        """
        ptr = self._allocate(16, 16, AllocKind.FUNCTION, name,
                             readonly=True, ctype=None)
        # Code capabilities are derived from the PCC-like root, not from
        # a data capability: rebuild from the root with code permissions.
        cap = self._root.with_perms_masked(
            CODE_PERMS.intersect(self.arch.root_permissions()))
        cap, _exact = cap.set_bounds(ptr.cap.base, ptr.cap.length)
        cap = cap.sealed_with(OType.sentry())
        return ptr.with_cap(cap)

    def _allocate(self, size: int, align: int, kind: AllocKind, name: str,
                  readonly: bool, ctype: CType | None) -> PointerValue:
        base, padded = self.state.allocator.allocate(kind, size, align)
        ident = self.state.fresh_allocation_id()
        alloc = Allocation(
            ident=ident, base=base, size=size, align=align, kind=kind,
            ctype=ctype, name=name, readonly=readonly,
            cap_base=base, cap_size=padded,
        )
        self.state.add_allocation(alloc)
        # Fresh objects have unspecified contents and no tags (this also
        # clears stale bytes when stack addresses are reused).  Scan
        # whichever side is smaller: the address range, or the live
        # byte/capmeta maps -- a multi-megabyte malloc must not walk
        # millions of addresses that were never written.
        top = base + padded
        bytes_map = self.state.bytes
        if bytes_map:
            if padded <= len(bytes_map):
                for addr in range(base, top):
                    bytes_map.pop(addr, None)
            else:
                for addr in [a for a in bytes_map if base <= a < top]:
                    del bytes_map[addr]
        capmeta = self.state.capmeta
        if capmeta:
            slots = self.state.cap_slots(base, padded)
            if len(slots) <= len(capmeta):
                for slot in slots:
                    capmeta.pop(slot, None)
            else:
                first, last = slots[0], slots[-1]
                for slot in [s for s in capmeta if first <= s <= last]:
                    del capmeta[slot]

        perms = DATA_PERMS
        if readonly:
            # S3.9: capabilities to const objects lack write permission.
            perms = perms.without(Permission.STORE, Permission.STORE_CAP,
                                  Permission.STORE_LOCAL_CAP)
        cap = self._root.with_perms_masked(
            perms.intersect(self.arch.root_permissions()))
        cap, _exact = cap.set_bounds(base, size)
        if not cap.tag:
            raise MemoryModelError(
                f"allocator produced unrepresentable bounds at {base:#x}")
        prov = Provenance.alloc(ident)
        bus = self.bus
        if bus is not None:
            bus.emit("alloc.create", alloc=ident, name=name,
                     storage=kind.name.lower(), base=hex(base),
                     top=hex(base + size), size=size,
                     cap=self._fmt_cap(cap, prov),
                     what=f"@{ident} '{name}' {size} bytes "
                          f"{self._fmt_cap(cap, prov)}")
        return PointerValue(prov, cap)

    def kill_allocation(self, ident: int) -> None:
        """End of lifetime (scope exit); the allocation is retained dead
        so later uses are detectable as UB."""
        alloc = self.state.allocations.get(ident)
        if alloc is not None:
            alloc.alive = False
            bus = self.bus
            if bus is not None:
                bus.emit("alloc.kill", alloc=ident, name=alloc.name,
                         what=f"@{ident} '{alloc.name}' lifetime ended "
                              f"(scope exit)")

    def stack_mark(self) -> int:
        """Cursor save for a stack frame (pop with :meth:`stack_release`)."""
        return self.state.allocator.cursor(AllocKind.STACK)

    def stack_release(self, mark: int) -> None:
        self.state.allocator.rewind(AllocKind.STACK, mark)

    def free(self, ptr: PointerValue) -> None:
        """``free``: kill a heap allocation.

        Abstract machine: the pointer must carry the provenance of a live
        heap allocation and point at its start (UB otherwise).  Hardware
        mode performs the allocator's address lookup only -- double frees
        and wild frees are *not* reliably detected, which is why temporal
        errors survive on CHERI without revocation (S3.11).
        """
        if ptr.is_null():
            return
        if self.hardware:
            for alloc in self.state.allocations.values():
                if (alloc.kind is AllocKind.HEAP and alloc.alive
                        and alloc.base == ptr.address):
                    alloc.alive = False
                    self.state.allocator.release(alloc)
                    self._emit_free(alloc)
                    if self.revocation:
                        self._revoke_region(alloc.base, alloc.top)
                    return
            return
        alloc = self._prov_allocation(ptr)
        if alloc is None or alloc.kind is not AllocKind.HEAP:
            raise self._ub(UB.FREE_NON_MATCHING,
                           f"free of {ptr.address:#x}",
                           **self._prov_ctx(ptr))
        if not alloc.alive:
            raise self._ub(UB.DOUBLE_FREE, f"free of {ptr.address:#x}",
                           alloc=alloc.ident)
        if ptr.address != alloc.base:
            raise self._ub(UB.FREE_NON_MATCHING,
                           "free of interior pointer", alloc=alloc.ident)
        alloc.alive = False
        self.state.allocator.release(alloc)
        self._emit_free(alloc)

    def _emit_free(self, alloc: Allocation) -> None:
        bus = self.bus
        if bus is not None:
            bus.emit("alloc.free", alloc=alloc.ident, name=alloc.name,
                     what=f"@{alloc.ident} freed "
                          f"[{alloc.base:#x},{alloc.top:#x})")

    def _prov_ctx(self, ptr: PointerValue) -> dict:
        """Event-payload keys identifying a pointer's provenance (the
        explainer's causal-chain join keys)."""
        prov = ptr.prov
        if prov.kind is ProvKind.ALLOC:
            return {"alloc": prov.ident}
        if prov.is_symbolic:
            return {"iota": prov.ident}
        return {}

    def realloc(self, ptr: PointerValue, new_size: int) -> PointerValue:
        """``realloc``: new region, contents copied, old region killed."""
        if ptr.is_null():
            return self.allocate_region(new_size, name="realloc")
        if not self.hardware:
            alloc = self._prov_allocation(ptr)
            if (alloc is None or alloc.kind is not AllocKind.HEAP
                    or ptr.address != alloc.base):
                raise self._ub(UB.FREE_NON_MATCHING, "realloc of non-heap")
            if not alloc.alive:
                raise self._ub(UB.DOUBLE_FREE, "realloc after free")
        else:
            alloc = next((a for a in self.state.allocations.values()
                          if a.kind is AllocKind.HEAP and a.alive
                          and a.base == ptr.address), None)
            if alloc is None:
                return self.allocate_region(new_size, name="realloc")
        new_ptr = self.allocate_region(new_size, name="realloc")
        count = min(alloc.size, new_size)
        self._raw_copy(new_ptr.address, ptr.address, count)
        alloc.alive = False
        self.state.allocator.release(alloc)
        return new_ptr

    def _revoke_region(self, base: int, top: int) -> None:
        """Load-barrier-style revocation sweep (S3.11 footnote / S5.4).

        CHERIoT (and Cornucopia for CheriBSD) provide temporal safety by
        invalidating every stored capability whose bounds overlap a
        freed region.  We model the post-sweep state directly: any
        tagged in-memory capability into ``[base, top)`` loses its tag.
        """
        size = self.arch.capability_size
        cleared = 0
        for slot, meta in self.state.capmeta.items():
            if not meta.tag:
                continue
            data = bytes(self.state.read_byte(slot + i).value or 0
                         for i in range(size))
            cap = self.arch.decode(data, True)
            bounds = cap.decoded()
            if bounds.base < top and bounds.top > base:
                meta.tag = False
                cleared += 1
        bus = self.bus
        if bus is not None:
            bus.emit("alloc.revoke", base=hex(base), top=hex(top),
                     cleared=cleared,
                     what=f"revocation sweep over [{base:#x},{top:#x}) "
                          f"cleared {cleared} stored tag(s)")

    # ------------------------------------------------------------------
    # The access check (S4.3 bounds_check / load rule)
    # ------------------------------------------------------------------

    def _check_access(self, ptr: PointerValue, size: int, *,
                      store: bool, need_cap_perm: bool = False,
                      initialising: bool = False) -> Allocation | None:
        """The full check sequence before any memory access.

        Hardware mode checks what the CPU checks (tag, seal, permission,
        bounds); the abstract machine additionally enforces the ghost and
        provenance conditions of the paper's load/store rules.
        """
        cap = ptr.cap
        perm = Permission.STORE if store else Permission.LOAD
        op = "store" if store else "load"
        if self.hardware:
            if not cap.tag:
                raise self._trap(
                    TrapKind.TAG_VIOLATION,
                    f"access via untagged cap at {cap.address:#x}")
            if cap.is_sealed:
                raise self._trap(
                    TrapKind.SEAL_VIOLATION,
                    f"access via sealed cap at {cap.address:#x}")
            if not cap.has_perm(perm) and not initialising:
                raise self._trap(TrapKind.PERMISSION_VIOLATION,
                                 f"missing {perm.name}")
            if not cap.in_bounds(cap.address, size):
                d = cap.decoded()
                raise self._trap(
                    TrapKind.BOUNDS_VIOLATION,
                    f"[{cap.address:#x},+{size}) outside "
                    f"[{d.base:#x},{d.top:#x})")
            bus = self.bus
            if bus is not None:
                bus.emit("check.access", op=op, addr=hex(cap.address),
                         size=size,
                         what=f"{op} [{cap.address:#x},+{size}) ok")
            return None

        # -- abstract machine ---------------------------------------------
        # Check order mirrors hardware fault priority (tag before
        # permissions), so an untagged NULL-derived capability -- which
        # also has no permissions -- reports UB_CHERI_InvalidCap.
        ctx = self._prov_ctx(ptr)
        if cap.is_null():
            raise self._ub(UB.NULL_DEREFERENCE)
        if cap.ghost.tag_unspecified or cap.ghost.bounds_unspecified:  # (1c)
            raise self._ub(UB.CHERI_UNDEFINED_TAG,
                           "capability with unspecified ghost state", **ctx)
        if not cap.tag:                                            # (1d)
            raise self._ub(UB.CHERI_INVALID_CAP,
                           f"untagged cap at {cap.address:#x}", **ctx)
        if cap.is_sealed:
            raise self._ub(UB.CHERI_INVALID_CAP, "sealed capability", **ctx)
        if not cap.has_perm(perm) and not initialising:            # (1b)
            raise self._ub(UB.CHERI_INSUFFICIENT_PERMISSIONS,
                           f"missing {perm.name}", **ctx)
        if not cap.in_bounds(cap.address, size):                   # (1e)
            d = cap.decoded()
            raise self._ub(
                UB.CHERI_BOUNDS_VIOLATION,
                f"[{cap.address:#x},+{size}) outside [{d.base:#x},{d.top:#x})",
                **ctx)
        alloc = self._resolve_for_access(ptr, size)
        if alloc is None:
            raise self._ub(UB.EMPTY_PROVENANCE_ACCESS,
                           f"access at {cap.address:#x}", **ctx)
        if not alloc.alive:                                        # (1f)
            raise self._ub(UB.ACCESS_DEAD_ALLOCATION,
                           f"allocation @{alloc.ident} is dead",
                           alloc=alloc.ident)
        if not alloc.footprint_contains(cap.address, size):        # (1g)
            raise self._ub(
                UB.ACCESS_OUT_OF_BOUNDS,
                f"[{cap.address:#x},+{size}) outside allocation "
                f"@{alloc.ident} [{alloc.base:#x},{alloc.top:#x})",
                alloc=alloc.ident)
        if store and alloc.readonly and not initialising:
            raise self._ub(UB.WRITE_TO_CONST, alloc.name, alloc=alloc.ident)
        bus = self.bus
        if bus is not None:
            bus.emit("check.access", op=op, addr=hex(cap.address), size=size,
                     alloc=alloc.ident,
                     what=f"{op} [{cap.address:#x},+{size}) ok "
                          f"via @{alloc.ident}")
        return alloc

    def _prov_allocation(self, ptr: PointerValue) -> Allocation | None:
        """The allocation identified by a (resolved) provenance."""
        prov = ptr.prov
        if prov.kind is ProvKind.ALLOC:
            return self.state.allocations.get(prov.ident)
        if prov.is_symbolic:
            cands = self.state.iota_candidates(prov.ident)
            if len(cands) == 1:
                return self.state.allocations.get(cands[0])
        return None

    def _resolve_for_access(self, ptr: PointerValue,
                            size: int) -> Allocation | None:
        """Resolve symbolic (udi) provenance at first use (S2.3)."""
        prov = ptr.prov
        if prov.kind is ProvKind.ALLOC:
            return self.state.allocations.get(prov.ident)
        if prov.is_symbolic:
            cands = self.state.iota_candidates(prov.ident)
            viable = [i for i in cands
                      if (a := self.state.allocations.get(i)) is not None
                      and a.alive
                      and a.footprint_contains(ptr.address, size)]
            if len(viable) >= 1:
                self._resolve_iota(prov.ident, viable[0], cands)
                return self.state.allocations[viable[0]]
            return None
        return None

    def _resolve_iota(self, iota_id: int, ident: int,
                      cands: tuple[int, ...]) -> None:
        """Collapse a symbolic provenance at first use (S2.3 udi)."""
        self.state.resolve_iota(iota_id, ident)
        bus = self.bus
        if bus is not None and len(cands) > 1:
            # Only a genuine collapse is an event; later uses of an
            # already-resolved iota re-derive the same singleton.
            bus.emit("prov.iota_resolve", iota=iota_id, chosen=ident,
                     candidates=list(cands),
                     what=f"@iota{iota_id} {tuple(cands)} resolved to "
                          f"@{ident} at first use")

    # ------------------------------------------------------------------
    # Typed load / store
    # ------------------------------------------------------------------

    def load(self, ctype: CType, ptr: PointerValue) -> MemoryValue:
        """The ``load`` rule of S4.3."""
        size = self.layout.sizeof(ctype)
        self._check_align(ctype, ptr.address)
        self._check_access(ptr, size, store=False)
        value = self._decode_value(ctype, ptr.address, via=ptr.cap)
        bus = self.bus
        if bus is not None:
            bus.emit("mem.load", addr=hex(ptr.address), size=size,
                     ctype=str(ctype), **self._prov_ctx(ptr),
                     what=f"load {ctype} at {ptr.address:#x}")
        return value

    def store(self, ctype: CType, ptr: PointerValue, value: MemoryValue,
              *, initialising: bool = False) -> None:
        size = self.layout.sizeof(ctype)
        self._check_align(ctype, ptr.address)
        self._check_access(ptr, size, store=True, initialising=initialising)
        self._encode_value(ctype, ptr.address, value, via=ptr.cap)
        bus = self.bus
        if bus is not None:
            bus.emit("mem.store", addr=hex(ptr.address), size=size,
                     ctype=str(ctype), **self._prov_ctx(ptr),
                     what=f"store {ctype} at {ptr.address:#x}")

    def _check_align(self, ctype: CType, addr: int) -> None:
        """Capability-sized accesses must be capability-aligned; hardware
        raises an alignment abort, the abstract machine flags UB."""
        if not self.layout.is_capability_type(ctype):
            return
        if addr % self.arch.capability_size == 0:
            return
        if self.hardware:
            raise self._trap(TrapKind.SIGSEGV,
                             f"misaligned capability access at {addr:#x}")
        raise self._ub(UB.MISALIGNED_ACCESS,
                       f"capability access at {addr:#x}")

    # -- decoding (the ``abst`` function) ----------------------------------

    def _decode_value(self, ctype: CType, addr: int, *,
                      via: Capability | None) -> MemoryValue:
        if isinstance(ctype, ArrayT):
            if ctype.length is None:
                raise MemoryModelError("load at incomplete array type")
            esize = self.layout.sizeof(ctype.elem)
            elems = tuple(
                self._decode_value(ctype.elem, addr + i * esize, via=via)
                for i in range(ctype.length))
            return MVArray(ctype, elems)
        if isinstance(ctype, UnionT):
            # Reading a whole union yields its bytes through the first
            # member's view; the frontend reads members individually.
            raise MemoryModelError("whole-union load is not used")
        if isinstance(ctype, StructT):
            members = tuple(
                (f.name, self._decode_value(f.ctype, addr + f.offset, via=via))
                for f in self.layout.struct_fields(ctype))
            return MVStruct(ctype, members)
        if self.layout.is_capability_type(ctype):
            return self._decode_capability(ctype, addr, via=via)
        if isinstance(ctype, Integer):
            return self._decode_integer(ctype, addr)
        raise MemoryModelError(f"load at unhandled type {ctype}")

    def _decode_integer(self, ctype: Integer, addr: int) -> MemoryValue:
        size = self.layout.int_size(ctype.kind)
        raw = [self.state.read_byte(addr + i) for i in range(size)]
        if any(b.is_unspecified for b in raw):
            if self.hardware:
                value = int.from_bytes(
                    bytes(b.value or 0 for b in raw), "little")
            else:
                return MVUnspecified(ctype)
        else:
            value = int.from_bytes(bytes(b.value for b in raw), "little")
        value = self.layout.wrap(ctype.kind, value)
        ival = IntegerValue.of_int(value)
        if size == 1 and not raw[0].prov.is_empty:
            # Keep byte identity so char-wise pointer copies round-trip
            # their provenance (PNVI; the S3.5 loop-copy example).
            ival = IntegerValue(num=value, prov=raw[0].prov)
        self._expose_bytes(raw)
        return MVInteger(ctype, ival)

    def _decode_capability(self, ctype: CType, addr: int, *,
                           via: Capability | None) -> MemoryValue:
        size = self.arch.capability_size
        raw = [self.state.read_byte(addr + i) for i in range(size)]
        unspec = sum(1 for b in raw if b.is_unspecified)
        if unspec and not self.hardware:
            if unspec == size:
                return MVUnspecified(ctype)
            # Partially-overwritten capability representation: decoding
            # the stored representation fails (ISO UB012, S4.2).
            raise self._ub(UB.READ_TRAP_REPRESENTATION,
                           f"partial capability at {addr:#x}")
        data = bytes(b.value or 0 for b in raw)
        meta = self.state.capmeta_at(addr)
        tag, ghost = meta.tag, meta.ghost
        if self.hardware:
            ghost = GhostState()
        # Loading a capability through a capability lacking LOAD_CAP
        # strips the tag rather than trapping.
        if via is not None and tag and not via.has_perm(Permission.LOAD_CAP):
            tag = False
        cap = self.arch.decode(data, tag, ghost)
        prov = self._bytes_provenance(raw)
        if isinstance(ctype, Integer):
            # (u)intptr_t: the S4.3 integer_value (B x Cap) case.
            self._expose_bytes(raw)
            return MVInteger(ctype, IntegerValue.of_cap(
                cap, ctype.is_signed, prov))
        return MVPointer(ctype, PointerValue(prov, cap))

    def _bytes_provenance(self, raw: list[AbsByte]) -> Provenance:
        """The ``abst`` provenance-coherence rule: a pointer read back
        bytewise carries its provenance only if every byte agrees and the
        byte indices form the original sequence."""
        first = raw[0].prov
        if first.is_empty:
            return Provenance.empty()
        for i, b in enumerate(raw):
            if b.prov != first:
                return Provenance.empty()
            if b.index is not None and b.index != i:
                return Provenance.empty()
        return first

    def _expose_bytes(self, raw: list[AbsByte]) -> None:
        """Reading pointer bytes at integer type exposes the allocations
        (the ``expose(A, I_tainted)`` step of the S4.3 load rule)."""
        if self.hardware:
            return
        seen: set[int] = set()
        for b in raw:
            if b.prov.kind is ProvKind.ALLOC and b.prov.ident not in seen:
                seen.add(b.prov.ident)
                self._expose(b.prov.ident, "pointer bytes read at "
                                           "integer type")

    def _expose(self, ident: int, why: str) -> None:
        """PNVI-ae exposure with its event."""
        alloc = self.state.allocations.get(ident)
        already = alloc is not None and alloc.exposed
        self.state.expose(ident)
        bus = self.bus
        if bus is not None and not already:
            bus.emit("prov.expose", alloc=ident,
                     what=f"@{ident} exposed ({why})")

    # -- encoding ---------------------------------------------------------

    def _encode_value(self, ctype: CType, addr: int, value: MemoryValue, *,
                      via: Capability | None) -> None:
        if isinstance(value, MVUnspecified):
            size = self.layout.sizeof(ctype)
            for i in range(size):
                self.state.bytes.pop(addr + i, None)
            self.state.taint_capmeta(addr, size, self.hardware)
            return
        if isinstance(ctype, ArrayT):
            if not isinstance(value, MVArray):
                raise MemoryModelError("array store needs MVArray")
            esize = self.layout.sizeof(ctype.elem)
            for i, elem in enumerate(value.elems):
                self._encode_value(ctype.elem, addr + i * esize, elem,
                                   via=via)
            return
        if isinstance(ctype, UnionT):
            if not isinstance(value, MVUnion):
                raise MemoryModelError("union store needs MVUnion")
            if value.value is not None:
                member_t = ctype.field_type(value.active)
                self._encode_value(member_t, addr, value.value, via=via)
            return
        if isinstance(ctype, StructT):
            if not isinstance(value, MVStruct):
                raise MemoryModelError("struct store needs MVStruct")
            for f in self.layout.struct_fields(ctype):
                self._encode_value(f.ctype, addr + f.offset,
                                   value.member(f.name), via=via)
            return
        if self.layout.is_capability_type(ctype):
            self._encode_capability(ctype, addr, value, via=via)
            return
        if isinstance(ctype, Integer):
            self._encode_integer(ctype, addr, value)
            return
        raise MemoryModelError(f"store at unhandled type {ctype}")

    def _encode_integer(self, ctype: Integer, addr: int,
                        value: MemoryValue) -> None:
        if not isinstance(value, MVInteger):
            raise MemoryModelError(f"integer store needs MVInteger, "
                                   f"got {type(value).__name__}")
        size = self.layout.int_size(ctype.kind)
        ival = value.ival
        num = self.layout.wrap(ctype.kind, ival.value())
        data = (num & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        copied_cap_byte = False
        for i, byte in enumerate(data):
            prov = Provenance.empty()
            if size == 1 and not ival.prov.is_empty and ival.cap is None:
                # A char value read from a pointer representation keeps
                # its provenance through the copy (S3.5 loop example).
                prov = ival.prov
                copied_cap_byte = True
            self.state.write_byte(addr + i, AbsByte(prov, byte))
        self._taint_after_data_write(addr, size, copied_cap_byte)

    def _taint_after_data_write(self, addr: int, size: int,
                                copied_cap_byte: bool) -> None:
        """Non-capability writes invalidate overlapped tags.

        Hardware clears them; the abstract machine marks previously-set
        tags unspecified (S3.5).  Additionally, a byte that was itself
        copied out of a capability representation leaves the destination
        slot tag-*unspecified* rather than determinately cleared, so that
        loop-to-memcpy optimisation (which would preserve the tag) stays
        sound.
        """
        bus = self.bus
        if bus is not None and not self.hardware:
            hit = [slot for slot in self.state.cap_slots(addr, size)
                   if (m := self.state.capmeta.get(slot)) is not None
                   and (m.tag or not m.ghost.tag_unspecified)]
            if hit or copied_cap_byte:
                bus.emit("ghost.set", ghost="tag?",
                         slots=[hex(s) for s in hit],
                         what=f"data write [{addr:#x},+{size}) made stored "
                              f"tag unspecified (S3.5)")
        self.state.taint_capmeta(addr, size, self.hardware)
        if copied_cap_byte and not self.hardware:
            for slot in self.state.cap_slots(addr, size):
                meta = self.state.capmeta.get(slot)
                if meta is None:
                    meta = CapMeta()
                    self.state.set_capmeta(slot, meta)
                meta.ghost = meta.ghost.with_tag_unspecified()

    def _encode_capability(self, ctype: CType, addr: int,
                           value: MemoryValue, *,
                           via: Capability | None) -> None:
        if isinstance(value, MVPointer):
            cap, prov = value.ptr.cap, value.ptr.prov
        elif isinstance(value, MVInteger):
            ival = value.ival
            if ival.cap is None:
                # A plain integer stored at (u)intptr_t type: the value
                # is a NULL-derived capability with that address.
                width = self.arch.address_width
                cap = self.arch.null_capability(ival.value()
                                                & ((1 << width) - 1))
                prov = Provenance.empty()
            else:
                cap, prov = ival.cap, ival.prov
        else:
            raise MemoryModelError("capability store needs pointer/integer")

        if cap.tag and via is not None and \
                not via.has_perm(Permission.STORE_CAP):
            if self.hardware:
                raise self._trap(
                    TrapKind.PERMISSION_VIOLATION,
                    "storing tagged capability without STORE_CAP")
            raise self._ub(UB.CHERI_INSUFFICIENT_PERMISSIONS,
                           "missing STORE_CAP")
        data = self.arch.encode(cap)
        for i, byte in enumerate(data):
            self.state.write_byte(addr + i, AbsByte(prov, byte, index=i))
        ghost = GhostState() if self.hardware else cap.ghost
        self.state.set_capmeta(addr, CapMeta(tag=cap.tag, ghost=ghost))

    # ------------------------------------------------------------------
    # Pointer arithmetic (S3.2 option (a): strict ISO)
    # ------------------------------------------------------------------

    def array_shift(self, ptr: PointerValue, elem: CType,
                    n: int) -> PointerValue:
        """``p + n`` at pointer type.

        Abstract machine: UB beyond [base, one-past] of the provenance
        allocation (ISO 6.5.6p8, kept for CHERI C by S3.2).  Hardware:
        unchecked capability arithmetic -- the tag is cleared if the new
        address leaves the representable region.
        """
        esize = self.layout.sizeof(elem)
        new_addr = ptr.address + n * esize
        bus = self.bus
        if self.hardware:
            masked = new_addr & self.arch.address_mask
            if bus is not None and n != 0:
                bus.emit("deriv.shift", frm=hex(ptr.address), to=hex(masked),
                         n=n, what=f"p+({n}): {ptr.address:#x} -> "
                                   f"{masked:#x} (unchecked)")
            return ptr.with_cap(ptr.cap.with_address(masked))

        if ptr.is_null():
            if n == 0:
                return ptr
            raise self._ub(UB.OUT_OF_BOUNDS_PTR_ARITH,
                           "arithmetic on null pointer")
        alloc = self._resolve_arith(ptr, new_addr)
        if alloc is None:
            raise self._ub(UB.OUT_OF_BOUNDS_PTR_ARITH,
                           "arithmetic on pointer with empty provenance",
                           **self._prov_ctx(ptr))
        if not alloc.alive:
            raise self._ub(UB.ACCESS_DEAD_ALLOCATION,
                           "arithmetic on pointer to dead allocation",
                           alloc=alloc.ident)
        self._check_arith_policy(ptr, alloc, new_addr)
        if bus is not None and n != 0:
            bus.emit("deriv.shift", alloc=alloc.ident, frm=hex(ptr.address),
                     to=hex(new_addr), n=n,
                     what=f"p+({n}): {ptr.address:#x} -> {new_addr:#x} "
                          f"within @{alloc.ident}")
        return ptr.with_cap(ptr.cap.with_address(new_addr))

    def _check_arith_policy(self, ptr: PointerValue, alloc: Allocation,
                            new_addr: int) -> None:
        """The S3.2 design options for pointer construction."""
        policy = self.options.oob_arith
        if policy is OOBArithPolicy.ISO_UB:
            if not alloc.in_range_or_one_past(new_addr):
                raise self._ub(
                    UB.OUT_OF_BOUNDS_PTR_ARITH,
                    f"{new_addr:#x} outside [{alloc.base:#x},"
                    f"{alloc.top:#x}] of allocation @{alloc.ident}",
                    alloc=alloc.ident)
            return
        if policy is OOBArithPolicy.PORTABLE_ENVELOPE:
            lo, hi = self.arch.portable_representable_limits(
                alloc.base, alloc.size)
            if not lo <= new_addr < hi:
                raise self._ub(
                    UB.OUT_OF_BOUNDS_PTR_ARITH,
                    f"{new_addr:#x} outside the portable envelope "
                    f"[{lo:#x},{hi:#x})", alloc=alloc.ident)
            return
        # ARCH_REPRESENTABLE: anything the encoding can express.
        if not ptr.cap.bounds_fields.is_representable(ptr.cap.address,
                                                      new_addr):
            raise self._ub(
                UB.OUT_OF_BOUNDS_PTR_ARITH,
                f"{new_addr:#x} outside the representable region",
                alloc=alloc.ident)

    def _resolve_arith(self, ptr: PointerValue,
                       new_addr: int) -> Allocation | None:
        prov = ptr.prov
        if prov.kind is ProvKind.ALLOC:
            return self.state.allocations.get(prov.ident)
        if prov.is_symbolic:
            cands = self.state.iota_candidates(prov.ident)
            viable = [i for i in cands
                      if (a := self.state.allocations.get(i)) is not None
                      and a.alive and a.in_range_or_one_past(new_addr)]
            if len(viable) == 1:
                self._resolve_iota(prov.ident, viable[0], cands)
                return self.state.allocations[viable[0]]
            if viable:
                return self.state.allocations[viable[0]]
            return None
        return None

    def member_shift(self, ptr: PointerValue, struct_t: StructT,
                     member: str, *, offset: int | None = None,
                     member_t: CType | None = None) -> PointerValue:
        """``&p->member``.  Sub-object bounds narrowing is off by default
        (S3.8: "the current default behaviour of CHERI C is to not
        enforce subobject bounds").

        ``offset``/``member_t`` let a caller holding the resolved
        layout (the compiled evaluator's per-site inline caches) skip
        re-deriving it; they must equal ``layout.offsetof(struct_t,
        member)`` / ``struct_t.field_type(member)``.
        """
        if offset is None:
            offset = self.layout.offsetof(struct_t, member)
        new_addr = ptr.address + offset
        cap = ptr.cap.with_address(new_addr)
        if self.subobject_bounds:
            if member_t is None:
                member_t = struct_t.field_type(member)
            cap, _ = cap.set_bounds(new_addr, self.layout.sizeof(member_t))
        bus = self.bus
        if bus is not None:
            bus.emit("deriv.member", member=member, offset=offset,
                     to=hex(new_addr), narrowed=self.subobject_bounds,
                     **self._prov_ctx(ptr),
                     what=f"&p->{member}: +{offset} -> {new_addr:#x}"
                          + (" (sub-object bounds)" if self.subobject_bounds
                             else ""))
        return ptr.with_cap(cap)

    # ------------------------------------------------------------------
    # Pointer comparisons (S3.6 option (3): address equality)
    # ------------------------------------------------------------------

    def eq(self, a: PointerValue, b: PointerValue) -> bool:
        """Pointer ``==`` under the configured S3.6 option.

        The default (the paper's choice, option 3) compares address
        fields only; options 1 and 2 -- the early CHERI C behaviour --
        compare representations with/without the tag.
        """
        policy = self.options.equality
        if policy is EqualityPolicy.ADDRESS_ONLY:
            return a.address == b.address
        if policy is EqualityPolicy.EXACT_WITH_TAGS:
            return a.cap.equal_exact(b.cap)
        return self.arch.encode(a.cap) == self.arch.encode(b.cap)

    def relational(self, op: str, a: PointerValue, b: PointerValue) -> bool:
        """``<``/``<=``/``>``/``>=``: same-provenance required (UB else)."""
        if not self.hardware:
            ida = self._effective_prov_id(a)
            idb = self._effective_prov_id(b)
            if ida is None or idb is None or ida != idb:
                raise self._ub(UB.PTR_RELATIONAL_DIFFERENT_PROVENANCE,
                               f"{a.address:#x} {op} {b.address:#x}")
        x, y = a.address, b.address
        return {"<": x < y, "<=": x <= y, ">": x > y, ">=": x >= y}[op]

    def diff(self, a: PointerValue, b: PointerValue, elem: CType) -> int:
        """Pointer subtraction (ISO 6.5.6p9: same array required)."""
        if not self.hardware:
            ida = self._effective_prov_id(a)
            idb = self._effective_prov_id(b)
            if ida is None or idb is None or ida != idb:
                raise self._ub(UB.PTR_DIFF_DIFFERENT_PROVENANCE,
                               f"{a.address:#x} - {b.address:#x}")
        esize = self.layout.sizeof(elem)
        delta = a.address - b.address
        if delta % esize:
            return delta // esize  # implementation-defined rounding
        return delta // esize

    def _effective_prov_id(self, ptr: PointerValue) -> int | None:
        prov = ptr.prov
        if prov.kind is ProvKind.ALLOC:
            return prov.ident
        if prov.is_symbolic:
            cands = self.state.iota_candidates(prov.ident)
            if len(cands) == 1:
                return cands[0]
            viable = [i for i in cands
                      if (a := self.state.allocations.get(i)) is not None
                      and a.alive and a.in_range_or_one_past(ptr.address)]
            if len(viable) == 1:
                self._resolve_iota(prov.ident, viable[0], cands)
                return viable[0]
        return None

    # ------------------------------------------------------------------
    # Pointer / integer conversions (S3.3, PNVI-ae-udi)
    # ------------------------------------------------------------------

    def null_pointer(self, address: int = 0) -> PointerValue:
        return PointerValue(Provenance.empty(),
                            self.arch.null_capability(address))

    def ptr_to_int(self, ptr: PointerValue, kind: IKind) -> IntegerValue:
        """Pointer-to-integer cast.

        To ``(u)intptr_t``: the capability is carried whole (no-op cast,
        S3.3).  To any other integer type: the address, truncated to the
        target's width.  Either way the allocation becomes *exposed*
        (PNVI-ae).
        """
        if not self.hardware and ptr.prov.kind is ProvKind.ALLOC:
            self._expose(ptr.prov.ident, "pointer-to-integer cast")
        if kind.is_capability_carrying:
            return IntegerValue.of_cap(ptr.cap, kind.is_signed, ptr.prov)
        return IntegerValue.of_int(self.layout.wrap(kind, ptr.address))

    def int_to_ptr(self, ival: IntegerValue,
                   pointee: CType) -> PointerValue:
        """Integer-to-pointer cast.

        From ``(u)intptr_t``: the capability is carried whole; the
        provenance is the carried one when still usable, else re-derived
        PNVI-ae style.  From a plain integer: a NULL-derived (untagged)
        capability -- on CHERI, integers cannot forge authority -- with
        PNVI-ae(-udi) provenance lookup among exposed allocations.
        """
        if ival.cap is not None:
            prov = ival.prov
            if prov.kind is ProvKind.ALLOC:
                alloc = self.state.allocations.get(prov.ident)
                if alloc is None:
                    prov = Provenance.empty()
            elif prov.is_empty and not self.hardware:
                prov = self._pnvi_lookup(ival.cap.address)
            return PointerValue(prov, ival.cap)
        addr = ival.value() & self.arch.address_mask
        if addr == 0:
            return self.null_pointer()
        prov = (Provenance.empty() if self.hardware
                else self._pnvi_lookup(addr))
        return PointerValue(prov, self.arch.null_capability(addr))

    def _pnvi_lookup(self, addr: int) -> Provenance:
        """PNVI-ae-udi provenance for an integer-sourced address."""
        cands = self.state.exposed_candidates(addr)
        bus = self.bus
        if not cands:
            if bus is not None:
                bus.emit("prov.lookup", addr=hex(addr), result="@empty",
                         what=f"{addr:#x} matches no exposed allocation: "
                              f"@empty")
            return Provenance.empty()
        if len(cands) == 1:
            ident = cands[0].ident
            if bus is not None:
                bus.emit("prov.lookup", addr=hex(addr), alloc=ident,
                         result=f"@{ident}",
                         what=f"{addr:#x} is inside exposed @{ident}")
            return Provenance.alloc(ident)
        # Boundary between two exposed allocations: defer (udi).
        idents = tuple(a.ident for a in cands)
        prov = self.state.fresh_iota(idents)
        if bus is not None:
            bus.emit("prov.iota_fresh", iota=prov.ident,
                     candidates=list(idents), addr=hex(addr),
                     what=f"{addr:#x} on the boundary of {idents}: fresh "
                          f"symbolic @iota{prov.ident} (udi)")
        return prov

    # ------------------------------------------------------------------
    # Bulk operations (S3.5: memcpy must preserve capabilities)
    # ------------------------------------------------------------------

    def memcpy(self, dest: PointerValue, src: PointerValue,
               n: int) -> PointerValue:
        """``memcpy`` "implemented with capability-sized and aligned
        accesses where possible, to preserve pointers" (S3.5)."""
        if n == 0:
            return dest
        self._check_access(src, n, store=False)
        self._check_access(dest, n, store=True)
        self._raw_copy(dest.address, src.address, n)
        bus = self.bus
        if bus is not None:
            bus.emit("mem.copy", dest=hex(dest.address),
                     src=hex(src.address), size=n,
                     what=f"memcpy {n} bytes {src.address:#x} -> "
                          f"{dest.address:#x}")
        return dest

    def _raw_copy(self, daddr: int, saddr: int, n: int) -> None:
        cap_size = self.arch.capability_size
        snapshot = [self.state.read_byte(saddr + i) for i in range(n)]
        for i, b in enumerate(snapshot):
            self.state.write_byte(daddr + i, b)
        # Capability metadata: whole aligned capability chunks carry
        # their tag+ghost across; any other destination slot the copy
        # touches is tainted like a data write.
        phase_match = (daddr - saddr) % cap_size == 0
        preserved: set[int] = set()
        if phase_match:
            first = _align_up(daddr, cap_size)
            slot = first
            while slot + cap_size <= daddr + n:
                src_slot = slot - daddr + saddr
                meta = self.state.capmeta_at(src_slot)
                self.state.set_capmeta(slot, CapMeta(meta.tag, meta.ghost))
                preserved.add(slot)
                slot += cap_size
        tainted: list[int] = []
        for slot in self.state.cap_slots(daddr, n):
            if slot not in preserved:
                meta = self.state.capmeta.get(slot)
                if meta is None:
                    continue
                if self.hardware:
                    meta.tag = False
                else:
                    meta.ghost = meta.ghost.with_tag_unspecified()
                    tainted.append(slot)
        bus = self.bus
        if bus is not None and tainted:
            bus.emit("ghost.set", ghost="tag?",
                     slots=[hex(s) for s in tainted],
                     what=f"unaligned copy into [{daddr:#x},+{n}) made "
                          f"stored tag unspecified (S3.5)")

    def memcmp(self, a: PointerValue, b: PointerValue, n: int) -> int:
        self._check_access(a, n, store=False)
        self._check_access(b, n, store=False)
        for i in range(n):
            xa = self.state.read_byte(a.address + i)
            xb = self.state.read_byte(b.address + i)
            if (xa.is_unspecified or xb.is_unspecified) and not self.hardware:
                raise self._ub(UB.READ_UNINITIALISED,
                               f"memcmp of uninitialised byte at +{i}")
            va, vb = xa.value or 0, xb.value or 0
            if va != vb:
                return -1 if va < vb else 1
        return 0

    def memset(self, dest: PointerValue, byte: int, n: int) -> PointerValue:
        if n == 0:
            return dest
        self._check_access(dest, n, store=True)
        for i in range(n):
            self.state.write_byte(dest.address + i,
                                  AbsByte(Provenance.empty(), byte & 0xFF))
        self.state.taint_capmeta(dest.address, n, self.hardware)
        bus = self.bus
        if bus is not None:
            bus.emit("mem.set", dest=hex(dest.address), size=n,
                     byte=byte & 0xFF,
                     what=f"memset {n} bytes at {dest.address:#x}")
        return dest

    # ------------------------------------------------------------------
    # Queries used by intrinsics and the pretty-printer
    # ------------------------------------------------------------------

    def effective_ghost(self, cap: Capability) -> GhostState:
        return cap.ghost

    def allocation_of(self, ptr: PointerValue) -> Allocation | None:
        return self._prov_allocation(ptr)


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
