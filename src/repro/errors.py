"""Undefined behaviour catalogue, hardware traps, and semantic outcomes.

The paper (S4.2) introduces four new CHERI undefined behaviours on top of
the ISO C catalogue used by Cerberus, plus it reuses the ISO
``UB012_lvalue_read_trap_representation`` for failed capability decodes.
This module defines:

* :class:`UB` -- the undefined-behaviour catalogue (ISO subset + CHERI).
* :class:`UndefinedBehaviour` -- raised by the *abstract machine* when an
  execution reaches UB.  Abstract-machine UB is a property of the whole
  program, but the executable semantics (like Cerberus) reports the first
  UB point it evaluates to, which is what a test oracle needs.
* :class:`CheriTrap` -- raised in *hardware mode* (the simulated
  Clang/GCC implementations) where an out-of-bounds or untagged access is
  a synchronous data abort (SIGPROT on CheriBSD), not UB-anything-goes.
* :class:`Outcome` -- the observable result of running one program on one
  implementation, used by the validation suite and benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class UB(enum.Enum):
    """Undefined behaviours detectable by the executable semantics.

    The CHERI-specific entries are exactly the four defined in S4.2 of the
    paper; the ISO entries are the subset of the Cerberus catalogue that
    the CHERI C test suite exercises.
    """

    # --- CHERI C additions (paper S4.2) ---------------------------------
    CHERI_INVALID_CAP = "UB_CHERI_InvalidCap"
    """Dereference of a pointer whose capability tag is cleared."""

    CHERI_UNDEFINED_TAG = "UB_CHERI_UndefinedTag"
    """Dereference of a pointer whose tag is *unspecified* in ghost state."""

    CHERI_INSUFFICIENT_PERMISSIONS = "UB_CHERI_InsufficientPermissions"
    """Memory access via a capability lacking the required permission."""

    CHERI_BOUNDS_VIOLATION = "UB_CHERI_BoundsViolation"
    """Memory access whose footprint is outside the capability bounds."""

    # --- ISO C undefined behaviours used by the suite -------------------
    READ_TRAP_REPRESENTATION = "UB012_lvalue_read_trap_representation"
    """Decoding a stored capability representation failed (ISO UB012)."""

    OUT_OF_BOUNDS_PTR_ARITH = "UB_out_of_bounds_pointer_arithmetic"
    """Pointer arithmetic producing a value below or beyond one-past the
    object (ISO 6.5.6p8; the paper keeps the strict ISO rule, S3.2)."""

    ACCESS_OUT_OF_BOUNDS = "UB_access_outside_allocation"
    """Access outside the footprint of the provenance allocation."""

    ACCESS_DEAD_ALLOCATION = "UB_access_dead_allocation"
    """Use of a pointer whose allocation's lifetime has ended."""

    FREE_NON_MATCHING = "UB_free_of_non_allocated_pointer"
    """``free``/``realloc`` of a pointer not obtained from the allocator."""

    DOUBLE_FREE = "UB_double_free"

    PTR_DIFF_DIFFERENT_PROVENANCE = "UB_ptrdiff_different_provenance"
    """Subtraction of pointers into different allocations (ISO 6.5.6p9)."""

    PTR_RELATIONAL_DIFFERENT_PROVENANCE = "UB_relational_different_provenance"
    """``<``/``>`` etc. on pointers into different allocations."""

    SIGNED_OVERFLOW = "UB_signed_integer_overflow"

    DIVISION_BY_ZERO = "UB_division_by_zero"

    SHIFT_OUT_OF_RANGE = "UB_shift_out_of_range"

    READ_UNINITIALISED = "UB_read_uninitialised_memory"
    """Reading an object with an unspecified (never written) value, where
    the context makes that UB rather than merely unspecified."""

    NULL_DEREFERENCE = "UB_null_pointer_dereference"

    MISALIGNED_ACCESS = "UB_misaligned_access"
    """Access via a pointer not suitably aligned for the access type
    (capability loads/stores require capability alignment)."""

    WRITE_TO_CONST = "UB_modification_of_const_object"

    EMPTY_PROVENANCE_ACCESS = "UB_access_via_empty_provenance"
    """Access via a pointer with empty provenance (e.g. from an integer
    that matched no exposed allocation)."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_cheri(self) -> bool:
        """True for the UBs introduced by CHERI C (paper S4.2)."""
        return self.name.startswith("CHERI_")


class TrapKind(enum.Enum):
    """Hardware exception kinds raised in hardware (implementation) mode.

    On Morello these are synchronous data aborts delivered to the process
    as ``SIGPROT``; we classify them by cause like CheriBSD's ``si_code``.
    """

    TAG_VIOLATION = "tag violation"
    BOUNDS_VIOLATION = "bounds violation"
    PERMISSION_VIOLATION = "permission violation"
    SEAL_VIOLATION = "seal violation"
    SIGSEGV = "segmentation fault"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ReproError(Exception):
    """Base class for all semantic-machinery errors in this library."""


class UndefinedBehaviour(ReproError):
    """The abstract machine reached an undefined behaviour.

    Attributes:
        ub: which catalogue entry was violated.
        detail: human-readable context (what pointer, what bounds, ...).
    """

    def __init__(self, ub: UB, detail: str = "") -> None:
        self.ub = ub
        self.detail = detail
        msg = str(ub) if not detail else f"{ub}: {detail}"
        super().__init__(msg)


class CheriTrap(ReproError):
    """A hardware capability fault (simulated SIGPROT / data abort)."""

    def __init__(self, kind: TrapKind, detail: str = "") -> None:
        self.kind = kind
        self.detail = detail
        msg = str(kind) if not detail else f"{kind}: {detail}"
        super().__init__(msg)


class MemoryModelError(ReproError):
    """Internal invariant violation inside the memory object model.

    These indicate a bug in the *model* (or misuse of its API), never a
    property of the program under test.
    """


class CSyntaxError(ReproError):
    """Lexing/parsing error in the C-subset frontend."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class CTypeError(ReproError):
    """Static type error in the C-subset frontend."""


class AssertionFailure(ReproError):
    """A C-level ``assert`` failed during interpretation (abort)."""

    def __init__(self, expression: str) -> None:
        self.expression = expression
        super().__init__(f"assertion failed: {expression}")


class ResourceExhausted(ReproError):
    """A run hit its resource :class:`~repro.robust.Budget`.

    Not a property of the program's semantics: the same program under a
    larger budget may have any other outcome.  The interpreter converts
    this into an :class:`Outcome` of kind
    :attr:`OutcomeKind.RESOURCE`, so governed runs never hang and never
    leak raw ``RecursionError``/``MemoryError``.

    Attributes:
        limit: which budget axis was exhausted (``steps``, ``memory``,
            ``allocations``, ``deadline``, ``call-depth``, ``fault``,
            ``python-recursion``, ``python-memory``, or ``worker`` for
            pool-level quarantine).
        where: human-readable context (the step count, the allocation
            site, ...).
    """

    def __init__(self, limit: str, where: str = "") -> None:
        self.limit = limit
        self.where = where
        msg = f"resource exhausted ({limit})"
        if where:
            msg += f": {where}"
        super().__init__(msg)


class OutcomeKind(enum.Enum):
    """Classification of one program run on one implementation."""

    EXIT = "exit"            # ran to completion; carries exit status
    UNDEFINED = "undefined"  # abstract machine flagged UB; carries UB
    TRAP = "trap"            # hardware capability fault; carries TrapKind
    ABORT = "abort"          # assert failure / abort()
    ERROR = "error"          # frontend rejected the program
    RESOURCE = "resource_exhausted"  # budget cut-off; carries which limit


@dataclass(frozen=True)
class Outcome:
    """Observable result of running a test program on an implementation.

    ``stdout`` collects everything the program printed (the suite's
    programs print capability descriptions in the Appendix-A format), so
    outcomes can be compared both by kind and by output shape.
    """

    kind: OutcomeKind
    exit_status: int = 0
    ub: UB | None = None
    trap: TrapKind | None = None
    detail: str = ""
    stdout: str = ""
    #: The run completed but its exit status is an *unspecified value*
    #: (S3.5 ghost state reaching ``return`` from ``main``); any concrete
    #: status a real implementation produces is consistent with it.
    unspecified: bool = False
    #: For :attr:`OutcomeKind.RESOURCE`: which budget axis cut the run
    #: off (``steps``, ``memory``, ``allocations``, ``deadline``,
    #: ``call-depth``, ``fault``, ``python-recursion``,
    #: ``python-memory``) or ``worker`` for pool-level quarantine.
    limit: str = ""

    @classmethod
    def exited(cls, status: int, stdout: str = "") -> "Outcome":
        return cls(kind=OutcomeKind.EXIT, exit_status=status, stdout=stdout)

    @classmethod
    def exited_unspecified(cls, stdout: str = "") -> "Outcome":
        return cls(kind=OutcomeKind.EXIT, exit_status=0, stdout=stdout,
                   unspecified=True)

    @classmethod
    def undefined(cls, ub: UB, detail: str = "", stdout: str = "") -> "Outcome":
        return cls(kind=OutcomeKind.UNDEFINED, ub=ub, detail=detail,
                   stdout=stdout)

    @classmethod
    def trapped(cls, trap: TrapKind, detail: str = "",
                stdout: str = "") -> "Outcome":
        return cls(kind=OutcomeKind.TRAP, trap=trap, detail=detail,
                   stdout=stdout)

    @classmethod
    def aborted(cls, detail: str, stdout: str = "") -> "Outcome":
        return cls(kind=OutcomeKind.ABORT, detail=detail, stdout=stdout)

    @classmethod
    def frontend_error(cls, detail: str) -> "Outcome":
        return cls(kind=OutcomeKind.ERROR, detail=detail)

    @classmethod
    def resource_exhausted(cls, limit: str, detail: str = "",
                           stdout: str = "") -> "Outcome":
        return cls(kind=OutcomeKind.RESOURCE, limit=limit, detail=detail,
                   stdout=stdout)

    @classmethod
    def quarantined(cls, detail: str = "") -> "Outcome":
        """A pool-level verdict: the case's worker died or hung twice,
        so the engine quarantined the case instead of aborting the run."""
        return cls(kind=OutcomeKind.RESOURCE, limit="worker", detail=detail)

    @property
    def ok(self) -> bool:
        """True when the program ran to completion with status 0."""
        return self.kind is OutcomeKind.EXIT and self.exit_status == 0

    def describe(self) -> str:
        """One-line human-readable description, stable for reports."""
        if self.kind is OutcomeKind.EXIT:
            if self.unspecified:
                return "exit unspecified"
            return f"exit {self.exit_status}"
        if self.kind is OutcomeKind.UNDEFINED:
            return f"UB {self.ub}"
        if self.kind is OutcomeKind.TRAP:
            return f"trap: {self.trap}"
        if self.kind is OutcomeKind.ABORT:
            return f"abort: {self.detail}"
        if self.kind is OutcomeKind.RESOURCE:
            if self.limit == "worker":
                return f"quarantined: {self.detail}"
            return f"resource_exhausted ({self.limit})"
        return f"error: {self.detail}"
