"""Executable CHERI C semantics.

A Python reproduction of "Formal Mechanised Semantics of CHERI C:
Capabilities, Undefined Behaviour, and Provenance" (ASPLOS 2024):

* :mod:`repro.capability` -- abstract capabilities, CHERI Concentrate
  compression, Morello and CHERIoT-style formats;
* :mod:`repro.memory` -- the CHERI C memory object model (PNVI-ae-udi
  provenance, ghost state, the S4.2 undefined behaviours);
* :mod:`repro.ctypes` -- the CHERI C type system;
* :mod:`repro.core` -- the executable semantics (C-subset frontend +
  abstract-machine evaluator) and the modelled optimiser;
* :mod:`repro.impls` -- simulated implementations for the S5 comparison;
* :mod:`repro.testsuite` -- the 94-test validation suite of Table 1.

Quick start::

    from repro.impls import CERBERUS
    outcome = CERBERUS.run('''
        int main(void) {
            int x = 0;
            int *p = &x;
            return p[1];      /* out of bounds */
        }
    ''')
    assert outcome.ub is not None   # UB_CHERI_BoundsViolation
"""

from repro.errors import Outcome, OutcomeKind, TrapKind, UB

__version__ = "1.0.0"

__all__ = ["Outcome", "OutcomeKind", "TrapKind", "UB", "__version__"]
