"""The explainer: reconstruct the causal chain behind a verdict.

Given an event trace (live :class:`Event` objects or JSONL dicts), the
explainer finds the *explaining event* -- the final UB check, hardware
trap, or ghost/derivation excursion -- and walks back through the trace
collecting its causal ancestors: the allocation that gave the capability
its provenance, the provenance transitions (exposure, symbolic ``iota``
creation and resolution), and every capability derivation that shaped
the authority the final check judged.  The rendering names steps in the
Appendix-A capprint style, e.g.::

    target:  step 63  check.ub      load [0x40000018,+4) ... FAIL
    causal chain:
      step 41  alloc.create  @7 'p' 16 bytes at 0x40000010 ...
      step 57  cap.bounds_set  (@7) narrowed to [0x40000010-0x40000018] ...
    verdict: UB_CHERI_BoundsViolation because the capability carries
      provenance @7 (allocated at step 41) and was last derived by
      cap.bounds_set at step 57.

The same machinery gives the fuzzer its evidence trail: the oracle
attaches :func:`final_event` of the reference trace to every finding,
and :func:`explaining_signature` is the shrinker's "same explaining
event" preservation predicate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.events import Event

#: Event kinds that can *be* the explanation of an outcome, in priority
#: order (later entries are fallbacks).
_VERDICT_KINDS = ("check.ub", "check.trap", "robust.cutoff")

#: Event kinds that are notable on their own even in a clean run: the
#: semantic excursions that license divergent implementation behaviour.
_NOTABLE_KINDS = ("ghost.set", "cap.tag_clear", "cap.seal", "cap.unseal")

#: Event kinds eligible for the causal chain.
_CHAIN_KINDS = (
    "alloc.create", "alloc.kill", "alloc.free", "alloc.revoke",
    "prov.expose", "prov.iota_fresh", "prov.iota_resolve", "prov.lookup",
    "deriv.arith", "deriv.shift", "deriv.member",
    "cap.bounds_set", "cap.seal", "cap.unseal", "cap.tag_clear",
    "cap.perms_and", "cap.address_set",
    "intrinsic.call", "ghost.set",
)

#: Chain length cap in the rendered output (the JSONL has everything).
_MAX_CHAIN = 20


def _as_dicts(events: Iterable[Event | dict]) -> list[dict]:
    return [e.to_dict() if isinstance(e, Event) else e for e in events]


def final_event(events: Sequence[Event | dict]) -> dict | None:
    """The explaining event of a trace: the last UB/trap verdict, else
    the last notable excursion, else the final outcome, else the last
    event (``None`` for an empty trace)."""
    dicts = _as_dicts(events)
    for event in reversed(dicts):
        if event.get("kind") in _VERDICT_KINDS:
            return event
    # UB raised outside the memory model (e.g. signed overflow in the
    # interpreter) reaches the trace only via the outcome record.
    for event in reversed(dicts):
        if event.get("kind") == "run.outcome" and \
                (event.get("ub") or event.get("trap")
                 or event.get("limit")):
            return event
    for kind_set in (_NOTABLE_KINDS, ("run.outcome",)):
        for event in reversed(dicts):
            if event.get("kind") in kind_set:
                return event
    return dicts[-1] if dicts else None


def explaining_signature(events: Sequence[Event | dict]) -> tuple | None:
    """A comparable fingerprint of *why* the run ended as it did.

    Two traces share a signature when their explaining events have the
    same kind and the same verdict payload (the UB catalogue entry, the
    trap kind, or the ghost transition).  Addresses and step numbers are
    deliberately excluded so shrinking can move code around.
    """
    target = final_event(events)
    if target is None:
        return None
    return (target.get("kind"),
            target.get("ub"),
            target.get("trap"),
            target.get("ghost"),
            target.get("reason"),
            target.get("limit"))


def _focus_keys(target: dict) -> tuple[int | None, int | None]:
    alloc = target.get("alloc")
    iota = target.get("iota")
    return (alloc if isinstance(alloc, int) else None,
            iota if isinstance(iota, int) else None)


def _related(event: dict, alloc: int | None, iota: int | None) -> bool:
    if alloc is None and iota is None:
        return True
    if alloc is not None and event.get("alloc") == alloc:
        return True
    if iota is not None and event.get("iota") == iota:
        return True
    if alloc is not None and event.get("kind") == "prov.iota_resolve" \
            and event.get("chosen") == alloc:
        return True
    if alloc is not None and alloc in (event.get("candidates") or ()):
        return True
    return False


def causal_chain(events: Sequence[Event | dict],
                 target: dict | None = None) -> list[dict]:
    """The chain of events that shaped the target's capability: its
    allocation, provenance transitions, and derivations, in order."""
    dicts = _as_dicts(events)
    if target is None:
        target = final_event(dicts)
    if target is None:
        return []
    alloc, iota = _focus_keys(target)
    chain = [e for e in dicts
             if e.get("kind") in _CHAIN_KINDS
             and e.get("seq") != target.get("seq")
             and (e.get("seq") or 0) <= (target.get("seq") or 0)
             and _related(e, alloc, iota)]
    return chain


def _op_suffix(event: dict) -> str:
    """The Core op attribution, when the trace ran under the Core
    evaluator (``core_op`` is the ``function:index`` id of the explicit
    load/store/derivation op that produced the event)."""
    core_op = event.get("core_op")
    return f"  [{core_op}]" if core_op else ""


def _line(event: dict) -> str:
    what = event.get("what", "")
    return f"  step {event.get('step', 0):>4}  {event.get('kind', ''):<16} " \
           f"{what}{_op_suffix(event)}"


def _verdict_sentence(target: dict, chain: list[dict]) -> str:
    label = target.get("ub") or target.get("trap")
    if not label and target.get("limit"):
        label = f"resource_exhausted ({target.get('limit')})"
    if not label:
        label = target.get("ghost") or target.get("kind")
    alloc, iota = _focus_keys(target)
    parts = [f"verdict: {label}"]
    created = next((e for e in chain if e.get("kind") == "alloc.create"), None)
    if alloc is not None:
        prov = f"@{alloc}"
        if created is not None:
            parts.append(
                f"because the capability carries provenance {prov} "
                f"(allocation {prov} '{created.get('name', '')}' created at "
                f"step {created.get('step', 0)}, object "
                f"[{created.get('base', '?')}-{created.get('top', '?')}))")
        else:
            parts.append(f"because the capability carries provenance {prov}")
    elif iota is not None:
        fresh = next((e for e in chain
                      if e.get("kind") == "prov.iota_fresh"
                      and e.get("iota") == iota), None)
        cands = fresh.get("candidates") if fresh else None
        parts.append(
            f"because the pointer carries symbolic provenance @iota{iota}"
            + (f" (candidates {cands}, created at step "
               f"{fresh.get('step', 0)})" if fresh else ""))
    else:
        parts.append("with no allocation provenance (empty)")
    derivs = [e for e in chain
              if e.get("kind", "").startswith(("deriv.", "cap.",
                                               "intrinsic."))]
    if derivs:
        last = derivs[-1]
        name = last.get("name") or last.get("kind")
        parts.append(f"and was last derived by {name} at step "
                     f"{last.get('step', 0)}")
    exposures = [e for e in chain if e.get("kind") == "prov.expose"]
    if exposures:
        parts.append(f"(exposed at step {exposures[-1].get('step', 0)})")
    return " ".join(parts) + "."


def explain(events: Sequence[Event | dict],
            outcome: str | None = None) -> str:
    """Render the causal explanation of a trace as text."""
    dicts = _as_dicts(events)
    lines = ["== explain =="]
    if outcome is not None:
        lines.append(f"outcome: {outcome}")
    target = final_event(dicts)
    if target is None:
        lines.append("empty trace: nothing to explain")
        return "\n".join(lines) + "\n"
    lines.append(f"target:  step {target.get('step', 0):>4}  "
                 f"{target.get('kind', ''):<16} {target.get('what', '')}"
                 f"{_op_suffix(target)}")
    chain = causal_chain(dicts, target)
    shown = chain[-_MAX_CHAIN:]
    lines.append(f"causal chain ({len(chain)} events"
                 + (f", last {len(shown)} shown" if len(shown) < len(chain)
                    else "") + "):")
    lines.extend(_line(e) for e in shown)
    lines.append(_verdict_sentence(target, chain))
    return "\n".join(lines) + "\n"
