"""Per-run metrics: counters and wall time over the event stream.

``Metrics`` subscribes to the same bus as the recorder and aggregates:

* event counts by kind (``events.alloc.create`` etc.);
* UB checks by catalogue entry (``ub.UB_CHERI_BoundsViolation``), from
  ``check.ub`` events;
* hardware traps by kind, from ``check.trap`` events;
* derivations (``deriv.*``), allocator churn (``region.reserve`` plus
  bytes reserved/padding, ``region.reuse`` bytes recycled), interpreter
  step count, and wall time.

The runner stamps the step count and wall time (:meth:`start` /
:meth:`finish`); everything else accumulates from events.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.obs.events import Event, EventBus


class Metrics:
    """Counter/timer aggregation for one run."""

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.steps = 0
        self.wall_seconds = 0.0
        self._started: float | None = None

    # -- lifecycle ------------------------------------------------------

    def attach(self, bus: EventBus) -> "Metrics":
        bus.subscribe(self.observe)
        return self

    def start(self) -> "Metrics":
        if self._started is not None:
            raise RuntimeError(
                "Metrics.start() while the timer is already running; "
                "call finish() first")
        self._started = time.perf_counter()
        return self

    def finish(self, steps: int | None = None) -> "Metrics":
        if self._started is None:
            raise RuntimeError(
                "Metrics.finish() without a matching start()")
        self.wall_seconds += time.perf_counter() - self._started
        self._started = None
        if steps is not None:
            self.steps = steps
        return self

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another run's metrics into this one (the worker-pool
        aggregation path: one Metrics per case run, merged per report).
        Wall time adds up to *total compute* time, which under a worker
        pool exceeds elapsed wall-clock time."""
        if other._started is not None:
            raise RuntimeError("cannot merge a Metrics whose timer is "
                               "still running")
        self.counters.update(other.counters)
        self.steps += other.steps
        self.wall_seconds += other.wall_seconds
        return self

    # -- accumulation ---------------------------------------------------

    def observe(self, event: Event) -> None:
        self.counters[f"events.{event.kind}"] += 1
        if event.kind == "check.ub":
            self.counters[f"ub.{event.data.get('ub', '?')}"] += 1
        elif event.kind == "check.trap":
            self.counters[f"trap.{event.data.get('trap', '?')}"] += 1
        elif event.kind == "robust.cutoff":
            self.counters[f"cutoff.{event.data.get('limit', '?')}"] += 1
        elif event.kind.startswith("deriv."):
            self.counters["derivations"] += 1
        elif event.kind == "region.reserve":
            self.counters["allocator.reserved_bytes"] += \
                int(event.data.get("padded_size", 0))
            self.counters["allocator.padding_bytes"] += \
                int(event.data.get("padded_size", 0)) - \
                int(event.data.get("size", 0))
        elif event.kind == "region.reuse":
            self.counters["allocator.reused_bytes"] += \
                int(event.data.get("padded_size", 0))

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] += n

    # -- reporting ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "steps": self.steps,
            "wall_seconds": round(self.wall_seconds, 6),
            "counters": dict(sorted(self.counters.items())),
        }

    def summary(self) -> str:
        """Stable text rendering for ``--metrics`` output."""
        lines = [
            f"interp steps        {self.steps}",
            f"wall time           {self.wall_seconds * 1000:.2f} ms",
        ]
        ub = {k: v for k, v in self.counters.items() if k.startswith("ub.")}
        traps = {k: v for k, v in self.counters.items()
                 if k.startswith("trap.")}
        events = {k: v for k, v in self.counters.items()
                  if k.startswith("events.")}
        other = {k: v for k, v in self.counters.items()
                 if not (k.startswith(("ub.", "trap.", "events.")))}
        for title, table in (("ub checks failed", ub),
                             ("hardware traps", traps),
                             ("counters", other),
                             ("events", events)):
            if not table:
                continue
            lines.append(f"{title}:")
            for key in sorted(table):
                lines.append(f"  {key:34s} {table[key]}")
        return "\n".join(lines) + "\n"
