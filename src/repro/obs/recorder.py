"""Trace capture: full or ring-buffered, serialised as JSONL.

``TraceRecorder`` subscribes to an :class:`~repro.obs.events.EventBus`
and keeps the events it sees.  Ring mode (``ring=N``) keeps only the
last ``N`` events in a :class:`collections.deque`, which is what the
fuzzer uses to keep tracing cheap enough to stay on: the explainer only
ever needs the tail of the trace (the final divergent event and its
causal ancestors), and allocation events for long-lived objects are
re-derivable from the memory state.

The JSONL schema is one event per line::

    {"seq": 17, "step": 41, "kind": "alloc.create", "alloc": 7, ...}

``seq``/``step``/``kind`` are always present; the remaining keys are the
event payload (documented per kind in docs/SEMANTICS.md).  A trace file
is self-describing and diffable; ``repro trace --jsonl`` writes it.
"""

from __future__ import annotations

import collections
import json
import pathlib
from typing import IO, Iterable

from repro.obs.events import Event, EventBus


class TraceRecorder:
    """Capture events from a bus; optionally bounded (ring buffer)."""

    def __init__(self, ring: int | None = None) -> None:
        if ring is not None and ring <= 0:
            raise ValueError("ring size must be positive")
        self.ring = ring
        self._events: collections.deque[Event] | list[Event]
        self._events = collections.deque(maxlen=ring) if ring else []
        #: Total events seen, including any that fell off the ring.
        self.seen = 0

    def attach(self, bus: EventBus) -> "TraceRecorder":
        bus.subscribe(self.record)
        return self

    def record(self, event: Event) -> None:
        self.seen += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (0 in full mode)."""
        return self.seen - len(self._events)

    def events(self) -> list[Event]:
        return list(self._events)

    def dicts(self) -> list[dict]:
        return [event.to_dict() for event in self._events]

    def write_jsonl(self, target: str | pathlib.Path | IO[str]) -> int:
        """Write the captured trace as JSONL; returns the event count."""
        events = self.events()
        if hasattr(target, "write"):
            _write_lines(target, events)  # type: ignore[arg-type]
        else:
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as handle:
                _write_lines(handle, events)
        return len(events)


def _write_lines(handle: IO[str], events: Iterable[Event]) -> None:
    for event in events:
        handle.write(json.dumps(event.to_dict(), sort_keys=False) + "\n")


def load_jsonl(source: str | pathlib.Path | IO[str]) -> list[dict]:
    """Read a JSONL trace back into event dicts (for the explainer)."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = pathlib.Path(source).read_text(encoding="utf-8")
    return [json.loads(line) for line in text.splitlines() if line.strip()]
