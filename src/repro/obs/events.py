"""The event bus and the semantic event taxonomy.

Every decision the executable semantics makes -- allocating, checking,
deriving, exposing, tainting -- can be published as an :class:`Event` on
an :class:`EventBus`.  Producers (the memory model, the interpreter, the
intrinsics) hold an optional bus and emit only when one is attached, so
the untraced hot path pays a single ``is None`` test per site.

Event kinds form a dotted taxonomy (the authoritative list is
:data:`EVENT_KINDS`; ``docs/SEMANTICS.md`` documents the payloads):

``alloc.create / alloc.kill / alloc.free / alloc.revoke``
    allocation lifecycle (S4.3 allocation table ``A``);
``region.reserve / region.reuse / region.quarantine``
    allocator churn: fresh reservations (including the S3.2
    representability padding), freed-region reuse under the
    ``freelist``/``quarantine`` policies, and quarantine admission
    (every one carries the ``policy`` name);
``prov.expose / prov.iota_fresh / prov.iota_resolve / prov.lookup``
    PNVI-ae-udi provenance transitions (S2.3, S3.3);
``deriv.arith / deriv.shift / deriv.member``
    capability derivations: the explicit S4.4 derivation step for
    ``(u)intptr_t`` arithmetic, and pointer arithmetic shifts;
``cap.bounds_set / cap.seal / cap.unseal / cap.tag_clear /
cap.perms_and / cap.address_set``
    monotonic capability mutations performed by intrinsics (S4.5);
``intrinsic.call``
    every CHERI intrinsic call with its argument and result rendering;
``ghost.set``
    ghost-state transitions (S3.3 excursions, S3.5 representation-byte
    writes);
``check.access / check.ub / check.trap``
    the access-check sequence: passed checks, abstract-machine UB
    verdicts (S4.2 catalogue), and hardware trap verdicts;
``mem.load / mem.store / mem.copy / mem.set``
    typed and bulk memory effects;
``interp.call / run.outcome``
    interpreter-level progress and the final observable outcome;
``robust.cutoff / robust.fault / robust.retry / robust.quarantine``
    resource governance (docs/ROBUSTNESS.md): budget cut-offs, injected
    faults, pool task retries, and pool-level quarantine verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: The closed set of event kinds (kept in sync with docs/SEMANTICS.md;
#: ``EventBus.emit`` validates against it so taxonomy drift is loud).
EVENT_KINDS = frozenset({
    "alloc.create", "alloc.kill", "alloc.free", "alloc.revoke",
    "region.reserve", "region.reuse", "region.quarantine",
    "prov.expose", "prov.iota_fresh", "prov.iota_resolve", "prov.lookup",
    "deriv.arith", "deriv.shift", "deriv.member",
    "cap.bounds_set", "cap.seal", "cap.unseal", "cap.tag_clear",
    "cap.perms_and", "cap.address_set",
    "intrinsic.call",
    "ghost.set",
    "check.access", "check.ub", "check.trap",
    "mem.load", "mem.store", "mem.copy", "mem.set",
    "interp.call", "run.outcome",
    "robust.cutoff", "robust.fault", "robust.retry", "robust.quarantine",
})


@dataclass(frozen=True)
class Event:
    """One semantic event.

    Attributes:
        seq: monotone sequence number within one bus (1-based).
        step: the interpreter's evaluation-step counter at emit time --
            the ``step N`` the explainer prints; 0 before/outside
            interpretation.
        kind: one of :data:`EVENT_KINDS`.
        data: JSON-serialisable payload; ``what`` holds a one-line
            human rendering used by the explainer.
        core_op: the Core IR op id (``function:index``) that was
            executing at emit time, or ``None`` when untraced or
            running under the AST walker (whose events carry no op
            context).  Distinct from the ``op`` *payload* key some
            producers use for their own operation name.
    """

    seq: int
    step: int
    kind: str
    data: dict = field(default_factory=dict)
    core_op: str | None = None

    def to_dict(self) -> dict:
        """Flat JSONL shape: reserved keys first, payload inline."""
        out: dict = {"seq": self.seq, "step": self.step, "kind": self.kind}
        if self.core_op is not None:
            out["core_op"] = self.core_op
        out.update(self.data)
        return out

    @property
    def what(self) -> str:
        return str(self.data.get("what", ""))


class EventBus:
    """Dispatch point between the semantics and its observers.

    Producers call :meth:`emit`; observers (:class:`TraceRecorder`,
    :class:`Metrics`) register callables with :meth:`subscribe`.  The
    interpreter publishes its step counter by assigning :attr:`step`;
    the Core evaluator additionally publishes the active op id by
    assigning :attr:`op`, so every event produced while that op runs
    (loads, stores, derivations, checks) is attributed to it.
    """

    __slots__ = ("seq", "step", "op", "_subscribers")

    def __init__(self) -> None:
        self.seq = 0
        self.step = 0
        self.op: str | None = None
        self._subscribers: list[Callable[[Event], None]] = []

    def subscribe(self, handler: Callable[[Event], None]) -> None:
        self._subscribers.append(handler)

    def emit(self, kind: str, **data) -> Event:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        if "seq" in data or "step" in data or "core_op" in data:
            # Would be silently shadowed by the reserved keys in to_dict.
            raise ValueError(
                "payload keys 'seq'/'step'/'core_op' are reserved")
        self.seq += 1
        event = Event(self.seq, self.step, kind, data, self.op)
        for handler in self._subscribers:
            handler(event)
        return event
