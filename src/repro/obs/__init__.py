"""Semantic event-trace subsystem: structured observability for the
executable semantics.

The paper's payoff is *attribution*: when CHERI C implementations
diverge (S5, Appendix A), the semantics explains **why** -- which
provenance transition, capability derivation, or ghost-state change
licensed the behaviour.  This package records that chain of decisions as
a structured event trace:

* :mod:`repro.obs.events` -- the :class:`EventBus` and the event
  taxonomy (allocation lifecycle, provenance create/expose/resolve,
  capability derivation, ghost-state transitions, UB checks with their
  verdicts, intrinsic calls);
* :mod:`repro.obs.recorder` -- :class:`TraceRecorder`, capturing events
  in full or into a bounded ring buffer, with JSONL output;
* :mod:`repro.obs.metrics` -- :class:`Metrics`, per-run counters and
  wall time;
* :mod:`repro.obs.explain` -- the explainer, reconstructing the causal
  chain behind a UB verdict or divergence in the Appendix-A capprint
  style.

Tracing is strictly opt-in: every instrumentation site in the memory
model and interpreter is guarded by an ``is None`` check on the bus, so
an untraced run (the default everywhere) pays only that guard
(``benchmarks/bench_trace_overhead.py`` bounds it at <=2%).
"""

from repro.obs.events import Event, EventBus
from repro.obs.explain import explain, explaining_signature, final_event
from repro.obs.metrics import Metrics
from repro.obs.recorder import TraceRecorder

__all__ = [
    "Event",
    "EventBus",
    "Metrics",
    "TraceRecorder",
    "explain",
    "explaining_signature",
    "final_event",
]
