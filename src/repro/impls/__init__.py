"""Simulated CHERI C implementations (S5).

The paper compares the Cerberus executable semantics against Clang/LLVM
(Morello and CHERI-RISC-V backends, several -O levels) and GCC (Morello
bare-metal).  We cannot run those toolchains here, so each implementation
is simulated from the three ingredients that actually produce the
paper's observable divergences:

1. **semantics mode** -- the reference implementation runs the abstract
   machine (UB + ghost state); compiled implementations run hardware
   semantics (traps, real tag clears, wrapping arithmetic, no temporal
   checks);
2. **the modelled optimiser** (:mod:`repro.core.optimizer`) at the
   implementation's -O level;
3. **allocator address ranges and policies** -- the Appendix-A
   divergence between Clang and GCC is entirely an address-range
   effect, reproduced by per-implementation
   :class:`~repro.memory.allocator.AddressMap`\\ s; heap-reuse
   behaviour (use-after-free aliasing, quarantined reuse) is the
   orthogonal ``allocator`` axis
   (:class:`~repro.memory.allocator.AllocatorPolicy`).
"""

from repro.impls.config import (
    COMPILE_AXES,
    Implementation,
    META_AXES,
    RUN_AXES,
)
from repro.impls.registry import (
    ALL_IMPLEMENTATIONS,
    APPENDIX_IMPLEMENTATIONS,
    CERBERUS,
    by_name,
    with_allocator,
)

__all__ = [
    "ALL_IMPLEMENTATIONS",
    "APPENDIX_IMPLEMENTATIONS",
    "CERBERUS",
    "COMPILE_AXES",
    "Implementation",
    "META_AXES",
    "RUN_AXES",
    "by_name",
    "with_allocator",
]
