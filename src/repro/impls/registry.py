"""The implementation registry used by the validation suite and benches.

Address maps are chosen so the addresses that test programs print land in
the same ranges as the paper's Appendix A traces:

* Cerberus stacks just below 2^32 (``0xffffe6dc``-style) -- masking an
  ``intptr_t`` with ``UINT_MAX`` is the identity; masking with
  ``INT_MAX`` moves below the allocation (ghost non-representability);
* Clang/CheriBSD RISC-V stacks near ``0x3fffdfffxx`` and Morello stacks
  near ``0xfffffff7ffxx`` -- both masks relocate the address far out of
  bounds (tag invalid);
* GCC bare-metal stacks below 2^31 (``0x7fffffxx``) -- both masks are
  the identity, "likely because of its memory allocator's address
  ranges" (S5).
"""

from __future__ import annotations

import dataclasses

from repro.capability.cheriot import CHERIOT
from repro.capability.morello import MORELLO
from repro.impls.config import Implementation
from repro.memory.allocator import AddressMap
from repro.memory.model import Mode
from repro.memory.options import OOBArithPolicy, SemanticsOptions

CERBERUS_MAP = AddressMap(
    name="cerberus",
    stack_base=0xffffe700,
    heap_base=0x4000_0000,
    globals_base=0x1_0000,
    code_base=0x1000,
)

CLANG_MORELLO_MAP = AddressMap(
    name="clang-morello",
    stack_base=0xffff_fff7_ff80,
    heap_base=0x4050_0000_0000,
    globals_base=0x10_0000,
    code_base=0x1_0000,
)

CLANG_RISCV_MAP = AddressMap(
    name="clang-riscv",
    stack_base=0x3f_ffdf_ff80,
    heap_base=0x40_6000_0000,
    globals_base=0x10_0000,
    code_base=0x1_0000,
)

GCC_MORELLO_MAP = AddressMap(
    name="gcc-morello",
    stack_base=0x7fff_ffd0,
    heap_base=0x1000_0000,
    globals_base=0x2_0000,
    code_base=0x8000,
)

CHERIOT_MAP = AddressMap(
    name="cheriot",
    stack_base=0x2000_ff00,
    heap_base=0x2004_0000,
    globals_base=0x2000_0000,
    code_base=0x1000_0000,
)

CERBERUS = Implementation(
    name="cerberus",
    arch=MORELLO,
    mode=Mode.ABSTRACT,
    address_map=CERBERUS_MAP,
    opt_level=0,
    description="Reference executable semantics (abstract machine, "
                "Morello capability format)",
)

CLANG_MORELLO_O0 = Implementation(
    name="clang-morello-O0",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_MORELLO_MAP,
    opt_level=0,
    description="Clang/LLVM Morello at -O0 (hardware semantics)",
)

CLANG_MORELLO_O3 = Implementation(
    name="clang-morello-O3",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_MORELLO_MAP,
    opt_level=3,
    description="Clang/LLVM Morello at -O3 (modelled optimisations)",
)

CLANG_RISCV_O0 = Implementation(
    name="clang-riscv-O0",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_RISCV_MAP,
    opt_level=0,
    description="Clang/LLVM CHERI-RISC-V at -O0 (hardware semantics)",
)

CLANG_RISCV_O3 = Implementation(
    name="clang-riscv-O3",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_RISCV_MAP,
    opt_level=3,
    description="Clang/LLVM CHERI-RISC-V at -O3 (modelled optimisations)",
)

CLANG_MORELLO_O3_SUBOBJECT = Implementation(
    name="clang-morello-O3-subobject-safe",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_MORELLO_MAP,
    opt_level=3,
    subobject_bounds=True,
    description="Clang Morello at -O3 with sub-object bounds (S3.8)",
)

GCC_MORELLO_O0 = Implementation(
    name="gcc-morello-O0",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=GCC_MORELLO_MAP,
    opt_level=0,
    description="GCC Morello bare-metal at -O0 (low address ranges)",
)

GCC_MORELLO_O3 = Implementation(
    name="gcc-morello-O3",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=GCC_MORELLO_MAP,
    opt_level=3,
    description="GCC Morello bare-metal at -O3 (modelled optimisations)",
)

CHERIOT_ABSTRACT = Implementation(
    name="cerberus-cheriot",
    arch=CHERIOT,
    mode=Mode.ABSTRACT,
    address_map=CHERIOT_MAP,
    opt_level=0,
    description="Abstract machine over the CHERIoT-style 64-bit "
                "capability format (S3.10/S5.4)",
)

CHERIOT_HARDWARE = Implementation(
    name="cheriot-O0",
    arch=CHERIOT,
    mode=Mode.HARDWARE,
    address_map=CHERIOT_MAP,
    opt_level=0,
    revocation=True,
    description="CHERIoT-style hardware: 64-bit capabilities plus "
                "temporal revocation on free (S5.4: 'CHERIoT provides "
                "additional temporal guarantees')",
)

CERBERUS_PERMISSIVE = Implementation(
    name="cerberus-permissive",
    arch=MORELLO,
    mode=Mode.ABSTRACT,
    address_map=CERBERUS_MAP,
    opt_level=0,
    options=SemanticsOptions(oob_arith=OOBArithPolicy.ARCH_REPRESENTABLE),
    description="Abstract machine under the permissive S3.2 option (c): "
                "pointer arithmetic defined within the representable "
                "region (the strict mode is plain 'cerberus')",
)

CERBERUS_FREELIST = Implementation(
    name="cerberus-freelist",
    arch=MORELLO,
    mode=Mode.ABSTRACT,
    address_map=CERBERUS_MAP,
    opt_level=0,
    allocator="freelist",
    description="Reference abstract machine over a reusing (free-list) "
                "heap allocator: UAF aliasing is still UB, but addresses "
                "recycle as on conventional allocators",
)

CLANG_MORELLO_O0_FREELIST = Implementation(
    name="clang-morello-O0-freelist",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_MORELLO_MAP,
    opt_level=0,
    allocator="freelist",
    description="Clang Morello at -O0 over a reusing heap allocator "
                "(use-after-free aliases the replacement object)",
)

CLANG_RISCV_O3_FREELIST = Implementation(
    name="clang-riscv-O3-freelist",
    arch=MORELLO,
    mode=Mode.HARDWARE,
    address_map=CLANG_RISCV_MAP,
    opt_level=3,
    allocator="freelist",
    description="Clang CHERI-RISC-V at -O3 over a reusing heap "
                "allocator",
)

CHERIOT_QUARANTINE = Implementation(
    name="cheriot-O0-quarantine",
    arch=CHERIOT,
    mode=Mode.HARDWARE,
    address_map=CHERIOT_MAP,
    opt_level=0,
    revocation=True,
    allocator="quarantine",
    description="CHERIoT-style hardware with quarantined reuse: freed "
                "regions wait out a bounded FIFO (revocation sweeps "
                "first), modelling the heap of the CHERIoT RTOS",
)

#: The implementations the S5 comparison runs over.
ALL_IMPLEMENTATIONS: tuple[Implementation, ...] = (
    CERBERUS,
    CLANG_MORELLO_O0,
    CLANG_MORELLO_O3,
    CLANG_RISCV_O0,
    CLANG_RISCV_O3,
    GCC_MORELLO_O0,
    GCC_MORELLO_O3,
)

#: The implementations whose traces Appendix A prints.
APPENDIX_IMPLEMENTATIONS: tuple[Implementation, ...] = (
    CERBERUS,
    CLANG_RISCV_O3,
    CLANG_RISCV_O0,
    CLANG_MORELLO_O3,
    CLANG_MORELLO_O0,
    GCC_MORELLO_O3,
    GCC_MORELLO_O0,
)

_BY_NAME = {impl.name: impl for impl in
            ALL_IMPLEMENTATIONS + (CLANG_MORELLO_O3_SUBOBJECT,
                                   CHERIOT_ABSTRACT, CHERIOT_HARDWARE,
                                   CERBERUS_PERMISSIVE,
                                   CERBERUS_FREELIST,
                                   CLANG_MORELLO_O0_FREELIST,
                                   CLANG_RISCV_O3_FREELIST,
                                   CHERIOT_QUARANTINE)}


def by_name(name: str) -> Implementation:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown implementation {name!r}; known: "
                       f"{sorted(_BY_NAME)}") from None


def with_allocator(impl: Implementation, policy: str) -> Implementation:
    """``impl`` running over the named allocator policy.

    Prefers a registered variant (so ``cerberus`` + ``freelist`` yields
    the canonical ``cerberus-freelist``); otherwise derives one, with
    the policy suffixed to the name so reports and cache keys stay
    distinct.  The identity policy returns ``impl`` unchanged.
    """
    if policy == impl.allocator:
        return impl
    derived_name = f"{impl.name}-{policy}"
    registered = _BY_NAME.get(derived_name)
    if registered is not None and registered.allocator == policy:
        return registered
    return dataclasses.replace(
        impl, name=derived_name, allocator=policy,
        description=(f"{impl.description} [{policy} allocator]"
                     if impl.description else f"{policy} allocator"),
    )
