"""One simulated CHERI C implementation = arch + mode + optimiser + allocator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capability.abstract import Architecture
from repro.core.cast import Program
from repro.core.coreeval import CoreEvaluator, default_evaluator
from repro.core.coreir import CoreProgram
from repro.core.interp import Interpreter
from repro.ctypes.layout import TargetLayout
from repro.errors import CSyntaxError, CTypeError, Outcome
from repro.memory.allocator import AddressMap
from repro.memory.model import MemoryModel, Mode
from repro.memory.options import PAPER_CHOICES, SemanticsOptions
from repro.perf.cache import (
    compile_core, compile_program, compile_threaded,
)


#: Axes that determine the *compiled program*: the frontend, the
#: modelled optimiser, and the bounds-narrowing passes read exactly
#: these, so they (and only they) belong in compile-cache keys
#: (:func:`repro.perf.cache.CompileCache.key_for`, the disk digest).
COMPILE_AXES = ("arch", "opt_level", "subobject_bounds", "options")

#: Axes that only affect *running* a compiled program: a compiled
#: program is valid across all of them (compile caches are shared), but
#: any run memo or state snapshot must key on every one of them
#: (:func:`repro.core.compile.run_config_key`).
RUN_AXES = ("mode", "address_map", "revocation", "allocator")

#: Axes with no semantic effect (labels for reports).
META_AXES = ("name", "description")


@dataclass(frozen=True)
class Implementation:
    """A runnable CHERI C implementation configuration.

    Attributes:
        name: e.g. ``clang-riscv-O3-bounds-conservative``.
        arch: capability format (Morello-style or CHERIoT-style).
        mode: abstract machine vs hardware execution.
        address_map: where the allocator places stack/heap/globals --
            observable through pointer-to-integer casts (Appendix A).
        opt_level: the modelled -O level.
        subobject_bounds: Clang's sub-object bounds mode (S3.8); the
            default (False) is the paper's "conservative" setting.
        allocator: heap-reuse policy (``bump``/``freelist``/
            ``quarantine``, see :mod:`repro.memory.allocator`) --
            observable through use-after-free aliasing.
        description: one line for reports.
    """

    name: str
    arch: Architecture
    mode: Mode
    address_map: AddressMap
    opt_level: int = 0
    subobject_bounds: bool = False
    options: SemanticsOptions = field(default_factory=lambda: PAPER_CHOICES)
    revocation: bool = False
    allocator: str = "bump"
    description: str = ""

    def fresh_model(self, bus=None, meter=None) -> MemoryModel:
        return MemoryModel(self.arch, self.mode, self.address_map,
                           subobject_bounds=self.subobject_bounds,
                           options=self.options,
                           revocation=self.revocation,
                           allocator=self.allocator,
                           bus=bus, meter=meter)

    @property
    def layout(self) -> TargetLayout:
        return TargetLayout(self.arch)

    def compile(self, source: str, *,
                use_cache: bool | None = None) -> Program:
        """The cacheable stage: parse + modelled optimisation.

        The result depends only on ``(source, arch, opt_level,
        subobject_bounds, options)``, so it is served from the
        process-wide compilation cache (:mod:`repro.perf.cache`) unless
        ``use_cache`` disables it.  Elaborated Core programs
        additionally persist in the content-addressed on-disk layer
        (:mod:`repro.perf.disk`), so a fresh process -- or a pool
        worker -- warm-starts from any previous run's compiles.
        Raises :class:`CSyntaxError` / :class:`CTypeError` when the
        frontend rejects the program.
        """
        return compile_program(self, source, use_cache=use_cache)

    def run_compiled(self, program: Program | CoreProgram,
                     main: str = "main", *, bus=None, budget=None,
                     faults=None, evaluator: str | None = None) -> Outcome:
        """The run stage: interpret a compiled program on a fresh model.

        Compiled programs are immutable (frozen-dataclass AST; Core op
        lists are only ever read), so one cached compile can back any
        number of concurrent runs.  ``program`` may be the typed AST
        (from :meth:`compile`), an elaborated
        :class:`~repro.core.coreir.CoreProgram`, or a direct-threaded
        :class:`~repro.core.compile.CompiledProgram`; ``evaluator``
        picks the strategy (``None`` = the process default,
        ``compiled``) -- a representation short of the chosen
        evaluator's is elaborated/threaded on the fly, and a Core or
        compiled program handed to the AST walker runs its retained
        ``ast``.  When a :class:`~repro.robust.Budget` (or a test-only
        :class:`~repro.robust.FaultPlan`) is given, the run is governed:
        it always terminates with a structured outcome, never a hang or
        a raw ``RecursionError``/``MemoryError``.
        """
        from repro.core.compile import CompiledEvaluator, CompiledProgram
        meter = None
        if budget is not None or faults is not None:
            from repro.robust.budget import BudgetMeter
            meter = BudgetMeter(budget, bus=bus, faults=faults)
        model = self.fresh_model(bus=bus, meter=meter)
        if evaluator is None:
            evaluator = default_evaluator()
        if evaluator == "compiled":
            if not isinstance(program, CompiledProgram):
                from repro.core.compile import compile_core as thread_core
                if not isinstance(program, CoreProgram):
                    from repro.core.elaborate import elaborate_program
                    program = elaborate_program(program)
                program = thread_core(program, self)
            return CompiledEvaluator(program, model).run(main)
        if evaluator == "core":
            if isinstance(program, CompiledProgram):
                program = program.core
            elif not isinstance(program, CoreProgram):
                from repro.core.elaborate import elaborate_program
                program = elaborate_program(program)
            return CoreEvaluator(program, model).run(main)
        if isinstance(program, (CoreProgram, CompiledProgram)):
            program = program.ast
        return Interpreter(program, model).run(main)

    def run(self, source: str, main: str = "main", *, bus=None,
            use_cache: bool | None = None, budget=None,
            faults=None, evaluator: str | None = None) -> Outcome:
        """Compile (parse + modelled optimisation + elaboration) and
        run one program.

        ``bus`` attaches an :class:`~repro.obs.events.EventBus` for the
        run (``repro trace``, fuzz evidence capture); None = untraced.
        ``evaluator`` selects ``ast`` (the recursive walker), ``core``
        (the iterative Core evaluator), or ``compiled`` (the
        direct-threaded closure backend); ``None`` defers to the
        process default.  ``budget``/``faults`` govern the run stage
        (see :meth:`run_compiled`); the compile stage additionally
        honours a fault plan's ``compile_delay`` and converts host
        recursion blow-ups on pathological inputs into structured
        outcomes.
        """
        if faults is not None and faults.compile_delay is not None:
            import time
            time.sleep(faults.compile_delay)
        if evaluator is None:
            evaluator = default_evaluator()
        try:
            if evaluator == "compiled":
                program = compile_threaded(self, source,
                                           use_cache=use_cache)
            elif evaluator == "core":
                program = compile_core(self, source, use_cache=use_cache)
            else:
                program = self.compile(source, use_cache=use_cache)
        except (CSyntaxError, CTypeError) as exc:
            return Outcome.frontend_error(str(exc))
        except RecursionError:
            return Outcome.resource_exhausted(
                "python-recursion",
                "host recursion limit while compiling")
        except MemoryError:
            return Outcome.resource_exhausted(
                "python-memory", "host out of memory while compiling")
        return self.run_compiled(program, main, bus=bus, budget=budget,
                                 faults=faults, evaluator=evaluator)
