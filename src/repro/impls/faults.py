"""Seeded implementation faults: the suite as a bug finder (S5).

The paper's experimental claim is not just that implementations pass
the suite, but that the suite *finds real bugs*: "Our test suite
independently identified two known issues ... It also rediscovered an
upstream bug ... Additionally, our suite detected ... two bugs in the
realloc function of the CheriBSD jemalloc library" (S5.2) and "Our test
suite identified five issues in the latest public release" (S5.3).

We cannot re-find those exact bugs (our simulated implementations are
bug-free by construction), so this module reproduces the *capability to
find them*: each :class:`Fault` seeds a realistic implementation bug --
modelled on the classes of bug the paper reports -- into a hardware
implementation, and ``benchmarks/bench_bug_detection.py`` verifies the
suite flags every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.impls.config import Implementation
from repro.impls.registry import CLANG_MORELLO_O0
from repro.memory.model import MemoryModel
from repro.memory.values import PointerValue


class ReallocDropsTagModel(MemoryModel):
    """The CheriBSD jemalloc-realloc class of bug (S5.2): realloc
    returns a capability whose tag was lost on the resize path."""

    def realloc(self, ptr, new_size):
        out = super().realloc(ptr, new_size)
        return out.with_cap(out.cap.with_tag(False))


class MemcpyBytewiseModel(MemoryModel):
    """A libc that copies bytewise: capabilities lose their tags in
    memcpy, breaking S3.5's preservation requirement (the newlib /
    bare-metal runtime class of bug deferred in S5.3)."""

    def _raw_copy(self, daddr, saddr, n):
        snapshot = [self.state.read_byte(saddr + i) for i in range(n)]
        for i, b in enumerate(snapshot):
            self.state.write_byte(daddr + i, b)
        self.state.taint_capmeta(daddr, n, hardware=True)


class MallocUnpaddedModel(MemoryModel):
    """An allocator that ignores representability padding (violating the
    S3.2 obligation): large allocations get capabilities whose rounded
    bounds overlap the neighbouring allocation."""

    def allocate_region(self, size, align=None, name="malloc"):
        alignment = align if align is not None else \
            self.arch.capability_size
        # Reserve the *exact* size (no representability padding)...
        from repro.memory.allocation import Allocation, AllocKind
        cursor = self.state.allocator.cursor(AllocKind.HEAP)
        base = (cursor + alignment - 1) & ~(alignment - 1)
        self.state.allocator.rewind(AllocKind.HEAP, base + size)
        ident = self.state.fresh_allocation_id()
        self.state.add_allocation(Allocation(
            ident=ident, base=base, size=size, align=alignment,
            kind=AllocKind.HEAP, name=name))
        for addr in range(base, base + size):
            self.state.bytes.pop(addr, None)
        for slot in self.state.cap_slots(base, size):
            self.state.capmeta.pop(slot, None)
        # ...so the capability's rounded bounds may exceed it.
        from repro.memory.model import DATA_PERMS
        cap = self._root.with_perms_masked(
            DATA_PERMS.intersect(self.arch.root_permissions()))
        cap, _ = cap.set_bounds(base, size)
        from repro.memory.provenance import Provenance
        return PointerValue(Provenance.alloc(ident), cap)


class ConstWritableModel(MemoryModel):
    """A compiler/linker that forgets to drop write permissions on
    capabilities to const objects (the S3.9 requirement; the paper's
    S5.1 notes even Cerberus had 'one known bug relating to const')."""

    def allocate_object(self, ctype, kind, name="", *, readonly=False,
                        align=None):
        out = super().allocate_object(ctype, kind, name,
                                      readonly=False, align=align)
        return out

    def allocate_string(self, data, name=""):
        ptr = super().allocate_string(data, name=name)
        # Rebuild the string capability with full (writable) permissions.
        writable = self._root.with_perms_masked(
            self.arch.root_permissions())
        cap, _ = writable.set_bounds(ptr.cap.base, ptr.cap.length)
        alloc = self.state.allocations.get(ptr.prov.ident)
        if alloc is not None:
            alloc.readonly = False
        return ptr.with_cap(cap)


@dataclass(frozen=True)
class FaultyImplementation(Implementation):
    """An implementation with a seeded model-level bug."""

    model_class: type[MemoryModel] = MemoryModel

    def fresh_model(self, bus=None, meter=None):
        return self.model_class(self.arch, self.mode, self.address_map,
                                subobject_bounds=self.subobject_bounds,
                                options=self.options,
                                revocation=self.revocation,
                                bus=bus, meter=meter)


def _faulty(name: str, model_class: type[MemoryModel],
            description: str) -> FaultyImplementation:
    base = CLANG_MORELLO_O0
    return FaultyImplementation(
        name=name, arch=base.arch, mode=base.mode,
        address_map=base.address_map, opt_level=base.opt_level,
        description=description, model_class=model_class)


#: The seeded-bug registry: name -> (implementation, bug summary).
FAULTS: dict[str, FaultyImplementation] = {
    "realloc-drops-tag": _faulty(
        "buggy-realloc-drops-tag", ReallocDropsTagModel,
        "realloc loses the capability tag (CheriBSD jemalloc class)"),
    "memcpy-bytewise": _faulty(
        "buggy-memcpy-bytewise", MemcpyBytewiseModel,
        "memcpy copies bytewise, clearing tags (S3.5 violation)"),
    "malloc-unpadded": _faulty(
        "buggy-malloc-unpadded", MallocUnpaddedModel,
        "allocator skips representability padding (S3.2 violation)"),
    "const-writable": _faulty(
        "buggy-const-writable", ConstWritableModel,
        "const objects keep write permission (S3.9 violation)"),
}
