"""Capability pretty-printing in the paper's Appendix-A format.

The appendix's ``capprint.h`` helper prints capabilities like::

    cerberus:  (@86, 0xffffe6dc [rwRW,0xffffe6dc-0xffffe6e4])
               (@empty, 0x7fffe6dc [?-?] (notag))
    hardware:  0x3fffdfff08 [rwRW,0x3fffdfff08-0x3fffdfff10]
               0xffdfff08 [rwRW,0xffdfff08-0xffdfff10] (invalid)

Abstract-machine output leads with the provenance and marks unspecified
ghost state with ``?`` fields and ``(notag)``; hardware output has no
provenance (it does not exist at runtime) and marks cleared tags with
``(invalid)``.
"""

from __future__ import annotations

from repro.capability.abstract import Capability
from repro.memory.provenance import Provenance


def format_capability(cap: Capability, prov: Provenance | None = None, *,
                      hardware: bool = False) -> str:
    """Render one capability; ``prov`` enables the Cerberus style.

    Hardware rendering has no provenance component (provenance does not
    exist at runtime), so passing both ``prov`` and ``hardware=True`` is
    a caller bug -- the provenance would be silently dropped -- and
    raises :class:`ValueError`.
    """
    if hardware:
        if prov is not None:
            raise ValueError(
                "format_capability: prov given with hardware=True; "
                "hardware capabilities carry no provenance")
        return _hw_body(cap)
    return f"({(prov or Provenance.empty()).describe()}, {_abs_body(cap)})"


def _perm_string(cap: Capability) -> str:
    return cap.perms.describe()


def _hw_body(cap: Capability) -> str:
    bounds = cap.decoded()
    text = (f"{cap.address:#x} [{_perm_string(cap)},"
            f"{bounds.base:#x}-{bounds.top:#x}]")
    if not cap.tag:
        text += " (invalid)"
    if cap.is_sealed:
        text += " (sealed)"
    return text

def _abs_body(cap: Capability) -> str:
    if cap.ghost.bounds_unspecified:
        bounds_text = "[?-?]"
    else:
        bounds = cap.decoded()
        bounds_text = (f"[{_perm_string(cap)},"
                       f"{bounds.base:#x}-{bounds.top:#x}]")
    text = f"{cap.address:#x} {bounds_text}"
    if cap.ghost.tag_unspecified or not cap.tag:
        text += " (notag)"
    if cap.is_sealed:
        text += " (sealed)"
    return text
