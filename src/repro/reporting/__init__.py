"""Reporting helpers: Appendix-A capability printing and result tables."""

from repro.reporting.capprint import format_capability

__all__ = ["format_capability"]
