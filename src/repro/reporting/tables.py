"""Rendered report tables: Table 1 and the S5 compliance comparison.

Shared by the benchmark harness (``benchmarks/``) and the command line
(``cheri-run --report ...``).
"""

from __future__ import annotations

from repro.testsuite.categories import CATEGORIES, Category, TOTAL_TESTS


def render_table1() -> str:
    """The paper's Table 1, regenerated from the assembled suite."""
    from repro.testsuite.suite import all_cases, table1_counts
    counts = table1_counts()
    lines = ["Tests  Description",
             "-----  -----------"]
    for category in Category:
        want, desc = CATEGORIES[category]
        have = counts[category]
        marker = "" if want == have else f"   !! paper says {want}"
        lines.append(f"{have:5d}  {desc}{marker}")
    lines.append("-----")
    lines.append(f"{len(all_cases())} distinct tests "
                 f"(paper: {TOTAL_TESTS}); "
                 f"{sum(counts.values())} category memberships")
    return "\n".join(lines)


def render_compliance(reports) -> str:
    """The S5-style compliance summary over a list of SuiteReports."""
    lines = ["Implementation                    pass  fail  no-claim",
             "--------------------------------  ----  ----  --------"]
    for rep in reports:
        lines.append(f"{rep.impl.name:32s}  {rep.passed:4d}  "
                     f"{rep.failed:4d}  {rep.unclaimed:8d}")
    lines.append("")
    lines.append("Divergences from the reference outcome (all licensed "
                 "by UB / optimisation):")
    reference = {r.case.name: r.outcome for r in reports[0].results}
    for rep in reports[1:]:
        diffs = [res.case.name for res in rep.results
                 if res.outcome.kind != reference[res.case.name].kind]
        lines.append(f"  {rep.impl.name:30s} {len(diffs):3d} tests with a "
                     f"different outcome kind")
    return "\n".join(lines) + "\n"


def render_fuzz_summary(report) -> str:
    """Summary of one differential-fuzzing run (``repro fuzz``).

    Mirrors the compliance table's shape: per-group divergence counts
    with their known-cause tags, findings called out explicitly, and
    each reported divergence backed by its minimized program.
    """
    lines = [f"Differential fuzz: seed {report.seed}, "
             f"{report.iterations} programs, "
             f"{report.elapsed:.1f}s",
             "",
             "Reference outcomes:"]
    for label in sorted(report.reference_counts):
        lines.append(f"  {report.reference_counts[label]:5d}  {label}")
    lines.append("")
    if not report.groups:
        lines.append("No divergences from the reference outcome.")
    else:
        lines.append(f"Divergence groups ({report.divergence_total} "
                     f"divergent runs total):")
        lines.append("  Implementation                   cause"
                     "                 ref -> observed")
        for group in report.sorted_groups():
            lines.append("  " + group.describe())
    findings = report.findings
    lines.append("")
    if findings:
        lines.append(f"!! {len(findings)} finding group(s) without a known "
                     f"cause:")
        for group in findings:
            lines.append(f"  {group.describe()}")
            div = group.example_divergence
            if div is not None and div.evidence is not None:
                lines.append(f"  reference explaining event: "
                             f"step {div.evidence.get('step', 0)} "
                             f"{div.evidence.get('kind', '')} "
                             f"{div.evidence.get('what', '')}")
            if group.minimized_source:
                lines.append("  minimized reproducer:")
                lines.extend("    " + line for line in
                             group.minimized_source.splitlines())
    else:
        lines.append("Zero unexplained divergences and zero interpreter "
                     "crashes: every divergence carries a known-cause tag.")
    if report.corpus_paths:
        lines.append("")
        lines.append(f"Corpus: wrote {len(report.corpus_paths)} minimized "
                     f"case(s):")
        lines.extend(f"  {path}" for path in report.corpus_paths)
    if report.trace_paths:
        lines.append("")
        lines.append(f"Traces: wrote {len(report.trace_paths)} reference "
                     f"trace(s):")
        lines.extend(f"  {path}" for path in report.trace_paths)
    return "\n".join(lines) + "\n"


def render_campaign_summary(report) -> str:
    """Summary of one guided-campaign invocation (``repro fuzz
    --guided``): window, corpus growth, coverage, and distinct bugs."""
    shard = f"{report.shard[0]}/{report.shard[1]}"
    lines = [f"Guided fuzz campaign: seed {report.seed}, shard {shard}, "
             f"window {report.start_index}..{report.next_index} "
             f"({report.processed} candidates, {report.elapsed:.1f}s)"]
    derived = ", ".join(f"{report.derived.get(k, 0)} {k}"
                        for k in ("fresh", "mutant"))
    lines.append(f"  candidates: {derived}"
                 + (f", {len(report.quarantined)} quarantined"
                    if report.quarantined else ""))
    lines.append(f"  corpus: {report.corpus_size} seed(s) "
                 f"(+{len(report.new_seeds)} new) at {report.corpus_dir}")
    lines.append(f"  coverage: {len(report.covered.ops)} core ops, "
                 f"{len(report.covered.ub)} UB kinds, "
                 f"{len(report.covered.events)} event signatures "
                 f"(+{report.new_keys} keys beyond the snapshot)")
    if report.reference_counts:
        counts = ", ".join(f"{report.reference_counts[k]} {k}"
                           for k in sorted(report.reference_counts))
        lines.append(f"  reference outcomes: {counts}")
    if report.findings:
        total = sum(len(f.witnesses) for f in report.findings)
        lines.append(f"!! {len(report.findings)} distinct bug(s) on "
                     f"record ({total} witness(es), "
                     f"{len(report.new_bugs)} new this run):")
        for record in report.findings:
            lines.append(f"  {record.digest}  signature="
                         f"{record.signature}  "
                         f"x{len(record.witnesses)} witness(es)")
    else:
        lines.append("  distinct bugs: none on record")
    return "\n".join(lines) + "\n"


def render_failures(reports) -> str:
    """Detail lines for any expectation failures (normally empty)."""
    lines = []
    for rep in reports:
        for res in rep.failures():
            lines.append(
                f"{rep.impl.name}: {res.case.name}: expected "
                f"{res.expected.describe()}, got {res.outcome.describe()}"
                f" [{res.outcome.detail}]")
    return "\n".join(lines)
