"""Suite assembly and Table 1 accounting."""

from __future__ import annotations

from functools import lru_cache

from repro.testsuite.case import TestCase
from repro.testsuite.categories import CATEGORIES, Category, TOTAL_TESTS


@lru_cache(maxsize=1)
def all_cases() -> tuple[TestCase, ...]:
    """The full 94-test suite, assembled from the program modules."""
    from repro.testsuite.programs import (
        alignment_allocator,
        const_init,
        equality_relational,
        functions,
        intptr,
        intrinsics_perms,
        optimization,
        paper_listings,
        pointers_arrays,
        provenance_temporal,
        stdlib_subobject,
        unforgeability_repr,
    )

    modules = (
        alignment_allocator, pointers_arrays, intptr, equality_relational,
        functions, intrinsics_perms, unforgeability_repr, const_init,
        provenance_temporal, optimization, stdlib_subobject, paper_listings,
    )
    cases: list[TestCase] = []
    seen: dict[str, str] = {}
    for module in modules:
        for case in module.CASES:
            if case.name in seen:
                raise ValueError(
                    f"duplicate test name {case.name!r} in module "
                    f"{module.__name__} (first defined in "
                    f"{seen[case.name]})")
            seen[case.name] = module.__name__
            cases.append(case)
    return tuple(cases)


def cases_by_category(category: Category) -> list[TestCase]:
    return [case for case in all_cases() if category in case.categories]


def table1_counts() -> dict[Category, int]:
    """Per-category test counts of the assembled suite (compare with
    ``CATEGORIES`` to validate against the paper's Table 1)."""
    counts = {category: 0 for category in Category}
    for case in all_cases():
        # Sorted so downstream report paths never depend on set
        # iteration order (PYTHONHASHSEED-stable output).
        for category in sorted(set(case.categories), key=lambda c: c.value):
            counts[category] += 1
    return counts


def table1_deficits() -> dict[Category, int]:
    """Paper count minus suite count per category (all zero when the
    suite matches Table 1 exactly)."""
    counts = table1_counts()
    return {category: CATEGORIES[category][0] - counts[category]
            for category in Category
            if CATEGORIES[category][0] != counts[category]}


def validate_suite() -> None:
    """Assert the suite matches the paper: 94 tests, Table 1 counts."""
    cases = all_cases()
    if len(cases) != TOTAL_TESTS:
        raise AssertionError(
            f"suite has {len(cases)} tests; the paper has {TOTAL_TESTS}")
    deficits = table1_deficits()
    if deficits:
        lines = ", ".join(f"{cat.value}: {diff:+d}"
                          for cat, diff in deficits.items())
        raise AssertionError(f"Table 1 count mismatches (paper - suite): "
                             f"{lines}")
