"""The CHERI C validation suite (S5, Table 1).

94 test programs, each tagged with one or more of the 34 semantic
categories of Table 1; the per-category test counts match the paper's
table exactly (the counts sum to more than 94 because tests belong to
multiple categories).  Each test carries its expected outcome on the
reference implementation (the executable semantics) and, where the paper
discusses one, the expected divergent outcome on hardware
implementations.
"""

from repro.testsuite.case import Expected, TestCase
from repro.testsuite.categories import CATEGORIES, Category
from repro.testsuite.suite import all_cases, cases_by_category, table1_counts
from repro.testsuite.compare import compare_implementations, run_suite

__all__ = [
    "CATEGORIES", "Category", "Expected", "TestCase", "all_cases",
    "cases_by_category", "compare_implementations", "run_suite",
    "table1_counts",
]
