"""Cross-implementation comparison (the S5 experiment).

``run_suite`` checks every test against one implementation;
``compare_implementations`` reproduces the S5.1-S5.3 compliance report:
each implementation's pass/fail/no-claim counts plus the list of
divergences with their causes.

Both fan out across worker processes when ``jobs > 1``: every case run
is independent (a fresh memory model per run) and results are stitched
back in input order, so a parallel report is bit-identical to the
serial one.  Compilation is shared through :mod:`repro.perf.cache`, so
the 94 programs are parsed/optimised once per distinct compile
configuration instead of once per implementation.

Robustness (docs/ROBUSTNESS.md): a per-run ``budget`` turns hangs and
allocation bombs into ``resource_exhausted`` verdicts, and the hardened
pool retries crashed workers -- a case whose worker dies twice lands in
the report as *quarantined* (``Outcome.quarantined``) rather than
aborting the comparison, so the report always carries one verdict per
(implementation, case) cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Outcome
from repro.impls.config import Implementation
from repro.memory.model import Mode
from repro.obs.metrics import Metrics
from repro.perf.pool import TaskFailure, parallel_map
from repro.testsuite.case import Expected, TestCase
from repro.testsuite.suite import all_cases


@dataclass
class CaseResult:
    case: TestCase
    outcome: Outcome
    expected: Expected | None      # None: the suite makes no claim here

    @property
    def passed(self) -> bool | None:
        if self.expected is None:
            return None
        if self.quarantined:
            # No run completed, so the suite's claim was never tested;
            # surfaced separately rather than counted as a failure.
            return None
        return self.expected.check(self.outcome)

    @property
    def quarantined(self) -> bool:
        return self.outcome.limit == "worker"


@dataclass
class SuiteReport:
    impl: Implementation
    results: list[CaseResult] = field(default_factory=list)
    #: Merged per-run metrics when the suite ran with ``with_metrics``;
    #: ``wall_seconds`` is total compute time across all case runs.
    metrics: Metrics | None = None

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed is True)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.passed is False)

    @property
    def unclaimed(self) -> int:
        return sum(1 for r in self.results
                   if r.passed is None and not r.quarantined)

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.results if r.quarantined)

    def failures(self) -> list[CaseResult]:
        return [r for r in self.results if r.passed is False]

    def summary_line(self) -> str:
        line = (f"{self.impl.name:32s} pass {self.passed:3d}  "
                f"fail {self.failed:3d}  no-claim {self.unclaimed:3d}")
        if self.quarantined:
            line += f"  quarantined {self.quarantined:3d}"
        return line


def _run_case(task) -> tuple[Outcome, Metrics | None]:
    """Worker body: one (implementation, case) run, optionally metered.

    Top-level so the worker pool can pickle it; the serial path calls
    it directly with the same tasks.
    """
    impl, case, with_metrics, use_cache, budget, evaluator = task
    bus = metrics = None
    if with_metrics:
        from repro.obs import EventBus
        bus = EventBus()
        metrics = Metrics().attach(bus).start()
    outcome = impl.run(case.source, bus=bus, use_cache=use_cache,
                       budget=budget, evaluator=evaluator)
    if metrics is not None:
        metrics.finish(steps=bus.step)
    return outcome, metrics


def _report_for(impl: Implementation, cases: tuple[TestCase, ...],
                runs: list, with_metrics: bool) -> SuiteReport:
    report = SuiteReport(impl, metrics=Metrics() if with_metrics else None)
    for case, run in zip(cases, runs):
        if isinstance(run, TaskFailure):
            outcome, metrics = Outcome.quarantined(run.error), None
        else:
            outcome, metrics = run
        expected = case.expected_for(
            impl.name,
            is_hardware=impl.mode is Mode.HARDWARE,
            opt_level=impl.opt_level)
        report.results.append(CaseResult(case, outcome, expected))
        if metrics is not None:
            report.metrics.merge(metrics)
    return report


def _default_task_timeout(budget, task_timeout):
    """A pool-level backstop over the per-run wall-clock budget: the
    worker should cut itself off at ``budget.deadline``, so a task that
    overruns severalfold is hung outside governed code."""
    if task_timeout is not None:
        return task_timeout
    if budget is not None and budget.deadline is not None:
        return budget.deadline * 4 + 1.0
    return None


def run_suite(impl: Implementation,
              cases: tuple[TestCase, ...] | None = None, *,
              jobs: int = 1,
              with_metrics: bool = False,
              use_cache: bool | None = None,
              budget=None,
              fault_plan=None,
              task_timeout: float | None = None,
              bus=None,
              evaluator: str | None = None) -> SuiteReport:
    """Run one implementation over ``cases`` (``None`` = the full
    suite; an explicitly empty selection yields an empty report).

    ``budget`` governs each case run (see :mod:`repro.robust`);
    ``fault_plan``/``task_timeout``/``bus`` drive the hardened pool
    (``fault_plan`` is test-only and ignored on the serial path).
    ``evaluator`` selects the execution strategy for every case run
    (``ast``/``core``/``None`` = process default); it travels inside
    each task so worker processes apply it regardless of their own
    default.
    """
    if cases is None:
        cases = all_cases()
    cases = tuple(cases)
    tasks = [(impl, case, with_metrics, use_cache, budget, evaluator)
             for case in cases]
    runs = parallel_map(_run_case, tasks, jobs=jobs,
                        task_timeout=_default_task_timeout(budget,
                                                           task_timeout),
                        fault_plan=fault_plan, bus=bus)
    return _report_for(impl, cases, runs, with_metrics)


def compare_implementations(
        impls: tuple[Implementation, ...],
        cases: tuple[TestCase, ...] | None = None, *,
        jobs: int = 1,
        with_metrics: bool = False,
        use_cache: bool | None = None,
        budget=None,
        fault_plan=None,
        task_timeout: float | None = None,
        bus=None,
        evaluator: str | None = None) -> list[SuiteReport]:
    """The S5 compliance comparison over every implementation.

    The (implementation, case) grid is flattened into one task list so
    a worker pool load-balances across the whole comparison rather than
    one suite at a time.  Robustness knobs as in :func:`run_suite`.
    """
    if cases is None:
        cases = all_cases()
    cases = tuple(cases)
    tasks = [(impl, case, with_metrics, use_cache, budget, evaluator)
             for impl in impls for case in cases]
    runs = parallel_map(_run_case, tasks, jobs=jobs,
                        task_timeout=_default_task_timeout(budget,
                                                           task_timeout),
                        fault_plan=fault_plan, bus=bus)
    return [_report_for(impl, cases,
                        runs[i * len(cases):(i + 1) * len(cases)],
                        with_metrics)
            for i, impl in enumerate(impls)]
