"""Cross-implementation comparison (the S5 experiment).

``run_suite`` checks every test against one implementation;
``compare_implementations`` reproduces the S5.1-S5.3 compliance report:
each implementation's pass/fail/no-claim counts plus the list of
divergences with their causes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Outcome
from repro.impls.config import Implementation
from repro.memory.model import Mode
from repro.testsuite.case import Expected, TestCase
from repro.testsuite.suite import all_cases


@dataclass
class CaseResult:
    case: TestCase
    outcome: Outcome
    expected: Expected | None      # None: the suite makes no claim here

    @property
    def passed(self) -> bool | None:
        if self.expected is None:
            return None
        return self.expected.check(self.outcome)


@dataclass
class SuiteReport:
    impl: Implementation
    results: list[CaseResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed is True)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.passed is False)

    @property
    def unclaimed(self) -> int:
        return sum(1 for r in self.results if r.passed is None)

    def failures(self) -> list[CaseResult]:
        return [r for r in self.results if r.passed is False]

    def summary_line(self) -> str:
        return (f"{self.impl.name:32s} pass {self.passed:3d}  "
                f"fail {self.failed:3d}  no-claim {self.unclaimed:3d}")


def run_suite(impl: Implementation,
              cases: tuple[TestCase, ...] | None = None) -> SuiteReport:
    report = SuiteReport(impl)
    for case in cases or all_cases():
        outcome = impl.run(case.source)
        expected = case.expected_for(
            impl.name,
            is_hardware=impl.mode is Mode.HARDWARE,
            opt_level=impl.opt_level)
        report.results.append(CaseResult(case, outcome, expected))
    return report


def compare_implementations(
        impls: tuple[Implementation, ...],
        cases: tuple[TestCase, ...] | None = None) -> list[SuiteReport]:
    return [run_suite(impl, cases) for impl in impls]
