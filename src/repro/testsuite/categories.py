"""The 34 semantic categories of Table 1, with the paper's test counts."""

from __future__ import annotations

import enum


class Category(enum.Enum):
    """One row of Table 1."""

    ALIGNMENT = "alignment"
    ALLOCATOR = "allocator"
    ARRAY_ADDRESSES = "array-addresses"
    POINTER_OFFSETTING = "pointer-offsetting"
    CONSTANT_ASSIGNMENT = "constant-assignment"
    CALLING_CONVENTION = "calling-convention"
    CASTS = "casts"
    CONST = "const"
    EQUALITY = "equality"
    FUNCTION_POINTERS = "function-pointers"
    GLOBAL_VS_LOCAL = "global-vs-local"
    INITIALIZATION = "initialization"
    INTPTR_PROPERTIES = "intptr-properties"
    INTPTR_ARITHMETIC = "intptr-arithmetic"
    INTPTR_BITWISE = "intptr-bitwise"
    INTRINSICS = "intrinsics"
    UNFORGEABILITY = "unforgeability"
    MORELLO_ENCODING = "morello-encoding"
    NULL = "null"
    ONE_PAST = "one-past"
    OOB_ACCESS = "oob-access"
    OPTIMIZATION_EFFECTS = "optimization-effects"
    PERMISSIONS = "permissions"
    PROVENANCE = "provenance"
    PTRADDR = "ptraddr"
    POINTER_ARITHMETIC = "pointer-arithmetic"
    PTR_INT_CONVERSION = "ptr-int-conversion"
    RELATIONAL = "relational"
    REPRESENTABILITY = "representability"
    REPRESENTATION_ACCESS = "representation-access"
    TEMPORAL = "temporal"
    SIGNEDNESS = "signedness"
    STDLIB = "stdlib"
    SUBOBJECT = "subobject"


#: Table 1: category -> (paper's test count, paper's description).
CATEGORIES: dict[Category, tuple[int, str]] = {
    Category.ALIGNMENT: (10, "Checking capability alignment in the memory."),
    Category.ALLOCATOR: (10, "Memory allocator interface (locals, globals, "
                             "and heap)."),
    Category.ARRAY_ADDRESSES: (2, "Capabilities produced by taking addresses "
                                  "of arrays and their elements."),
    Category.POINTER_OFFSETTING: (3, "Operations offseting pointers as in "
                                     "taking an address of array element at "
                                     "an index."),
    Category.CONSTANT_ASSIGNMENT: (2, "Assigning constants and values of "
                                      "capability-carrying types to "
                                      "capability-typed variables."),
    Category.CALLING_CONVENTION: (1, "Issues related to calling convention: "
                                     "passing arguments, variable argument "
                                     "functions, etc."),
    Category.CASTS: (5, "Implicit/explicit casts between capability-carrying "
                        "types."),
    Category.CONST: (5, "C const modifier and its effects on capabilities."),
    Category.EQUALITY: (10, "Equality between capability-carrying types."),
    Category.FUNCTION_POINTERS: (11, "Pointers to functions."),
    Category.GLOBAL_VS_LOCAL: (6, "Pointers to global vs. local variables."),
    Category.INITIALIZATION: (4, "Initialization of variables carrying "
                                 "capabilities."),
    Category.INTPTR_PROPERTIES: (19, "Properties and definition of "
                                     "(u)intptr_t types."),
    Category.INTPTR_ARITHMETIC: (9, "Arithmetic operations on (u)intptr_t "
                                    "values."),
    Category.INTPTR_BITWISE: (3, "Bitwise operations on (u)intptr_t values."),
    Category.INTRINSICS: (16, "Semantics of CHERI C intrinsic functions "
                              "(e.g, permission manipulation)."),
    Category.UNFORGEABILITY: (15, "Unforgeability enforcement for "
                                  "capabilities."),
    Category.MORELLO_ENCODING: (6, "Capabilities encoding for Arm Morello "
                                   "architecture."),
    Category.NULL: (6, "null pointers and NULL constant as capabilities."),
    Category.ONE_PAST: (1, "ISO-legal pointers one-past an object's "
                           "footprint and their bounds."),
    Category.OOB_ACCESS: (5, "Out-of-bounds memory-access handling."),
    Category.OPTIMIZATION_EFFECTS: (10, "Effects of compiler optimisations."),
    Category.PERMISSIONS: (5, "Capability permissions: setting and "
                              "enforcement."),
    Category.PROVENANCE: (7, "pointer provenance tracking per [18]."),
    Category.PTRADDR: (2, "New ptraddr_t type definition and usage."),
    Category.POINTER_ARITHMETIC: (2, "Implementation of pointer arithmetic "
                                     "on capabilities."),
    Category.PTR_INT_CONVERSION: (9, "Conversion between pointer and integer "
                                     "types."),
    Category.RELATIONAL: (4, "Relational comparison operators (e.g. <,>,<= "
                             "and >=) for capabilities."),
    Category.REPRESENTABILITY: (6, "Issues related to potential "
                                   "non-representability of some "
                                   "combinations of capability fields."),
    Category.REPRESENTATION_ACCESS: (9, "Tests related to accessing "
                                        "capabilities in-memory "
                                        "representation."),
    Category.TEMPORAL: (5, "Accessing memory via capabilities after the "
                           "region has been deallocated."),
    Category.SIGNEDNESS: (5, "Handling of (un)signed integer types in "
                             "casts, accessing capability fields, and "
                             "intrinsics."),
    Category.STDLIB: (6, "Standard C library functions handling of "
                         "capabilities."),
    Category.SUBOBJECT: (3, "Sub-objects bound enforcement via "
                            "capabilities."),
}

#: The paper's total number of distinct tests.
TOTAL_TESTS = 94

assert sum(count for count, _ in CATEGORIES.values()) == 222
