"""Test-case representation for the validation suite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Outcome, OutcomeKind, TrapKind, UB
from repro.testsuite.categories import Category


@dataclass(frozen=True)
class Expected:
    """A checkable expectation about an :class:`~repro.errors.Outcome`."""

    kind: OutcomeKind
    exit_status: int | None = None
    ub: UB | None = None
    trap: TrapKind | None = None
    stdout_contains: tuple[str, ...] = ()

    def check(self, outcome: Outcome) -> bool:
        if outcome.kind is not self.kind:
            return False
        if self.exit_status is not None and \
                outcome.exit_status != self.exit_status:
            return False
        if self.ub is not None and outcome.ub is not self.ub:
            return False
        if self.trap is not None and outcome.trap is not self.trap:
            return False
        return all(text in outcome.stdout for text in self.stdout_contains)

    def describe(self) -> str:
        if self.kind is OutcomeKind.EXIT:
            status = "?" if self.exit_status is None else self.exit_status
            return f"exit {status}"
        if self.kind is OutcomeKind.UNDEFINED:
            return f"UB {self.ub or 'any'}"
        if self.kind is OutcomeKind.TRAP:
            return f"trap {self.trap or 'any'}"
        return self.kind.value


def exits(status: int = 0, *contains: str) -> Expected:
    return Expected(OutcomeKind.EXIT, exit_status=status,
                    stdout_contains=tuple(contains))


def undefined(ub: UB | None = None, *contains: str) -> Expected:
    return Expected(OutcomeKind.UNDEFINED, ub=ub,
                    stdout_contains=tuple(contains))


def traps(trap: TrapKind | None = None) -> Expected:
    return Expected(OutcomeKind.TRAP, trap=trap)


def aborts() -> Expected:
    return Expected(OutcomeKind.ABORT)


@dataclass(frozen=True)
class TestCase:
    """One validation-suite program.

    ``expect`` is the required outcome on the reference implementation
    (the executable semantics).  ``hardware`` is the required outcome on
    unoptimised hardware implementations when it differs (the
    optimisation-sensitive divergences get per-implementation
    ``overrides``).
    """

    name: str
    categories: tuple[Category, ...]
    source: str
    expect: Expected
    hardware: Expected | None = None
    overrides: dict[str, Expected] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.categories:
            raise ValueError(f"test {self.name} has no categories")

    def expected_for(self, impl_name: str, *,
                     is_hardware: bool, opt_level: int) -> Expected | None:
        """The expectation applicable to one implementation, or ``None``
        when the case makes no claim about it.

        Policy: the reference expectation always applies to the abstract
        machine.  On hardware, an explicit ``hardware`` expectation
        applies at -O0; a plain-exit reference expectation (a program
        with no UB) applies to every hardware implementation; everything
        else makes no claim unless an ``overrides`` entry names the
        implementation -- UB programs have *no* required hardware
        behaviour, which is the whole point of S3.
        """
        if impl_name in self.overrides:
            return self.overrides[impl_name]
        if not is_hardware:
            return self.expect
        if self.hardware is not None:
            return self.hardware if opt_level == 0 else None
        from repro.errors import OutcomeKind as OK
        if self.expect.kind in (OK.EXIT, OK.ABORT):
            # Output format differs between the abstract machine and
            # hardware (provenance is not printed at runtime), so only
            # the outcome kind/status carries over.
            return Expected(self.expect.kind,
                            exit_status=self.expect.exit_status)
        return None
