"""Suite programs: PNVI-ae-udi provenance (S2.3/S3.11), temporal safety
(use after free / scope exit), and null capabilities."""

from repro.errors import UB
from repro.testsuite.case import TestCase, exits, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="prov-unexposed-guess",
        categories=(C.PROVENANCE, C.PTR_INT_CONVERSION, C.UNFORGEABILITY,
                    C.NULL),
        description="an integer matching an unexposed allocation's "
                    "address gets empty provenance AND no tag: both "
                    "layers reject the access (S3.11: complementary)",
        source="""
#include <stdint.h>
int main(void) {
  int secret = 99;
  /* No cast of &secret anywhere: the allocation stays unexposed.   */
  int probe;
  uintptr_t guess = (uintptr_t)&probe;  /* expose only probe */
  /* Build an address by pure integer arithmetic. */
  ptraddr_t addr = (ptraddr_t)guess - 16;
  int *p = (int*)(uintptr_t)addr;
  return *p;
}
""",
        expect=undefined(UB.CHERI_INVALID_CAP),
    ),
    TestCase(
        name="prov-exposed-recovers-provenance",
        categories=(C.PROVENANCE, C.PTR_INT_CONVERSION),
        description="PNVI-ae: after a pointer is cast to ptraddr_t the "
                    "allocation is exposed, and an integer-built pointer "
                    "gets its provenance (the capability tag is still "
                    "the missing authority)",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 4;
  ptraddr_t a = (ptraddr_t)&x;        /* exposes x */
  int *p = (int*)(uintptr_t)a;        /* provenance: x; tag: none */
  assert(p == &x);
  assert(!cheri_tag_get(p));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="prov-diff-same-object-only",
        categories=(C.PROVENANCE, C.RELATIONAL),
        description="pointer subtraction requires matching provenance "
                    "(ISO 6.5.6p9); capabilities alone cannot check this "
                    "(S3.11 check 2)",
        source="""
int main(void) {
  int a[4];
  int b[4];
  int *p = &a[3];
  int *q = &b[0];
  return (int)(p - q);
}
""",
        expect=undefined(UB.PTR_DIFF_DIFFERENT_PROVENANCE),
    ),
    TestCase(
        name="prov-carried-through-intptr",
        categories=(C.PROVENANCE, C.INTPTR_PROPERTIES),
        description="provenance flows through (u)intptr_t casts and "
                    "memory: a pointer stored via uintptr_t and reloaded "
                    "still accesses its allocation",
        source="""
#include <stdint.h>
#include <stdlib.h>
#include <assert.h>
int main(void) {
  int *heap = malloc(sizeof(int));
  *heap = 21;
  uintptr_t slot = (uintptr_t)heap;
  uintptr_t *box = malloc(sizeof(uintptr_t));
  *box = slot;                    /* store the capability as integer */
  int *back = (int*)*box;         /* reload and convert back */
  assert(*back == 21);
  *back += 21;
  assert(*heap == 42);
  free(heap);
  free(box);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="temporal-use-after-free",
        categories=(C.TEMPORAL, C.ALLOCATOR),
        description="S3.11 check 3: liveness is a provenance-level "
                    "check; without revocation the hardware capability "
                    "still works after free",
        source="""
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 5;
  free(p);
  return *p;     /* UB; plain CHERI hardware does not catch this */
}
""",
        expect=undefined(UB.ACCESS_DEAD_ALLOCATION),
        hardware=exits(5),
    ),
    TestCase(
        name="temporal-write-after-free",
        categories=(C.TEMPORAL,),
        description="writes through dangling heap pointers are UB "
                    "(undetected by non-revoking hardware)",
        source="""
#include <stdlib.h>
int main(void) {
  char *p = malloc(8);
  free(p);
  p[0] = 1;
  return 0;
}
""",
        expect=undefined(UB.ACCESS_DEAD_ALLOCATION),
        hardware=exits(0),
    ),
    TestCase(
        name="temporal-double-free",
        categories=(C.TEMPORAL,),
        description="double free is UB at the abstract machine",
        source="""
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  free(p);
  free(p);
  return 0;
}
""",
        expect=undefined(UB.DOUBLE_FREE),
        hardware=exits(0),
    ),
    TestCase(
        name="temporal-escaped-stack-pointer",
        categories=(C.TEMPORAL, C.GLOBAL_VS_LOCAL, C.FUNCTION_POINTERS),
        description="a stack pointer escaping its frame is dead on "
                    "return: use is UB; hardware may read recycled stack",
        source="""
int *leak;
void f(void) {
  int local = 123;
  leak = &local;
}
int main(void) {
  void (*pf)(void) = f;   /* call through a function pointer */
  pf();
  return *leak;
}
""",
        expect=undefined(UB.ACCESS_DEAD_ALLOCATION),
    ),
]
