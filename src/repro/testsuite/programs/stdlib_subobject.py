"""Suite programs: standard-library capability handling and sub-object
bounds (S3.8)."""

from repro.testsuite.case import TestCase, exits, traps
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="stdlib-memmove-array-of-pointers",
        categories=(C.STDLIB,),
        description="memmove/memcpy of pointer arrays preserves every "
                    "capability (S3.5)",
        source="""
#include <string.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a = 1, b = 2, c = 3;
  int *src[3] = { &a, &b, &c };
  int *dst[3];
  memmove(dst, src, sizeof(src));
  for (int i = 0; i < 3; i++) assert(cheri_tag_get(dst[i]));
  assert(*dst[0] + *dst[1] + *dst[2] == 6);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="stdlib-memset-clears-tags",
        categories=(C.STDLIB, C.UNFORGEABILITY, C.INITIALIZATION),
        description="memset over pointer storage is a non-capability "
                    "write: reuse of a zeroed struct must not conjure "
                    "capabilities (S3.5: memzero over a malloc'd region "
                    "must be permitted)",
        source="""
#include <string.h>
#include <stdlib.h>
#include <assert.h>
struct node { struct node *next; int v; };
int main(void) {
  struct node *n = malloc(sizeof(struct node));
  n->next = n;
  n->v = 5;
  memset(n, 0, sizeof(struct node));   /* allowed */
  assert(n->v == 0);
  struct node *reloaded = n->next;
  assert(reloaded == 0);
  free(n);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="stdlib-realloc-moves-capabilities",
        categories=(C.STDLIB, C.ALLOCATOR),
        description="realloc returns a fresh capability for the new "
                    "region; the old one is dead",
        source="""
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int *p = malloc(2 * sizeof(int));
  p[0] = 10; p[1] = 20;
  int *q = realloc(p, 8 * sizeof(int));
  assert(cheri_tag_get(q));
  assert(cheri_length_get(q) >= 8 * sizeof(int));
  assert(q[0] == 10 && q[1] == 20);   /* contents copied */
  q[7] = 70;
  free(q);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="subobject-container-of",
        categories=(C.SUBOBJECT,),
        description="S3.8: default CHERI C does not narrow member "
                    "capabilities, so offsetof-based container-of works",
        source="""
#include <stddef.h>
#include <stdint.h>
#include <assert.h>
struct item { int id; int payload; };
struct item box = { 7, 42 };
int main(void) {
  int *member = &box.payload;
  /* container_of: step back from the member to the struct. */
  struct item *it = (struct item *)
      (void *)((char *)member - offsetof(struct item, payload));
  assert(it->id == 7);
  assert(it->payload == 42);
  return 0;
}
""",
        expect=exits(0),
        overrides={
            # With sub-object bounds enforcement the member capability
            # is narrowed and stepping outside it faults.
            "clang-morello-O3-subobject-safe": traps(),
        },
    ),
]
