"""Suite programs: the remaining S3 worked examples as suite cases.

(The S3.1 and S3.3/S3.5 listings appear in the optimisation and
representation modules; these are the listings not covered there.)
"""

from repro.errors import UB
from repro.testsuite.case import TestCase, exits, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="paper-union-type-punning",
        categories=(C.INTPTR_PROPERTIES, C.CASTS),
        description="the S3.4 listing: pointer/(u)intptr_t punning "
                    "through a union works because the representations "
                    "are identical",
        source="""
#include <stdint.h>
#include <assert.h>
union ptr {
  int *ptr;
  uintptr_t iptr;
};
int main(void) {
  int arr[] = {42,43};
  union ptr x;
  x.ptr = arr;
  x.iptr += sizeof(int);
  assert (*x.ptr == 43);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="paper-derivation-left-operand",
        categories=(C.INTPTR_PROPERTIES, C.EQUALITY,
                    C.SIGNEDNESS),
        description="the S3.7 listing: a+b derives from the left "
                    "argument, so addition is non-commutative for "
                    "metadata while staying commutative for ==",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x=0, y=0;
  intptr_t a=(intptr_t)&x;
  intptr_t b=(intptr_t)&y;
  intptr_t c0 = a + b;
  intptr_t c1 = b + a;
  assert(c0 == c1);          /* == stays commutative (address only) */
  /* The derivation source is the left operand; a converted plain
     integer never supplies the capability (S3.7): */
  intptr_t d0 = a + 4;                 /* derives from a */
  intptr_t d1 = (intptr_t)4 + a;       /* left is converted: from a */
  assert(cheri_tag_get(d0));
  assert(cheri_tag_get(d1));
  assert(cheri_base_get(d0) == cheri_base_get(a));
  assert(cheri_base_get(d1) == cheri_base_get(a));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="paper-intptr-array-shift",
        categories=(C.INTPTR_ARITHMETIC, C.PTR_INT_CONVERSION),
        description="the S3.7 array_shift listing: size_t * n + ip "
                    "derives from ip (the non-converted operand), so the "
                    "result is dereferenceable",
        source="""
#include <stdint.h>
int* array_shift(int *x, int n) {
  intptr_t ip = (intptr_t)x;
  intptr_t ip1 = sizeof(int)*n + ip;
  int *p = (int*)ip1;
  return p;
}
int main(void) {
  int a[5];
  a[4] = 44;
  int *p = array_shift(a, 4);
  return *p - 44;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="paper-ghost-field-queries",
        categories=(C.REPRESENTATION_ACCESS, C.INTRINSICS,
                    C.UNFORGEABILITY),
        description="the S3.5 scenarios listing: after a representation "
                    "write, the address query stays defined "
                    "(implementation-defined) while memory access is UB",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 0;
  int *px = &x;
  size_t perms0 = cheri_perms_get(px);
  unsigned char *p = (unsigned char *)&px;
  p[0] = p[0];
  int addr = (int)(ptraddr_t)px;     /* implementation-defined value */
  size_t perms = cheri_perms_get(px);
  assert(perms == perms0);           /* perms represented exactly */
  (void)addr;
  return (*px);                      /* the access is the UB */
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
    ),
]
