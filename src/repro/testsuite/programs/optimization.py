"""Suite programs: effects of compiler optimisations (S3.1-S3.5).

These tests have *different required outcomes per implementation*: the
abstract machine flags UB, unoptimised hardware traps, and optimised
hardware may silently succeed -- which the UB-based semantics licenses.
"""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="opt-doomed-write-eliminated",
        categories=(C.OPTIMIZATION_EFFECTS,),
        description="the S3.1 program: optimisation can remove the "
                    "doomed OOB write entirely, so no trap fires",
        source="""
void f(int *p, int i) {
  int *q = p + i;
  *q = 42;
}
int main(void) {
  int x=0, y=0;
  f(&x, 1);
  return y;
}
""",
        expect=undefined(UB.CHERI_BOUNDS_VIOLATION),
        hardware=traps(TrapKind.BOUNDS_VIOLATION),
        overrides={
            "clang-morello-O3": exits(0),
            "clang-riscv-O3": exits(0),
            "gcc-morello-O3": exits(0),
        },
    ),
    TestCase(
        name="opt-inbounds-assumption",
        categories=(C.OPTIMIZATION_EFFECTS,),
        description="the S3.1 g() example: the compiler assumes a[i] is "
                    "in bounds of a[1] and rewrites it to a[0], removing "
                    "the capability exception",
        source="""
void h(char *a) { a[0] = 7; }
char g(int i) {
  char a[1];
  h(a);
  return a[i];
}
int main(void) {
  return g(1);
}
""",
        expect=undefined(UB.CHERI_BOUNDS_VIOLATION),
        hardware=traps(TrapKind.BOUNDS_VIOLATION),
        overrides={
            "clang-morello-O3": exits(7),
            "clang-riscv-O3": exits(7),
            "gcc-morello-O3": exits(7),
        },
    ),
    TestCase(
        name="opt-transient-collapse",
        categories=(C.OPTIMIZATION_EFFECTS, C.REPRESENTABILITY,
                    C.INTPTR_ARITHMETIC),
        description="optimisation may collapse transient excursions "
                    "into non-representability (S3.3 option (c): allowed "
                    "to eliminate, not to introduce)",
        source="""
#include <stdint.h>
int main(void) {
  int x[2];
  x[1] = 3;
  uintptr_t i = (uintptr_t)&x[0];
  uintptr_t j = i + 100001 * sizeof(int);
  uintptr_t k = j - 100000 * sizeof(int);
  int *q = (int*)k;
  return *q;
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
        hardware=traps(TrapKind.TAG_VIOLATION),
        overrides={
            "clang-morello-O3": exits(3),
            "clang-riscv-O3": exits(3),
            "gcc-morello-O3": exits(3),
        },
    ),
    TestCase(
        name="opt-never-introduces-nonrepresentability",
        categories=(C.OPTIMIZATION_EFFECTS,
                    C.INTPTR_ARITHMETIC, C.INTPTR_PROPERTIES),
        description="S3.2/S3.3: p + (A - B) must not be compiled as "
                    "(p + A) - B; already-reduced arithmetic stays "
                    "representable at every level",
        source="""
#include <stdint.h>
int main(void) {
  int x[2];
  x[1] = 9;
  uintptr_t i = (uintptr_t)&x[0];
  /* The source expression folds to + sizeof(int): no excursion. */
  uintptr_t k = i + (100001 * sizeof(int) - 100000 * sizeof(int));
  int *q = (int*)k;
  return *q;
}
""",
        expect=exits(9),
    ),
]
