"""Suite programs: function pointers (sentries) and calling convention."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="funptr-basic-call",
        categories=(C.FUNCTION_POINTERS,),
        description="declaring, assigning, and calling through a "
                    "function pointer",
        source="""
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
int main(void) {
  int (*f)(int, int) = add;
  if (f(2, 3) != 5) return 1;
  f = sub;
  if (f(5, 3) != 2) return 2;
  if (apply(add, 20, 22) != 42) return 3;
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="funptr-sentry-sealed",
        categories=(C.FUNCTION_POINTERS, C.INTRINSICS, C.MORELLO_ENCODING),
        description="CHERI C function pointers are sealed entry "
                    "capabilities (sentries) with execute permission",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int f(void) { return 1; }
int main(void) {
  int (*p)(void) = f;
  assert(cheri_tag_get(p));
  assert(cheri_is_sealed(p));
  assert(cheri_is_sentry(p));
  assert(cheri_type_get(p) != 0);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="funptr-equality",
        categories=(C.FUNCTION_POINTERS, C.EQUALITY),
        description="function pointer equality is address equality",
        source="""
#include <assert.h>
int f(void) { return 1; }
int g(void) { return 2; }
int main(void) {
  int (*pf)(void) = f;
  int (*pg)(void) = g;
  assert(pf == f);
  assert(pf != pg);
  assert(&f == pf);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="funptr-null-call",
        categories=(C.FUNCTION_POINTERS, C.NULL),
        description="calling a null function pointer is UB (hardware: "
                    "tag fault on branch)",
        source="""
int main(void) {
  int (*f)(void) = 0;
  return f();
}
""",
        expect=undefined(UB.CHERI_INVALID_CAP),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="funptr-through-intptr",
        categories=(C.FUNCTION_POINTERS, C.PTR_INT_CONVERSION),
        description="function pointers survive (u)intptr_t round trips "
                    "(their capability, including the seal, is carried)",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int f(int x) { return x * 2; }
int main(void) {
  uintptr_t u = (uintptr_t)&f;
  int (*p)(int) = (int(*)(int))u;
  assert(cheri_is_sentry(p));
  return p(21) - 42;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="funptr-data-access-denied",
        categories=(C.FUNCTION_POINTERS, C.PERMISSIONS, C.UNFORGEABILITY),
        description="a function pointer cannot be used for data access: "
                    "sentries are unusable for anything but branching",
        source="""
int f(void) { return 1; }
int main(void) {
  int (*p)(void) = f;
  int *data = (int*)p;
  return *data;
}
""",
        expect=undefined(UB.CHERI_INVALID_CAP),
        hardware=traps(TrapKind.SEAL_VIOLATION),
    ),
    TestCase(
        name="funptr-array-dispatch",
        categories=(C.FUNCTION_POINTERS,),
        description="arrays of function pointers: capabilities stored "
                    "and reloaded from memory keep working",
        source="""
int zero(void) { return 0; }
int one(void)  { return 1; }
int two(void)  { return 2; }
int main(void) {
  int (*table[3])(void) = { zero, one, two };
  int total = 0;
  for (int i = 0; i < 3; i++) total += table[i]();
  return total - 3;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="varargs-pass-capability",
        categories=(C.CALLING_CONVENTION, C.FUNCTION_POINTERS),
        description="capabilities pass intact through variadic calls "
                    "(printf %p receives the full capability)",
        source="""
#include <stdio.h>
#include <assert.h>
int main(void) {
  int x = 7;
  int *p = &x;
  printf("%d %p\\n", x, (void*)p);
  printf("many: %d %d %d %d %d\\n", 1, 2, 3, 4, 5);
  return 0;
}
""",
        expect=exits(0, "7 (", "many: 1 2 3 4 5"),
    ),
]
