"""Suite programs: CHERI intrinsics (S4.5), permissions (S3.9/S2.1),
Morello encoding properties, and representability (S3.2/S3.10)."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="intr-field-getters",
        categories=(C.INTRINSICS,),
        description="address/base/length/offset getters agree with each "
                    "other",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  long a[4];
  long *p = &a[2];
  assert(cheri_address_get(p) == cheri_base_get(p) + 2 * sizeof(long));
  assert(cheri_offset_get(p) == 2 * sizeof(long));
  assert(cheri_length_get(p) == 4 * sizeof(long));
  assert(cheri_tag_get(p));
  assert(!cheri_is_sealed(p));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intr-address-set",
        categories=(C.INTRINSICS, C.PTRADDR),
        description="cheri_address_set moves only the address; in-bounds "
                    "results stay dereferenceable",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[4];
  a[3] = 9;
  int *p = a;
  ptraddr_t target = cheri_address_get(p) + 3 * sizeof(int);
  int *q = cheri_address_set(p, target);
  assert(cheri_tag_get(q));
  assert(cheri_base_get(q) == cheri_base_get(p));
  return *q - 9;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intr-bounds-set-monotonic",
        categories=(C.INTRINSICS, C.UNFORGEABILITY, C.SUBOBJECT),
        description="bounds can be narrowed but never widened: a widening "
                    "request detags (least privilege, S2.1)",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  char buf[64];
  char *narrow = cheri_bounds_set(buf, 16);
  assert(cheri_tag_get(narrow));
  assert(cheri_length_get(narrow) == 16);
  char *wide = cheri_bounds_set(narrow, 64);   /* widening: detag */
  assert(!cheri_tag_get(wide));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intr-narrowed-bounds-enforced",
        categories=(C.INTRINSICS, C.OOB_ACCESS, C.SUBOBJECT),
        description="access through intrinsically narrowed bounds is "
                    "checked against the narrowed region",
        source="""
#include <cheriintrin.h>
int main(void) {
  char buf[64];
  buf[20] = 1;
  char *narrow = cheri_bounds_set(buf, 16);
  return narrow[20];
}
""",
        expect=undefined(UB.CHERI_BOUNDS_VIOLATION),
        hardware=traps(TrapKind.BOUNDS_VIOLATION),
    ),
    TestCase(
        name="intr-perms-and-enforced",
        categories=(C.INTRINSICS, C.PERMISSIONS),
        description="dropping the store permission makes writes UB while "
                    "reads keep working",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 5;
  int *p = &x;
  size_t perms = cheri_perms_get(p);
  int *ro = cheri_perms_and(p, perms & ~(size_t)CHERI_PERM_STORE);
  assert(*ro == 5);       /* load still allowed */
  *ro = 6;                /* store is not */
  return 0;
}
""",
        expect=undefined(UB.CHERI_INSUFFICIENT_PERMISSIONS),
        hardware=traps(TrapKind.PERMISSION_VIOLATION),
    ),
    TestCase(
        name="perms-monotonic-no-regain",
        categories=(C.PERMISSIONS, C.UNFORGEABILITY, C.INTRINSICS),
        description="dropped permissions cannot be reinstated: "
                    "perms_and with a larger mask does not add bits",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  int *p = &x;
  size_t all = cheri_perms_get(p);
  int *less = cheri_perms_and(p, all & ~(size_t)CHERI_PERM_LOAD);
  int *back = cheri_perms_and(less, all);     /* try to regain */
  assert((cheri_perms_get(back) & CHERI_PERM_LOAD) == 0);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intr-bounds-set-exact",
        categories=(C.INTRINSICS, C.REPRESENTABILITY, C.MORELLO_ENCODING),
        description="bounds_set_exact detags when the requested bounds "
                    "are not exactly representable; bounds_set rounds",
        source="""
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  /* A large region: byte-exact sub-bounds are not representable. */
  char *big = malloc(1 << 20);
  char *rounded = cheri_bounds_set(big, (1 << 19) + 3);
  assert(cheri_tag_get(rounded));
  assert(cheri_length_get(rounded) >= (1 << 19) + 3);
  char *exact = cheri_bounds_set_exact(big, (1 << 19) + 3);
  assert(!cheri_tag_get(exact));
  /* Small bounds are always byte-exact. */
  char *small = cheri_bounds_set_exact(big, 100);
  assert(cheri_tag_get(small));
  assert(cheri_length_get(small) == 100);
  free(big);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intr-representable-queries",
        categories=(C.INTRINSICS, C.REPRESENTABILITY, C.MORELLO_ENCODING,
                    C.ALIGNMENT),
        description="representable_length and alignment_mask describe "
                    "the Morello compression: small lengths exact, large "
                    "lengths rounded with stronger alignment",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  /* Byte-exact for small objects... */
  assert(cheri_representable_length(1) == 1);
  assert(cheri_representable_length(100) == 100);
  assert(cheri_representable_alignment_mask(100) == (size_t)-1);
  /* ...rounded for large ones. */
  size_t big = (1 << 22) + 1;
  assert(cheri_representable_length(big) > big);
  assert(cheri_representable_alignment_mask(big) != (size_t)-1);
  /* The rounded length is itself representable (idempotent). */
  size_t r = cheri_representable_length(big);
  assert(cheri_representable_length(r) == r);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intr-tag-clear-then-deref",
        categories=(C.INTRINSICS, C.UNFORGEABILITY),
        description="an explicitly detagged capability cannot be used "
                    "for access (UB_CHERI_InvalidCap)",
        source="""
#include <cheriintrin.h>
int main(void) {
  int x = 3;
  int *p = cheri_tag_clear(&x);
  return *p;
}
""",
        expect=undefined(UB.CHERI_INVALID_CAP),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="intr-signed-args",
        categories=(C.INTRINSICS, C.SIGNEDNESS, C.INTPTR_PROPERTIES),
        description="intrinsics accept both signed and unsigned "
                    "capability-carrying arguments; field values are "
                    "unsigned",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  intptr_t ip = (intptr_t)&x;     /* signed view */
  uintptr_t up = (uintptr_t)&x;   /* unsigned view */
  assert(cheri_address_get(ip) == cheri_address_get(up));
  assert(cheri_length_get(ip) == sizeof(int));
  assert((ptraddr_t)cheri_base_get(ip) <= (ptraddr_t)cheri_address_get(ip));
  assert(cheri_tag_get(ip) && cheri_tag_get(up));
  return 0;
}
""",
        expect=exits(0),
    ),
]
