"""Suite programs: (u)intptr_t properties, arithmetic, bitwise ops,
pointer/integer conversion, and ptraddr_t."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="intptr-roundtrip-identity",
        categories=(C.INTPTR_PROPERTIES, C.PTR_INT_CONVERSION, C.CASTS),
        description="pointer -> intptr_t -> pointer preserves the whole "
                    "capability (S3.3: casts are no-ops)",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 42;
  int *p = &x;
  intptr_t ip = (intptr_t)p;
  int *q = (int*)ip;
  assert(q == p);
  assert(cheri_is_equal_exact(p, q));
  assert(*q == 42);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="uintptr-roundtrip-identity",
        categories=(C.INTPTR_PROPERTIES, C.PTR_INT_CONVERSION),
        description="the unsigned round trip also preserves tag, bounds, "
                    "and permissions",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  long v = 9;
  long *p = &v;
  uintptr_t u = (uintptr_t)p;
  long *q = (long*)u;
  assert(cheri_tag_get(q));
  assert(cheri_length_get(q) == cheri_length_get(p));
  assert(cheri_perms_get(q) == cheri_perms_get(p));
  *q = 10;
  return v - 10;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intptr-signedness-pair",
        categories=(C.INTPTR_PROPERTIES, C.SIGNEDNESS),
        description="intptr_t is signed, uintptr_t unsigned; both carry "
                    "the same capability (S4.3 integer_value)",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  assert((intptr_t)-1 < 0);
  assert((uintptr_t)-1 > 0);
  int x;
  intptr_t ip = (intptr_t)&x;
  uintptr_t up = (uintptr_t)&x;
  assert((uintptr_t)ip == up);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intptr-rank-maximal",
        categories=(C.INTPTR_PROPERTIES, C.INTPTR_ARITHMETIC),
        description="no standard integer type outranks (u)intptr_t "
                    "(S3.7), so size_t + intptr_t derives from the "
                    "capability operand",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[4];
  a[2] = 5;
  intptr_t ip = (intptr_t)a;
  /* size_t (lower rank) converts to intptr_t; derivation picks ip. */
  intptr_t ip1 = sizeof(int)*2 + ip;
  int *p = (int*)ip1;
  assert(cheri_tag_get(p));
  return *p - 5;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intptr-null-zero",
        categories=(C.INTPTR_PROPERTIES, C.NULL, C.CONSTANT_ASSIGNMENT),
        description="(intptr_t)NULL is zero; zero casts back to a null "
                    "pointer",
        source="""
#include <stdint.h>
#include <stddef.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  intptr_t z = (intptr_t)(void*)0;
  assert(z == 0);
  void *p = (void*)z;
  assert(p == NULL);
  assert(!cheri_tag_get(p));
  intptr_t c = 0;            /* constant into capability-carrying type */
  assert((void*)c == NULL);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intptr-arith-within-bounds",
        categories=(C.INTPTR_ARITHMETIC, C.INTPTR_PROPERTIES),
        description="in-bounds intptr_t arithmetic preserves the tag and "
                    "produces a dereferenceable pointer",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  int a[8];
  a[3] = 33;
  uintptr_t u = (uintptr_t)a;
  u += 3 * sizeof(int);
  int *p = (int*)u;
  assert(*p == 33);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intptr-transient-nonrepresentable",
        categories=(C.INTPTR_ARITHMETIC, C.REPRESENTABILITY,
                    C.INTPTR_PROPERTIES, C.OPTIMIZATION_EFFECTS),
        description="a transient excursion into non-representability "
                    "leaves ghost state: the address survives but access "
                    "is UB (S3.3 option (3)/(c))",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  int x[2];
  uintptr_t i = (uintptr_t)&x[0];
  uintptr_t j = i + 100001 * sizeof(int);
  uintptr_t k = j - 100000 * sizeof(int);
  /* The integer value of the address is always defined: */
  assert(k == i + sizeof(int));
  int *q = (int*)k;
  *q = 1;
  return 0;
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="intptr-arith-value-always-defined",
        categories=(C.INTPTR_ARITHMETIC, C.INTPTR_PROPERTIES),
        description="even far outside bounds, the integer value of "
                    "(u)intptr_t arithmetic is fully defined (unlike "
                    "pointer arithmetic)",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  uintptr_t far = u + (1u << 20);
  assert(far - u == (1u << 20));
  assert(far > u);
  ptraddr_t a = (ptraddr_t)far;
  assert(a == (ptraddr_t)u + (1u << 20));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="intptr-diff-via-cast",
        categories=(C.INTPTR_ARITHMETIC, C.PTR_INT_CONVERSION),
        description="subtracting two intptr_t values from different "
                    "objects is defined (integers), unlike pointer "
                    "subtraction",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  int x, y;
  intptr_t a = (intptr_t)&x;
  intptr_t b = (intptr_t)&y;
  intptr_t d = a - b;           /* fine: integer arithmetic */
  assert(d != 0);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="bitwise-low-bit-tagging",
        categories=(C.INTPTR_BITWISE, C.ALIGNMENT, C.INTPTR_PROPERTIES),
        description="the classic low-bit metadata idiom: set and clear "
                    "tag bits in an aligned pointer via uintptr_t",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  long v = 77;
  long *p = &v;                  /* 16-aligned allocation */
  uintptr_t u = (uintptr_t)p;
  assert((u & 7) == 0);
  uintptr_t tagged = u | 1;      /* stash a mark bit */
  assert((tagged & 1) == 1);
  uintptr_t clean = tagged & ~(uintptr_t)7;
  long *q = (long*)clean;
  assert(*q == 77);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="bitwise-mask-below-base",
        categories=(C.INTPTR_BITWISE, C.REPRESENTABILITY,
                    C.MORELLO_ENCODING, C.INTPTR_PROPERTIES),
        description="masking an address below the allocation makes the "
                    "bounds unspecified in ghost state (the Appendix A "
                    "experiment)",
        source="""
#include <stdint.h>
#include <limits.h>
int main(void) {
  int x[2];
  x[0] = 1;
  intptr_t ip = (intptr_t)&x[0];
  intptr_t ip3 = ip & INT_MAX;   /* drops high bits: below the base */
  int *q = (int*)ip3;
  return *q;
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
        hardware=traps(TrapKind.TAG_VIOLATION),
        # GCC's allocator keeps the stack below INT_MAX, so the mask is
        # the identity and the access succeeds (S5 / Appendix A).
        overrides={
            "gcc-morello-O0": exits(1),
            "gcc-morello-O3": exits(1),
        },
    ),
    TestCase(
        name="bitwise-xor-roundtrip",
        categories=(C.INTPTR_BITWISE, C.INTPTR_ARITHMETIC,
                    C.UNFORGEABILITY),
        description="XOR-linked-list style double-xor restores the "
                    "address; the capability survives via derivation "
                    "from the left (capability) operand",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int v = 3;
  int *p = &v;
  uintptr_t key = 0xf0f0;
  uintptr_t enc = (uintptr_t)p ^ key;
  uintptr_t dec = enc ^ key;
  assert(dec == (uintptr_t)p);
  int *q = (int*)dec;
  /* The excursion may have left representable range: semantics makes
     the ghost state sticky, so the deref's validity is the test. */
  if (cheri_tag_get(q)) { return *q - 3; }
  return 0;
}
""",
        expect=undefined(UB.READ_UNINITIALISED,),
        hardware=exits(0),
    ),
    TestCase(
        name="ptraddr-pure-integer",
        categories=(C.PTRADDR, C.PTR_INT_CONVERSION, C.UNFORGEABILITY,
                    C.PROVENANCE),
        description="ptraddr_t holds only the address: casting back "
                    "yields an untagged (NULL-derived) pointer whose "
                    "dereference is UB even with correct provenance",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 5;
  ptraddr_t a = (ptraddr_t)&x;     /* exposes the allocation */
  int *p = (int*)a;                /* PNVI gives provenance, CHERI no tag */
  assert(!cheri_tag_get(p));
  assert((ptraddr_t)p == a);
  return *p;
}
""",
        expect=undefined(UB.CHERI_INVALID_CAP),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
]
