"""Suite programs: capability alignment and the allocator interface."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="align-intptr-storage",
        categories=(C.ALIGNMENT, C.INTPTR_PROPERTIES),
        description="(u)intptr_t is capability-sized and capability-"
                    "aligned; ptraddr_t is address-sized",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  assert(sizeof(intptr_t) == sizeof(void*));
  assert(sizeof(uintptr_t) == sizeof(void*));
  assert(_Alignof(intptr_t) == sizeof(void*));
  assert(_Alignof(uintptr_t) == sizeof(void*));
  assert(sizeof(ptraddr_t) < sizeof(intptr_t));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="align-pointer-in-struct",
        categories=(C.ALIGNMENT,),
        description="struct layout pads members to capability alignment",
        source="""
#include <stddef.h>
#include <assert.h>
struct mix { char c; int *p; char d; };
int main(void) {
  assert(offsetof(struct mix, p) == sizeof(void*));
  assert(sizeof(struct mix) == 3 * sizeof(void*));
  struct mix m;
  assert(((ptraddr_t)&m.p) % sizeof(void*) == 0);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="align-local-pointer-object",
        categories=(C.ALIGNMENT, C.ALLOCATOR, C.GLOBAL_VS_LOCAL),
        description="stack slots holding capabilities are capability-"
                    "aligned",
        source="""
#include <stdint.h>
#include <assert.h>
int g;
int *gp = &g;
int main(void) {
  int x;
  int *p = &x;
  assert(((ptraddr_t)&p) % sizeof(void*) == 0);
  assert(((ptraddr_t)&gp) % sizeof(void*) == 0);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="align-malloc-result",
        categories=(C.ALIGNMENT, C.ALLOCATOR),
        description="malloc returns capability-aligned storage suitable "
                    "for storing pointers",
        source="""
#include <stdlib.h>
#include <stdint.h>
#include <assert.h>
int main(void) {
  void *raw = malloc(3);
  assert(((ptraddr_t)raw) % sizeof(void*) == 0);
  int **slot = malloc(sizeof(int*));
  int x = 7;
  *slot = &x;
  assert(**slot == 7);
  free(raw);
  free(slot);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="align-misaligned-cap-store",
        categories=(C.ALIGNMENT,),
        description="storing a capability at a misaligned address is UB "
                    "(hardware: alignment abort)",
        source="""
#include <stdint.h>
int main(void) {
  char buf[64];
  int x = 1;
  int **slot = (int**)(buf + 1);
  *slot = &x;
  return 0;
}
""",
        expect=undefined(UB.MISALIGNED_ACCESS),
        hardware=traps(TrapKind.SIGSEGV),
    ),
    TestCase(
        name="alloc-local-exact-bounds",
        categories=(C.ALLOCATOR,),
        description="&x has bounds spanning exactly the object's "
                    "footprint (S3.1)",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  assert(cheri_length_get(&x) == sizeof(int));
  assert(cheri_base_get(&x) == cheri_address_get(&x));
  assert(cheri_offset_get(&x) == 0);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="alloc-malloc-bounds-cover-request",
        categories=(C.ALLOCATOR,),
        description="malloc'd capability bounds cover at least the "
                    "requested size (padding allowed, S3.2)",
        source="""
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  char *p = malloc(100);
  assert(cheri_tag_get(p));
  assert(cheri_length_get(p) >= 100);
  assert(cheri_base_get(p) == cheri_address_get(p));
  p[0] = 1;
  p[99] = 2;
  free(p);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="alloc-heap-disjoint",
        categories=(C.ALLOCATOR,),
        description="distinct heap allocations have disjoint capability "
                    "footprints",
        source="""
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int disjoint(void *x, void *y) {
  ptraddr_t xtop = cheri_base_get(x) + cheri_length_get(x);
  ptraddr_t ytop = cheri_base_get(y) + cheri_length_get(y);
  return xtop <= cheri_base_get(y) || ytop <= cheri_base_get(x);
}
int main(void) {
  char *a = malloc(40);
  char *b = malloc(40);
  assert(disjoint(a, b));
  /* Large odd sizes force bounds rounding: the allocator must pad so
     the rounded capability footprints still do not overlap (S3.2). */
  char *c = malloc(1000001);
  char *d = malloc(1000001);
  assert(disjoint(c, d));
  assert(disjoint(c, a) && disjoint(d, b));
  free(a); free(b); free(c); free(d);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="alloc-global-array-bounds",
        categories=(C.ALLOCATOR, C.GLOBAL_VS_LOCAL),
        description="globals get capabilities spanning the whole object",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int garr[10];
int main(void) {
  assert(cheri_length_get(garr) == 10 * sizeof(int));
  assert(cheri_length_get(&garr[3]) == 10 * sizeof(int));
  garr[9] = 1;
  return garr[9] - 1;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="alloc-large-padded-representable",
        categories=(C.ALLOCATOR, C.REPRESENTABILITY, C.ALIGNMENT),
        description="large allocations are padded/aligned so bounds stay "
                    "representable (S3.2); the capability stays tagged",
        source="""
#include <stdlib.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  /* Large enough to need the internal exponent. */
  char *p = malloc(1000001);
  assert(cheri_tag_get(p));
  assert(cheri_length_get(p) >= 1000001);
  assert(cheri_length_get(p) == cheri_representable_length(1000001));
  p[1000000] = 42;
  free(p);
  return 0;
}
""",
        expect=exits(0),
    ),
]
