"""Suite programs: unforgeability and representation-byte access (S3.5)."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="repr-identity-byte-write",
        categories=(C.REPRESENTATION_ACCESS, C.UNFORGEABILITY,
                    C.OPTIMIZATION_EFFECTS),
        description="the S3.5 example: even an identity byte write over "
                    "a capability makes later access UB (ghost state); "
                    "hardware clears the tag",
        source="""
int main(void) {
  int x = 0;
  int *px = &x;
  unsigned char *p = (unsigned char *)&px;
  p[0] = p[0];
  *px = 1;
  return x;
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
        hardware=traps(TrapKind.TAG_VIOLATION),
        # The optimiser removes the identity write, so the program
        # succeeds -- which the ghost-state semantics (UB) licenses.
        overrides={
            "clang-morello-O3": exits(1),
            "clang-riscv-O3": exits(1),
            "gcc-morello-O3": exits(1),
        },
    ),
    TestCase(
        name="repr-loop-byte-copy",
        categories=(C.REPRESENTATION_ACCESS, C.UNFORGEABILITY,
                    C.OPTIMIZATION_EFFECTS),
        description="the second S3.5 example: a bytewise copy of a "
                    "pointer yields a capability unusable for access "
                    "(tag unspecified); when the loop becomes memcpy the "
                    "tag survives",
        source="""
int main(void) {
  int x = 0;
  int *px0 = &x;
  int *px1;
  unsigned char *p0 = (unsigned char *)&px0;
  unsigned char *p1 = (unsigned char *)&px1;
  for (int i=0; i<sizeof(int*); i++)
    p1[i] = p0[i];
  *px1 = 1;
  return x;
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
        hardware=traps(TrapKind.TAG_VIOLATION),
        # tree-loop-distribute-patterns style: loop -> memcpy preserves
        # the capability, so the store lands and main returns 1.
        overrides={
            "clang-morello-O3": exits(1),
            "clang-riscv-O3": exits(1),
            "gcc-morello-O3": exits(1),
        },
    ),
    TestCase(
        name="repr-memcpy-preserves-tag",
        categories=(C.REPRESENTATION_ACCESS, C.STDLIB, C.ALIGNMENT),
        description="memcpy of a whole aligned capability preserves it "
                    "(S3.5: capability-sized and aligned accesses)",
        source="""
#include <string.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 0;
  int *src = &x;
  int *dst;
  memcpy(&dst, &src, sizeof(int*));
  assert(cheri_tag_get(dst));
  *dst = 42;
  return x - 42;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="repr-partial-memcpy",
        categories=(C.REPRESENTATION_ACCESS, C.STDLIB, C.UNFORGEABILITY),
        description="memcpy of part of a capability behaves like any "
                    "representation write: the destination is not a "
                    "usable capability",
        source="""
#include <string.h>
int main(void) {
  int x = 0;
  int *src = &x;
  int *dst = &x;
  /* Overwrite only half of dst's representation. */
  memcpy(&dst, &src, sizeof(int*) / 2);
  *dst = 1;
  return 0;
}
""",
        expect=undefined(),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="unforge-crafted-pointer-bytes",
        categories=(C.UNFORGEABILITY, C.REPRESENTATION_ACCESS,
                    C.MORELLO_ENCODING),
        description="writing crafted bytes into pointer storage cannot "
                    "produce a valid capability: the tag is the "
                    "out-of-band ground truth",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 7;
  int *genuine = &x;
  int *forged;
  unsigned char *src = (unsigned char *)&genuine;
  unsigned char *dst = (unsigned char *)&forged;
  for (int i = 0; i < sizeof(int*); i++) dst[i] = src[i];
  /* Bytes are identical -- the authority is not. */
  assert(forged == genuine);
  return *forged;
}
""",
        expect=undefined(UB.CHERI_UNDEFINED_TAG),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="unforge-int-write-over-cap",
        categories=(C.UNFORGEABILITY, C.REPRESENTATION_ACCESS,
                    C.OPTIMIZATION_EFFECTS),
        description="overwriting half a stored capability with an "
                    "integer invalidates it even after restoring bytes",
        source="""
#include <stdint.h>
int main(void) {
  long v = 1;
  long *p = &v;
  uint64_t *words = (uint64_t *)&p;
  uint64_t saved = words[0];
  words[0] = 0xdeadbeef;     /* clobber the address word */
  words[0] = saved;          /* restore the exact bytes */
  return (int)*p;            /* still not a valid capability */
}
""",
        expect=undefined(),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="repr-read-bytes-harmless",
        categories=(C.REPRESENTATION_ACCESS, C.MORELLO_ENCODING),
        description="reading a capability's representation bytes is "
                    "allowed and does not disturb the stored capability; "
                    "the low bytes are the address (implementation-"
                    "defined, Morello layout)",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 5;
  int *p = &x;
  unsigned char *bytes = (unsigned char *)&p;
  ptraddr_t addr = 0;
  for (int i = 0; i < 8; i++)
    addr |= (ptraddr_t)bytes[i] << (8 * i);
  assert(addr == cheri_address_get(p));   /* Morello: low 64 = address */
  assert(cheri_tag_get(p));               /* reads do not detag */
  return *p - 5;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="repr-tag-query-after-write",
        categories=(C.REPRESENTATION_ACCESS, C.INTRINSICS,
                    C.UNFORGEABILITY, C.OPTIMIZATION_EFFECTS),
        description="after a representation write, the tag query gives "
                    "an unspecified value (not UB) per S3.5; "
                    "equal-exact likewise",
        source="""
#include <cheriintrin.h>
int main(void) {
  int x = 0;
  int *px = &x;
  unsigned char *p = (unsigned char *)&px;
  p[0] = p[0];
  /* Unspecified, not UB -- but branching on it is where the oracle
     stops, so the test just materialises the value. */
  int t = cheri_tag_get(px) ? 1 : 0;
  return t;
}
""",
        expect=undefined(UB.READ_UNINITIALISED),
        hardware=exits(0),
    ),
]
