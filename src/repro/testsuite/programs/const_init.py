"""Suite programs: const and capabilities (S3.9), initialization, casts,
signedness."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="const-object-no-write-perm",
        categories=(C.CONST, C.PERMISSIONS, C.INTRINSICS),
        description="capabilities to const objects lack the store "
                    "permission (S3.9)",
        source="""
#include <cheriintrin.h>
#include <assert.h>
const int answer = 42;
int main(void) {
  const int *p = &answer;
  assert((cheri_perms_get(p) & CHERI_PERM_STORE) == 0);
  assert((cheri_perms_get(p) & CHERI_PERM_LOAD) != 0);
  return *p - 42;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="const-write-attempt",
        categories=(C.CONST, C.PERMISSIONS),
        description="writing to a const object through a cast is UB "
                    "(hardware: permission fault, no write perm)",
        source="""
const int c = 5;
int main(void) {
  int *p = (int*)&c;
  *p = 6;
  return c;
}
""",
        expect=undefined(UB.CHERI_INSUFFICIENT_PERMISSIONS),
        hardware=traps(TrapKind.PERMISSION_VIOLATION),
    ),
    TestCase(
        name="const-cast-roundtrip-legal",
        categories=(C.CONST, C.CASTS),
        description="S3.9: const casts are no-ops on the capability, so "
                    "casting a non-const object's pointer through const "
                    "and back keeps it writable",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x = 1;
  int *p = &x;
  const int *cp = p;            /* add const: no-op on capability */
  assert(cheri_perms_get(cp) == cheri_perms_get(p));
  int *back = (int*)cp;         /* cast it away again */
  *back = 2;
  return x - 2;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="const-string-literal",
        categories=(C.CONST, C.STDLIB, C.ALLOCATOR),
        description="string literals are read-only objects; writing "
                    "through them is UB",
        source="""
int main(void) {
  char *s = (char*)"hello";
  if (s[0] != 'h') return 1;
  s[0] = 'H';
  return 0;
}
""",
        expect=undefined(UB.CHERI_INSUFFICIENT_PERMISSIONS),
        hardware=traps(TrapKind.PERMISSION_VIOLATION),
    ),
    TestCase(
        name="init-uninit-pointer-use",
        categories=(C.INITIALIZATION,),
        description="using an uninitialised pointer is an unspecified-"
                    "value use (UB when dereferenced)",
        source="""
int main(void) {
  int *p;
  return *p;
}
""",
        expect=undefined(UB.READ_UNINITIALISED),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="init-static-zero-null",
        categories=(C.INITIALIZATION, C.NULL, C.GLOBAL_VS_LOCAL,
                    C.CONST, C.FUNCTION_POINTERS),
        description="static-storage capabilities zero-initialise to "
                    "NULL (untagged, address 0)",
        source="""
#include <stddef.h>
#include <cheriintrin.h>
#include <assert.h>
int *gp;
static long *sp;
const char *const cmsg;        /* const capability global */
int (*gfp)(void);              /* function-pointer global */
int main(void) {
  assert(gp == NULL);
  assert(sp == NULL);
  assert(!cheri_tag_get(gp));
  assert(cheri_address_get(gp) == 0);
  static int *fn_static;
  assert(fn_static == NULL);
  assert(cmsg == NULL);
  assert(gfp == NULL);
  assert(!cheri_tag_get(gfp));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="cast-object-pointer-types",
        categories=(C.CASTS, C.EQUALITY, C.ALIGNMENT,
                    C.FUNCTION_POINTERS),
        description="object-pointer casts (via void*) preserve the "
                    "capability exactly",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int helper(void) { return 3; }
int main(void) {
  long x = 7;
  long *p = &x;
  void *v = p;
  char *c = (char*)v;
  long *q = (long*)c;
  assert(cheri_is_equal_exact(p, q));
  assert(*q == 7);
  /* Misaligned view: the capability is unchanged, only the access
     type's alignment matters. */
  char second = c[1];
  (void)second;
  /* Function pointers survive a void* round trip too. */
  void *fv = (void*)helper;
  int (*h)(void) = (int(*)(void))fv;
  assert(h() == 3);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="signed-conversions-of-caps",
        categories=(C.SIGNEDNESS, C.CASTS, C.PTR_INT_CONVERSION,
                    C.INTPTR_PROPERTIES, C.NULL),
        description="casting capabilities to narrow/signed integer "
                    "types keeps the (truncated) address and drops the "
                    "capability",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  int *p = &x;
  uintptr_t u = (uintptr_t)p;
  /* Truncating conversions agree with address arithmetic. */
  uint32_t lo32 = (uint32_t)u;
  assert(lo32 == (cheri_address_get(p) & 0xffffffffu));
  /* Signed reinterpretation round-trips through uintptr_t. */
  intptr_t s = (intptr_t)u;
  assert((uintptr_t)s == u);
  /* A pointer rebuilt from the truncated integer has no tag. */
  int *forged = (int*)(uintptr_t)lo32;
  assert(!cheri_tag_get(forged));
  return 0;
}
""",
        expect=exits(0),
    ),
]
