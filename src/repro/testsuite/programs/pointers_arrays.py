"""Suite programs: array addresses, pointer offsetting, bounds checking."""

from repro.errors import TrapKind, UB
from repro.testsuite.case import TestCase, exits, traps, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="array-whole-vs-element",
        categories=(C.ARRAY_ADDRESSES, C.EQUALITY),
        description="&arr, arr, and &arr[0] have the same address; all "
                    "carry the whole array's bounds",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int arr[4];
  assert((void*)&arr == (void*)arr);
  assert((void*)arr == (void*)&arr[0]);
  assert(cheri_length_get(&arr) == sizeof(arr));
  assert(cheri_length_get(&arr[0]) == sizeof(arr));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="offset-element-address",
        categories=(C.POINTER_OFFSETTING, C.ARRAY_ADDRESSES),
        description="&a[i] moves only the address field; bounds and "
                    "authority are unchanged (S3.8 default)",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  long a[8];
  long *p = &a[5];
  assert(cheri_address_get(p) == cheri_address_get(a) + 5 * sizeof(long));
  assert(cheri_base_get(p) == cheri_base_get(a));
  assert(cheri_length_get(p) == cheri_length_get(a));
  *p = 11;
  assert(a[5] == 11);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="offset-plus-equals-index",
        categories=(C.POINTER_OFFSETTING, C.EQUALITY),
        description="p + i and &p[i] agree",
        source="""
#include <assert.h>
int main(void) {
  int a[6];
  int *p = a;
  assert(p + 4 == &p[4]);
  assert(&a[6] == p + 6);   /* one-past is constructible */
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="offset-down-then-up",
        categories=(C.POINTER_OFFSETTING, C.POINTER_ARITHMETIC,
                    C.RELATIONAL),
        description="in-bounds down-then-up pointer arithmetic is exact",
        source="""
#include <assert.h>
int main(void) {
  int a[10];
  int *p = &a[9];
  int *q = p - 9;
  assert(q == a);
  assert(q < p);
  assert(p >= q + 9);
  q = q + 3;
  *q = 5;
  assert(a[3] == 5);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="one-past-construct-and-bounds",
        categories=(C.ONE_PAST,),
        description="the one-past pointer is legal, keeps bounds and "
                    "tag, and is always representable",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[4];
  int *end = a + 4;
  assert(cheri_tag_get(end));
  assert(cheri_address_get(end) == cheri_base_get(a) + sizeof(a));
  assert(cheri_length_get(end) == sizeof(a));
  for (int *p = a; p != end; p++) *p = 1;
  assert(a[0] + a[1] + a[2] + a[3] == 4);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="oob-read-one-past",
        categories=(C.OOB_ACCESS,),
        description="reading through the one-past pointer is UB "
                    "(hardware: bounds fault)",
        source="""
int main(void) {
  int a[2];
  a[0] = 1; a[1] = 2;
  int *p = a + 2;
  return *p;
}
""",
        expect=undefined(UB.CHERI_BOUNDS_VIOLATION),
        hardware=traps(TrapKind.BOUNDS_VIOLATION),
    ),
    TestCase(
        name="oob-write-stack-neighbour",
        categories=(C.OOB_ACCESS, C.GLOBAL_VS_LOCAL),
        description="a write past a local cannot corrupt the adjacent "
                    "stack slot",
        source="""
int main(void) {
  int victim = 7;
  int x[1];
  x[0] = 0;
  int *p = x;
  p[1] = 99;            /* would hit a neighbouring slot untrapped */
  return victim;
}
""",
        expect=undefined(),
        hardware=traps(TrapKind.BOUNDS_VIOLATION),
    ),
    TestCase(
        name="oob-far-pointer-construction",
        categories=(C.OOB_ACCESS, C.POINTER_ARITHMETIC,
                    C.OPTIMIZATION_EFFECTS),
        description="constructing a far out-of-bounds pointer is already "
                    "UB at pointer type (S3.2 option (a)); hardware "
                    "clears the tag at the representability limit",
        source="""
int main(void) {
  int x[2];
  int *p = &x[0];
  int *q = p + 100001;   /* UB here under ISO/CHERI C */
  q = q - 100000;
  *q = 1;
  return 0;
}
""",
        expect=undefined(UB.OUT_OF_BOUNDS_PTR_ARITH),
        hardware=traps(TrapKind.TAG_VIOLATION),
    ),
    TestCase(
        name="oob-negative-index",
        categories=(C.OOB_ACCESS,),
        description="negative indexing below the allocation is UB "
                    "(hardware: bounds fault)",
        source="""
int main(void) {
  int a[4];
  a[0] = 1;
  int *p = &a[0];
  return p[-1];
}
""",
        expect=undefined(),
        hardware=traps(TrapKind.BOUNDS_VIOLATION),
    ),
]
