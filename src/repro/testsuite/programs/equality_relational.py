"""Suite programs: equality (S3.6), relational operators, constant
assignment."""

from repro.errors import UB
from repro.testsuite.case import TestCase, exits, undefined
from repro.testsuite.categories import Category as C

CASES = [
    TestCase(
        name="eq-address-only",
        categories=(C.EQUALITY, C.INTRINSICS),
        description="== compares address fields only (S3.6 option 3): "
                    "an untagged copy still compares equal",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int x;
  int *p = &x;
  int *q = cheri_tag_clear(p);
  assert(p == q);                   /* addresses equal */
  assert(!cheri_is_equal_exact(p, q));  /* tags differ */
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="eq-across-capability-types",
        categories=(C.EQUALITY, C.INTPTR_PROPERTIES),
        description="equality agrees across pointer and (u)intptr_t "
                    "views of the same capability",
        source="""
#include <stdint.h>
#include <assert.h>
int main(void) {
  int x;
  int *p = &x;
  intptr_t ip = (intptr_t)p;
  uintptr_t up = (uintptr_t)p;
  assert(ip == (intptr_t)up);
  assert((int*)ip == p);
  assert(up == (uintptr_t)&x);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="eq-null-comparisons",
        categories=(C.EQUALITY, C.NULL),
        description="null comparisons are address comparisons",
        source="""
#include <stddef.h>
#include <assert.h>
int main(void) {
  int x;
  int *p = &x;
  int *n = NULL;
  assert(n == NULL);
  assert(p != NULL);
  assert(!(n != 0));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="eq-exact-vs-address",
        categories=(C.EQUALITY, C.INTRINSICS),
        description="cheri_is_equal_exact distinguishes capabilities "
                    "with equal addresses but different metadata",
        source="""
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  char buf[32];
  char *p = buf;
  char *narrow = cheri_bounds_set(p, 8);
  char *noperm = cheri_perms_and(p, 0);
  assert(p == narrow);
  assert(p == noperm);
  assert(!cheri_is_equal_exact(p, narrow));  /* bounds differ */
  assert(!cheri_is_equal_exact(p, noperm));  /* perms differ */
  assert(cheri_is_equal_exact(p, p));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="eq-same-address-different-provenance",
        categories=(C.EQUALITY, C.PROVENANCE, C.TEMPORAL),
        description="S3.11: a dangling pointer and a new allocation at "
                    "the same address compare equal under ==, though "
                    "their provenances differ",
        source="""
#include <stdlib.h>
#include <assert.h>
int main(void) {
  char *a = malloc(16);
  free(a);
  char *b = malloc(16);   /* may or may not reuse the address */
  if (a == b) { return 1; }
  assert(b != a || 1);
  free(b);
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="rel-within-object",
        categories=(C.RELATIONAL,),
        description="relational comparison of pointers into the same "
                    "array is defined and address-based",
        source="""
#include <assert.h>
int main(void) {
  int a[8];
  int *lo = &a[1];
  int *hi = &a[6];
  assert(lo < hi);
  assert(hi > lo);
  assert(lo <= lo && hi >= hi);
  assert(!(hi < lo));
  return 0;
}
""",
        expect=exits(0),
    ),
    TestCase(
        name="rel-different-objects-ub",
        categories=(C.RELATIONAL, C.PROVENANCE, C.GLOBAL_VS_LOCAL),
        description="ordering pointers to different objects is UB in the "
                    "abstract machine (provenance check); hardware just "
                    "compares addresses",
        source="""
int g;
int main(void) {
  int l;
  int *p = &g;
  int *q = &l;
  /* Globals sit below the stack on every simulated target. */
  if (p < q) return 1;
  return 2;
}
""",
        expect=undefined(UB.PTR_RELATIONAL_DIFFERENT_PROVENANCE),
        hardware=exits(1),
    ),
    TestCase(
        name="const-assign-capability-vars",
        categories=(C.CONSTANT_ASSIGNMENT, C.INITIALIZATION,
                    C.INTPTR_PROPERTIES, C.SIGNEDNESS),
        description="assigning integer constants to capability-typed "
                    "variables yields NULL-derived values with that "
                    "address",
        source="""
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  uintptr_t u = 0x1000;       /* constant into uintptr_t */
  intptr_t  s = -16;          /* negative constant into intptr_t */
  assert(u == 0x1000);
  assert(s == -16);
  assert(!cheri_tag_get((void*)u));
  assert(cheri_address_get((void*)u) == 0x1000);
  char *p = (char*)u;
  assert((uintptr_t)p == u);
  return 0;
}
""",
        expect=exits(0),
    ),
]
