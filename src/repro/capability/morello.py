"""The Morello-style 128+1-bit capability format.

S2.1 / Figure 1: Morello capabilities are 128+1 bits; the lower 64 bits
carry the virtual address and the upper 64 bits encode bounds (87 bits
total, 56 shared with the address via compression), an 18-bit permission
field (``perms[17:2]`` plus global/executive), and a 15-bit object type.

Our layout reproduces the field *widths* of Figure 1 -- 64-bit address,
16/14-bit B/T mantissas with a 6-bit internal exponent, 15-bit otype,
18 permissions -- over the published CHERI Concentrate algorithm.  The
exact Morello bit interleaving (which shares bound bits with the address
field) differs, which is invisible to CHERI C: S3.10 fixes the abstract
scope of compression to address/flags/bounds and the semantics never
inspects raw bit positions except through intrinsics.
"""

from __future__ import annotations

from repro.capability.abstract import Architecture
from repro.capability.concentrate import CompressionParams
from repro.capability.permissions import Permission

MORELLO_COMPRESSION = CompressionParams(
    name="morello",
    address_width=64,
    mantissa_width=16,
    exponent_low_bits=3,
)

#: Permission bit order (LSB first) for the 18-bit Morello perms field.
MORELLO_PERMS: tuple[Permission, ...] = (
    Permission.GLOBAL,
    Permission.EXECUTIVE,
    Permission.USER0,
    Permission.USER1,
    Permission.USER2,
    Permission.USER3,
    Permission.MUTABLE_LOAD,
    Permission.COMPARTMENT_ID,
    Permission.BRANCH_SEALED_PAIR,
    Permission.SYSTEM,
    Permission.UNSEAL,
    Permission.SEAL,
    Permission.STORE_LOCAL_CAP,
    Permission.STORE_CAP,
    Permission.LOAD_CAP,
    Permission.EXECUTE,
    Permission.STORE,
    Permission.LOAD,
)

MORELLO = Architecture(
    name="morello",
    compression=MORELLO_COMPRESSION,
    otype_width=15,
    perm_order=MORELLO_PERMS,
)
"""The Morello architecture instance: 128-bit capabilities + tag."""

assert MORELLO.capability_size == 16, "Morello capabilities are 128 bits"
