"""CHERI Concentrate bounds compression, parametric in field widths.

S2.1 of the paper: "A sophisticated compression scheme allows a
capability to include 64-bit lower and upper bounds ... Small regions can
be described precisely, with an arbitrary size in bytes, while for larger
regions, only certain combinations of bounds and size are representable."

This module implements the published CHERI Concentrate algorithm
(Woodruff et al., IEEE ToC 2019 -- reference [47] of the paper), which is
the scheme behind the Morello and CHERI-RISC-V capability formats.  It is
parametric in the address width and mantissa width so that one code path
serves both the 128+1-bit Morello-style format (64-bit addresses) and a
64+1-bit CHERIoT-style format (32-bit addresses); see
:mod:`repro.capability.morello` and :mod:`repro.capability.cheriot`.

The three operations the CHERI C semantics depends on are:

* :meth:`CompressedBounds.encode` -- the ``SetBounds`` operation: given a
  requested ``[base, base+length)`` region, produce the (possibly
  rounded) encodable bounds and report whether they are exact;
* :meth:`CompressedBounds.decode` -- reconstruct ``(base, top)`` from the
  stored fields and the current address;
* :meth:`CompressedBounds.representable_limits` -- the range of addresses
  the capability's address field may take without changing the decoded
  bounds (S3.2: "they have been designed to allow at least some ranges
  below and above the object").  Going outside this range during pointer
  arithmetic clears the tag in hardware and sets the bounds-unspecified
  ghost bit in the abstract machine (S3.3 option (c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class CompressionParams:
    """Field widths of a CHERI Concentrate format.

    Attributes:
        name: human-readable format name.
        address_width: width of the address field (AW), 64 or 32.
        mantissa_width: width of the bottom-bound field B (MW).  The top
            field T stores MW-2 bits; its top two bits are inferred.
        exponent_low_bits: number of exponent bits stored in the low bits
            of each of B and T when the internal-exponent flag is set
            (3 for the 64-bit formats, giving a 6-bit exponent).
    """

    name: str
    address_width: int
    mantissa_width: int
    exponent_low_bits: int = 3

    def __post_init__(self) -> None:
        if self.mantissa_width < self.exponent_low_bits + 3:
            raise ValueError("mantissa too narrow for exponent encoding")
        if self.address_width < self.mantissa_width:
            raise ValueError("address width must exceed mantissa width")

    # Derived widths are cached per instance: params are frozen and the
    # memory model consults these on every capability decode/encode.

    @cached_property
    def top_width(self) -> int:
        """Stored width of the T field (two top bits are inferred)."""
        return self.mantissa_width - 2

    @cached_property
    def exponent_width(self) -> int:
        return 2 * self.exponent_low_bits

    @cached_property
    def reset_exponent(self) -> int:
        """The exponent of the maximal (whole-address-space) capability."""
        return self.address_width - self.mantissa_width + 2

    @cached_property
    def address_mask(self) -> int:
        return (1 << self.address_width) - 1

    @cached_property
    def max_exact_length(self) -> int:
        """Largest length representable byte-exactly at any alignment.

        With the internal exponent clear (E = 0) the full mantissas are
        available, covering lengths up to ``2**(MW-2) - 1`` bytes.
        """
        return (1 << (self.mantissa_width - 2)) - 1


@dataclass(frozen=True)
class DecodedBounds:
    """The result of decoding a compressed capability's bounds."""

    base: int
    top: int        # may equal 2**address_width for the maximal capability
    exponent: int

    @property
    def length(self) -> int:
        return self.top - self.base

    def contains(self, addr: int, size: int = 1) -> bool:
        """Footprint check: is ``[addr, addr+size)`` within the bounds?"""
        return self.base <= addr and addr + size <= self.top


@dataclass(frozen=True)
class CompressedBounds:
    """The stored B/T/IE fields of a CHERI Concentrate capability.

    Instances are immutable; bounds are (re)derived from the current
    address via :meth:`decode`, exactly as hardware does.
    """

    params: CompressionParams
    b_field: int
    t_field: int
    internal_exponent: bool

    def __post_init__(self) -> None:
        p = self.params
        if not 0 <= self.b_field < (1 << p.mantissa_width):
            raise ValueError(f"B field out of range: {self.b_field:#x}")
        if not 0 <= self.t_field < (1 << p.top_width):
            raise ValueError(f"T field out of range: {self.t_field:#x}")

    # ------------------------------------------------------------------
    # Decoding (the hardware GetBounds function)
    # ------------------------------------------------------------------

    def _fields(self) -> tuple[int, int, int]:
        """Split stored fields into (E, B, T_full), with T_full MW bits.

        The split depends only on the (frozen) stored fields, so it is
        computed once and memoised on the instance -- ``decode`` and the
        representability checks call this on every bounds check.
        """
        memo = self.__dict__.get("_fields_memo")
        if memo is not None:
            return memo
        p = self.params
        mw, tw, eb = p.mantissa_width, p.top_width, p.exponent_low_bits
        emask = (1 << eb) - 1
        if self.internal_exponent:
            exponent = ((self.t_field & emask) << eb) | (self.b_field & emask)
            exponent = min(exponent, p.reset_exponent)
            b_val = self.b_field & ~emask
            t_val = self.t_field & ~emask
            length_msb = 1
        else:
            exponent = 0
            b_val = self.b_field
            t_val = self.t_field
            length_msb = 0
        # Reconstruct the top two bits of T from B, the borrow between the
        # stored low bits, and the length MSB implied by IE.
        length_carry = 1 if t_val < (b_val & ((1 << tw) - 1)) else 0
        t_top2 = ((b_val >> tw) + length_carry + length_msb) & 0x3
        t_full = (t_top2 << tw) | t_val
        memo = (exponent, b_val, t_full)
        self.__dict__["_fields_memo"] = memo
        return memo

    def decode(self, address: int) -> DecodedBounds:
        """Reconstruct (base, top) relative to ``address``.

        Implements the correction-term scheme of CHERI Concentrate: the
        address's middle bits are compared against the representable-region
        boundary R to decide whether B and T belong to the address's own
        2^(E+MW) block, the one below, or the one above.
        """
        p = self.params
        mw = p.mantissa_width
        exponent, b_val, t_full = self._fields()
        mw_mask = (1 << mw) - 1

        a = address & p.address_mask
        a_mid = (a >> exponent) & mw_mask
        a_top = a >> (exponent + mw)
        boundary = (b_val - (1 << (mw - 2))) & mw_mask  # R

        # Correction terms (inlined -- this is the hottest arithmetic in
        # the memory model): compare each field against the
        # representable-region boundary R relative to the address.
        a_in_lower = a_mid < boundary
        if (b_val < boundary) == a_in_lower:
            c_b = 0
        else:
            c_b = 1 if b_val < boundary else -1
        t_mid = t_full & mw_mask
        if (t_mid < boundary) == a_in_lower:
            c_t = 0
        else:
            c_t = 1 if t_mid < boundary else -1

        block = exponent + mw
        base = ((a_top + c_b) << block) | (b_val << exponent)
        base &= p.address_mask
        top = ((a_top + c_t) << block) | (t_full << exponent)
        top &= (1 << (p.address_width + 1)) - 1

        # Published fixup: when base and top land more than an address
        # space apart, the MSB of top must be inverted.
        if exponent < p.reset_exponent - 1:
            top_2 = (top >> (p.address_width - 1)) & 0x3
            base_1 = (base >> (p.address_width - 1)) & 0x1
            if ((top_2 - base_1) & 0x3) > 1:
                top ^= 1 << p.address_width
        return DecodedBounds(base=base, top=top, exponent=exponent)

    # ------------------------------------------------------------------
    # Encoding (the hardware SetBounds function)
    # ------------------------------------------------------------------

    @classmethod
    def encode(cls, params: CompressionParams, base: int,
               length: int) -> tuple["CompressedBounds", bool]:
        """Encode the requested ``[base, base+length)`` region.

        Returns the compressed fields plus a flag reporting whether the
        encoding is *exact*.  When inexact, the encoded region is the
        smallest representable superset: base rounded down and top rounded
        up to the encoding granularity ``2^(E + exponent_low_bits)``.
        """
        if length < 0:
            raise ValueError("negative length")
        if base < 0 or base + length > (1 << params.address_width):
            raise ValueError("region outside the address space")
        mw, tw, eb = (params.mantissa_width, params.top_width,
                      params.exponent_low_bits)
        top = base + length

        exponent = (length >> (mw - 1)).bit_length()
        internal = exponent != 0 or bool((length >> (mw - 2)) & 1)
        if not internal:
            b_field = base & ((1 << mw) - 1)
            t_field = top & ((1 << tw) - 1)
            return cls(params, b_field, t_field, False), True

        exponent = min(exponent, params.reset_exponent)
        mantissa = mw - eb  # bits kept for each bound when IE is set
        shift = exponent + eb
        low_mask = (1 << shift) - 1
        b_ie = (base >> shift) & ((1 << mantissa) - 1)
        t_ie = (top >> shift) & ((1 << mantissa) - 1)
        lost_base = (base & low_mask) != 0
        lost_top = (top & low_mask) != 0
        if lost_top:
            t_ie = (t_ie + 1) & ((1 << mantissa) - 1)
        # If rounding pushed the encoded length past the mantissa window,
        # bump the exponent and re-derive at the coarser granularity.
        if ((t_ie - b_ie) >> (mantissa - 1)) & 1:
            exponent += 1
            exponent = min(exponent, params.reset_exponent)
            shift = exponent + eb
            low_mask = (1 << shift) - 1
            lost_base = (base & low_mask) != 0
            lost_top = (top & low_mask) != 0
            b_ie = (base >> shift) & ((1 << mantissa) - 1)
            t_ie = (top >> shift) & ((1 << mantissa) - 1)
            if lost_top:
                t_ie = (t_ie + 1) & ((1 << mantissa) - 1)

        emask = (1 << eb) - 1
        b_field = (b_ie << eb) | (exponent & emask)
        t_low = t_ie & ((1 << (tw - eb)) - 1)
        t_field = (t_low << eb) | ((exponent >> eb) & emask)
        exact = not (lost_base or lost_top)
        return cls(params, b_field, t_field, True), exact

    @classmethod
    def maximal(cls, params: CompressionParams) -> "CompressedBounds":
        """The bounds of the "almighty" capability covering all memory.

        One immutable value per format; cached on the params instance
        (root and NULL capability construction both start here).
        """
        memo = params.__dict__.get("_maximal_memo")
        if memo is not None:
            return memo
        bounds, exact = cls.encode(params, 0, 1 << params.address_width)
        assert exact, "maximal capability must be exactly encodable"
        params.__dict__["_maximal_memo"] = bounds
        return bounds

    # ------------------------------------------------------------------
    # Representability
    # ------------------------------------------------------------------

    def representable_limits(self, address: int) -> tuple[int, int]:
        """The half-open address window within which bounds are stable.

        Any new address inside ``[lo, hi)`` decodes to the same bounds as
        ``address`` does; addresses outside would change the decoded
        bounds, so hardware clears the tag when capability arithmetic
        produces them (S3.2).

        The decode function is modular in the address, so the window is
        too: ``hi`` may exceed the address-space size, meaning the window
        wraps around (interpret addresses modulo ``2**address_width``).
        """
        p = self.params
        mw = p.mantissa_width
        exponent, b_val, _ = self._fields()
        if exponent + mw >= p.address_width:
            return 0, 1 << p.address_width
        boundary = (b_val - (1 << (mw - 2))) & ((1 << mw) - 1)
        scaled = address >> exponent
        window_lo = scaled - ((scaled - boundary) % (1 << mw))
        lo = (window_lo << exponent) % (1 << p.address_width)
        hi = lo + (1 << (exponent + mw))
        return lo, hi

    def is_representable(self, current_address: int,
                         new_address: int) -> bool:
        """Would moving the address to ``new_address`` preserve bounds?"""
        space = 1 << self.params.address_width
        if not 0 <= new_address < space:
            return False
        lo, hi = self.representable_limits(current_address)
        return ((new_address - lo) % space) < (hi - lo)
