"""Hardware capability model: abstract API + concrete encodings.

This package reproduces S2.1, S3.10, and S4.1 of the paper:

* :mod:`repro.capability.permissions` -- permission sets, with the common
  portable base set and architecture-specific extensions.
* :mod:`repro.capability.otype` -- object types and sealing.
* :mod:`repro.capability.concentrate` -- a parametric implementation of
  the CHERI Concentrate bounds-compression algorithm (Woodruff et al.),
  the scheme behind Morello's and CHERI-RISC-V's capability formats.
* :mod:`repro.capability.ghost` -- the two-bit per-capability ghost state
  (tag-unspecified, bounds-unspecified) of S4.3.
* :mod:`repro.capability.abstract` -- the abstract capability type used
  by the memory object model (the analogue of the paper's Coq module
  type), with all architecture-specific behaviour behind
  :class:`~repro.capability.abstract.Architecture`.
* :mod:`repro.capability.morello` / :mod:`repro.capability.cheriot` --
  concrete 128+1-bit and 64+1-bit instantiations.
"""

from repro.capability.abstract import Architecture, Capability
from repro.capability.concentrate import CompressionParams, CompressedBounds
from repro.capability.ghost import GhostState
from repro.capability.morello import MORELLO
from repro.capability.cheriot import CHERIOT
from repro.capability.otype import OType
from repro.capability.permissions import Permission, PermissionSet

__all__ = [
    "Architecture",
    "Capability",
    "CompressionParams",
    "CompressedBounds",
    "GhostState",
    "MORELLO",
    "CHERIOT",
    "OType",
    "Permission",
    "PermissionSet",
]
