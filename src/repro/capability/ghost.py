"""Per-capability ghost state.

S4.3: "for each capability-size aligned memory location, we add metadata
consisting of the capability tag and a two-bit ghost state ... The first
bit of the ghost state for a given capability indicates whether the tag
is unspecified, and the second bit indicates whether the address and
bounds are unspecified."

Ghost state exists only in the *abstract machine*: it is how the
semantics stays loose enough to make both optimising and non-optimising
implementations correct (S3.3's non-representable excursions, S3.5's
representation-byte writes).  Hardware mode never consults it.

Ghost state attaches in two places:

* to capability *values* (a ``(u)intptr_t`` that transiently went
  non-representable carries ``bounds_unspecified``, S3.3 option (c));
* to capability-aligned *memory locations* (a non-capability write over a
  stored capability sets ``tag_unspecified``, S3.5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GhostState:
    """The two ghost bits of S4.3.

    Attributes:
        tag_unspecified: the capability's tag can no longer be relied on;
            dereferencing is ``UB_CHERI_UndefinedTag`` and reading the tag
            via ``cheri_tag_get`` yields an unspecified value.
        bounds_unspecified: the bounds (and address-derived metadata) are
            unspecified, e.g. after a non-representable ``(u)intptr_t``
            excursion; inspecting bounds yields unspecified values and
            memory access is UB.
    """

    tag_unspecified: bool = False
    bounds_unspecified: bool = False

    @classmethod
    def clean(cls) -> "GhostState":
        return _CLEAN

    @property
    def is_clean(self) -> bool:
        return not (self.tag_unspecified or self.bounds_unspecified)

    def with_tag_unspecified(self) -> "GhostState":
        return GhostState(True, self.bounds_unspecified)

    def with_bounds_unspecified(self) -> "GhostState":
        return GhostState(self.tag_unspecified, True)

    def merge(self, other: "GhostState") -> "GhostState":
        """Join two ghost states (unspecifiedness is sticky)."""
        return GhostState(
            self.tag_unspecified or other.tag_unspecified,
            self.bounds_unspecified or other.bounds_unspecified,
        )

    def describe(self) -> str:
        bits = []
        if self.tag_unspecified:
            bits.append("tag?")
        if self.bounds_unspecified:
            bits.append("bounds?")
        return ",".join(bits) if bits else "clean"

    def transition_to(self, other: "GhostState") -> str | None:
        """Label of the unspecifiedness introduced going from this state
        to ``other`` (``None`` when nothing new became unspecified) --
        the ``ghost`` payload of ``ghost.set`` trace events."""
        bits = []
        if other.tag_unspecified and not self.tag_unspecified:
            bits.append("tag?")
        if other.bounds_unspecified and not self.bounds_unspecified:
            bits.append("bounds?")
        return ",".join(bits) if bits else None


_CLEAN = GhostState()
