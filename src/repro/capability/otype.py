"""Object types and sealing.

S2.1: "Capabilities can also be sealed, making them immutable and
unusable for anything but branching to them ... Some variations of this
are indexed by an object type otype."

S3.10: "The object type field width and values could vary" between
architectures, so the width is an :class:`~repro.capability.abstract.Architecture`
parameter and this module only fixes the reserved values common to the
CHERI ISAs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OType:
    """An object type value.

    Reserved values follow the CHERI ISA convention: 0 is "unsealed",
    small values are hardware sealing forms (sentries), and values from
    :data:`FIRST_USER` upward are available to software via ``CSeal``.
    """

    value: int

    UNSEALED_VALUE = 0
    SENTRY_VALUE = 1
    LOAD_PAIR_BRANCH_VALUE = 2
    LOAD_BRANCH_VALUE = 3
    FIRST_USER = 4

    @classmethod
    def unsealed(cls) -> "OType":
        return _UNSEALED

    @classmethod
    def sentry(cls) -> "OType":
        """Sealed-entry otype used for function pointers in CHERI C."""
        return cls(cls.SENTRY_VALUE)

    @classmethod
    def user(cls, index: int) -> "OType":
        """The ``index``-th software-available object type."""
        if index < 0:
            raise ValueError("user otype index must be non-negative")
        return cls(cls.FIRST_USER + index)

    @property
    def is_unsealed(self) -> bool:
        return self.value == self.UNSEALED_VALUE

    @property
    def is_sealed(self) -> bool:
        return self.value != self.UNSEALED_VALUE

    @property
    def is_sentry(self) -> bool:
        return self.value == self.SENTRY_VALUE

    @property
    def is_reserved(self) -> bool:
        """True for hardware-reserved otype values."""
        return self.UNSEALED_VALUE <= self.value < self.FIRST_USER

    def describe(self) -> str:
        if self.is_unsealed:
            return "unsealed"
        if self.is_sentry:
            return "sentry"
        if self.is_reserved:
            return f"reserved({self.value})"
        return f"otype({self.value})"


#: The shared unsealed value (immutable; by far the most common otype).
_UNSEALED = OType(OType.UNSEALED_VALUE)
