"""Capability permissions.

S2.1: "The permission bits control whether a capability can be used for
loading or storing non-capability data, loading or storing capabilities,
and fetching instructions, among other things."

S3.10: "The list of permissions encoded in capability can vary between
architectures, but there is a common basic set which is always present."

We model permissions as a frozen set over :class:`Permission`, with the
*portable base set* (:data:`BASE_PERMISSIONS`) common to Morello,
CHERI-RISC-V, and CHERIoT, plus architecture-specific members.  Each
architecture assigns its own bit positions (see the ``perm_bits`` mapping
on :class:`~repro.capability.abstract.Architecture`), so a
:class:`PermissionSet` itself is architecture-neutral, as required for
portable CHERI C (S3.10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator


class Permission(enum.Enum):
    """Individual capability permissions.

    The first block is the portable base set; the second block contains
    permissions present on some architectures only (Morello names used).
    """

    # --- portable base set ------------------------------------------------
    GLOBAL = "G"
    LOAD = "r"
    STORE = "w"
    EXECUTE = "x"
    LOAD_CAP = "R"
    STORE_CAP = "W"
    STORE_LOCAL_CAP = "L"
    SEAL = "S"
    UNSEAL = "U"
    SYSTEM = "Y"

    # --- architecture-specific --------------------------------------------
    EXECUTIVE = "E"            # Morello banking of system registers
    BRANCH_SEALED_PAIR = "B"   # Morello BranchSealedPair
    COMPARTMENT_ID = "C"       # Morello CompartmentID
    MUTABLE_LOAD = "M"         # Morello MutableLoad
    USER0 = "0"
    USER1 = "1"
    USER2 = "2"
    USER3 = "3"
    RECURSIVE_MUTABLE_LOAD = "m"  # CHERIoT-style deep immutability

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    # Members are singletons; identity hashing keeps frozenset
    # membership checks (every access check) at C speed.
    __hash__ = object.__hash__


BASE_PERMISSIONS: frozenset[Permission] = frozenset({
    Permission.GLOBAL,
    Permission.LOAD,
    Permission.STORE,
    Permission.EXECUTE,
    Permission.LOAD_CAP,
    Permission.STORE_CAP,
    Permission.STORE_LOCAL_CAP,
    Permission.SEAL,
    Permission.UNSEAL,
    Permission.SYSTEM,
})
"""Portable base set present on every CHERI architecture (S3.10)."""


@dataclass(frozen=True)
class PermissionSet:
    """An immutable set of permissions supporting monotonic narrowing.

    The CHERI design guarantee (S2.1) is that normal code execution can
    *shrink* capabilities but never grow them; accordingly the public API
    offers intersection and removal but no union with new permissions --
    adding permissions is only possible by constructing a fresh set, which
    the memory model does only when *creating* capabilities for new
    allocations.
    """

    perms: frozenset[Permission]

    @classmethod
    def of(cls, *perms: Permission) -> "PermissionSet":
        return cls(frozenset(perms))

    @classmethod
    def from_iterable(cls, perms: Iterable[Permission]) -> "PermissionSet":
        return cls(frozenset(perms))

    @classmethod
    def empty(cls) -> "PermissionSet":
        return cls(frozenset())

    def __contains__(self, perm: Permission) -> bool:
        return perm in self.perms

    def __iter__(self) -> Iterator[Permission]:
        return iter(sorted(self.perms, key=lambda p: p.name))

    def __len__(self) -> int:
        return len(self.perms)

    def has(self, *perms: Permission) -> bool:
        """True if every one of ``perms`` is granted."""
        return all(p in self.perms for p in perms)

    def without(self, *perms: Permission) -> "PermissionSet":
        """Monotonically remove permissions (used by intrinsics, S4.5)."""
        return PermissionSet(self.perms - frozenset(perms))

    def intersect(self, other: "PermissionSet") -> "PermissionSet":
        """Monotonic narrowing against a permission mask."""
        return PermissionSet(self.perms & other.perms)

    def is_subset_of(self, other: "PermissionSet") -> bool:
        return self.perms <= other.perms

    def describe(self) -> str:
        """Short string in the Appendix-A style, e.g. ``rwRW``.

        The appendix prints load/store/load-cap/store-cap as ``rwRW``; we
        print those four first and any further permissions after.
        """
        order = [Permission.LOAD, Permission.STORE, Permission.LOAD_CAP,
                 Permission.STORE_CAP, Permission.EXECUTE]
        head = "".join(str(p) for p in order if p in self.perms)
        rest = "".join(str(p) for p in self
                       if p not in order)
        return head + rest
