"""Abstract capabilities: the architecture-neutral capability API.

S4.1: "We defined abstract capabilities as a Coq module type which
defines an opaque capability type and operations on it."  This module is
the Python analogue: :class:`Capability` is the opaque type the memory
object model manipulates, and :class:`Architecture` packages every
implementation-defined aspect (S3.10) -- field widths, permission bit
positions, object-type width, compression parameters -- so the same
semantics runs over Morello-style and CHERIoT-style capability formats.

Capability values are immutable.  All mutating operations return new
values and respect the CHERI monotonicity property: normal operations can
narrow bounds and drop permissions but never widen or add them, and any
operation that would forge authority instead clears the tag (S2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.capability.concentrate import (
    CompressedBounds,
    CompressionParams,
    DecodedBounds,
)
from repro.capability.ghost import GhostState
from repro.capability.otype import OType
from repro.capability.permissions import Permission, PermissionSet


@dataclass(frozen=True)
class Architecture:
    """Implementation-defined capability parameters for one CHERI ISA.

    The paper (S3.10) restricts the scope of compression to address,
    flags, and the two bounds; permissions and object type are represented
    exactly.  Accordingly the byte encoding produced here stores the
    compressed B/T/IE fields plus exact perms/otype fields.
    """

    name: str
    compression: CompressionParams
    otype_width: int
    perm_order: tuple[Permission, ...]

    def __post_init__(self) -> None:
        p = self.compression
        used = (p.address_width + p.mantissa_width + p.top_width + 1
                + self.otype_width + len(self.perm_order))
        if used % 8 != 0:
            raise ValueError(
                f"capability fields of {self.name} total {used} bits, "
                "not a whole number of bytes")

    # -- sizes ----------------------------------------------------------
    # Sizes are fixed per (frozen) architecture and consulted on every
    # load, store, and layout query, so they are cached per instance.

    @cached_property
    def address_width(self) -> int:
        return self.compression.address_width

    @cached_property
    def address_mask(self) -> int:
        return self.compression.address_mask

    @cached_property
    def capability_size(self) -> int:
        """Size in bytes of the in-memory capability representation."""
        p = self.compression
        bits = (p.address_width + p.mantissa_width + p.top_width + 1
                + self.otype_width + len(self.perm_order))
        return bits // 8

    @cached_property
    def ptraddr_size(self) -> int:
        """Size in bytes of the ``ptraddr_t`` integer type (S3.10)."""
        return self.address_width // 8

    # -- construction ---------------------------------------------------

    def root_permissions(self) -> PermissionSet:
        memo = self.__dict__.get("_root_perms")
        if memo is None:
            memo = PermissionSet.from_iterable(self.perm_order)
            self.__dict__["_root_perms"] = memo
        return memo

    def root_capability(self) -> "Capability":
        """The maximal ("almighty") capability covering all of memory.

        Capabilities are immutable, so the one root value is shared: the
        allocator derives every allocation's capability from it.
        """
        memo = self.__dict__.get("_root_cap")
        if memo is None:
            memo = Capability(
                arch=self,
                address=0,
                bounds_fields=CompressedBounds.maximal(self.compression),
                perms=self.root_permissions(),
                otype=OType.unsealed(),
                tag=True,
            )
            self.__dict__["_root_cap"] = memo
        return memo

    def null_capability(self, address: int = 0) -> "Capability":
        """The NULL-derived capability: untagged, permissionless.

        Its bounds fields decode to the whole address space so that
        casting integers through ``(u)intptr_t`` keeps the address exact;
        authority is conveyed by the (absent) tag and (empty) perms.
        """
        bounds = CompressedBounds.maximal(self.compression)
        return Capability(
            arch=self,
            address=address & self.address_mask,
            bounds_fields=bounds,
            perms=PermissionSet.empty(),
            otype=OType.unsealed(),
            tag=False,
        )

    # -- representation bytes --------------------------------------------

    def encode(self, cap: "Capability") -> bytes:
        """The in-memory representation, excluding the out-of-band tag."""
        p = self.compression
        word = cap.address & p.address_mask
        pos = p.address_width
        word |= cap.bounds_fields.b_field << pos
        pos += p.mantissa_width
        word |= cap.bounds_fields.t_field << pos
        pos += p.top_width
        word |= (1 if cap.bounds_fields.internal_exponent else 0) << pos
        pos += 1
        word |= (cap.otype.value & ((1 << self.otype_width) - 1)) << pos
        pos += self.otype_width
        for i, perm in enumerate(self.perm_order):
            if perm in cap.perms:
                word |= 1 << (pos + i)
        return word.to_bytes(self.capability_size, "little")

    def decode(self, data: bytes, tag: bool,
               ghost: GhostState = GhostState()) -> "Capability":
        """Rebuild a capability from representation bytes plus its tag."""
        if len(data) != self.capability_size:
            raise ValueError(
                f"capability representation must be {self.capability_size}"
                f" bytes, got {len(data)}")
        p = self.compression
        word = int.from_bytes(data, "little")
        address = word & p.address_mask
        pos = p.address_width
        b_field = (word >> pos) & ((1 << p.mantissa_width) - 1)
        pos += p.mantissa_width
        t_field = (word >> pos) & ((1 << p.top_width) - 1)
        pos += p.top_width
        internal = bool((word >> pos) & 1)
        pos += 1
        otype = OType((word >> pos) & ((1 << self.otype_width) - 1))
        pos += self.otype_width
        perm_bits = word >> pos
        # Permission sets are immutable and drawn from a small universe,
        # so decode shares one PermissionSet per distinct bit pattern.
        memo = self.__dict__.setdefault("_permset_memo", {})
        perms = memo.get(perm_bits)
        if perms is None:
            perms = PermissionSet.from_iterable(
                perm for i, perm in enumerate(self.perm_order)
                if (perm_bits >> i) & 1)
            memo[perm_bits] = perms
        return Capability(
            arch=self,
            address=address,
            bounds_fields=CompressedBounds(p, b_field, t_field, internal),
            perms=perms,
            otype=otype,
            tag=tag,
            ghost=ghost,
        )

    # -- portability envelope ---------------------------------------------

    def portable_representable_limits(self, base: int,
                                      length: int) -> tuple[int, int]:
        """The conservative cross-architecture envelope of [45, S4.3.5].

        "pointers are guaranteed representable if within the greater of
        1KiB and 1/8 of the object size below the lower bound, and the
        greater of 2KiB and 1/4 of the object size above the upper bound."
        This is representability option (i) of S3.3; the architectural
        notion (option (ii), the default) is
        :meth:`Capability.representable_limits`.
        """
        below = max(1024, length // 8)
        above = max(2048, length // 4)
        lo = max(0, base - below)
        hi = min(1 << self.address_width, base + length + above)
        return lo, hi


@dataclass(frozen=True)
class Capability:
    """An abstract CHERI capability value.

    Bounds are stored compressed and re-derived from the current address,
    exactly as in hardware; ``ghost`` carries the abstract machine's
    per-value ghost bits (S3.3, S3.5) and is ignored in hardware mode.
    """

    arch: Architecture
    address: int
    bounds_fields: CompressedBounds
    perms: PermissionSet
    otype: OType
    tag: bool
    ghost: GhostState = field(default_factory=GhostState)

    # -- derived views -----------------------------------------------------

    def decoded(self) -> DecodedBounds:
        """Decode the bounds relative to the current address.

        Both inputs are frozen, so the result is memoised per instance;
        every clone (``with_address`` etc.) builds a fresh instance and
        therefore re-derives its own bounds, exactly as hardware does.
        """
        memo = self.__dict__.get("_decoded_memo")
        if memo is None:
            memo = self.bounds_fields.decode(self.address)
            self.__dict__["_decoded_memo"] = memo
        return memo

    @property
    def base(self) -> int:
        return self.decoded().base

    @property
    def top(self) -> int:
        return self.decoded().top

    @property
    def length(self) -> int:
        return self.decoded().length

    @property
    def is_sealed(self) -> bool:
        return self.otype.is_sealed

    @property
    def is_null_derived(self) -> bool:
        """True for values derived from NULL (no tag, no authority)."""
        return not self.tag and len(self.perms) == 0

    def is_null(self) -> bool:
        """The NULL capability itself (untagged, authority-free, addr 0)."""
        return self.is_null_derived and self.address == 0

    def in_bounds(self, address: int | None = None, size: int = 1) -> bool:
        """Footprint check ``base <= a && a + size <= top`` (S4.3 (1e))."""
        addr = self.address if address is None else address
        return self.decoded().contains(addr, size)

    def has_perm(self, *perms: Permission) -> bool:
        return self.perms.has(*perms)

    # -- address movement ---------------------------------------------------

    def representable_limits(self) -> tuple[int, int]:
        return self.bounds_fields.representable_limits(self.address)

    def with_address(self, new_address: int) -> "Capability":
        """Hardware semantics of moving the address (pointer arithmetic).

        If the new address is outside the representable window, "the
        resulting address will be as expected, but the tag will be
        cleared and the bounds may have been changed" (S3.2).  Modifying
        a sealed capability likewise clears the tag.
        """
        new_address &= self.arch.address_mask
        if new_address == self.address and not self.is_sealed:
            return self
        representable = self.bounds_fields.is_representable(
            self.address, new_address)
        tag = self.tag and representable and not self.is_sealed
        return Capability(self.arch, new_address, self.bounds_fields,
                          self.perms, self.otype, tag, self.ghost)

    def with_address_ghost(self, new_address: int) -> "Capability":
        """Abstract-machine semantics of S3.3 option (c).

        The address always takes the requested value; a non-representable
        excursion is recorded in ghost state (both bits: the tag and the
        bounds become unspecified), making later memory access UB but
        keeping the integer value defined.  The ghost bits are sticky so
        that optimisations may eliminate the excursion.
        """
        new_address &= self.arch.address_mask
        if new_address == self.address and not self.is_sealed:
            return self
        representable = self.bounds_fields.is_representable(
            self.address, new_address)
        ghost = self.ghost
        if not representable:
            ghost = ghost.with_tag_unspecified().with_bounds_unspecified()
        tag = self.tag and not self.is_sealed
        return Capability(self.arch, new_address, self.bounds_fields,
                          self.perms, self.otype, tag, ghost)

    # -- monotonic narrowing ------------------------------------------------

    def set_bounds(self, base: int, length: int) -> tuple["Capability", bool]:
        """``CSetBounds``: narrow bounds to ``[base, base+length)``.

        Returns the new capability and whether the requested bounds were
        exactly representable.  Requesting bounds outside the current
        bounds is not an authority the capability conveys, so the result's
        tag is cleared (the CHERI-RISC-V v9 behaviour the paper's S5.2
        notes the ISA is converging on, rather than trapping).
        """
        fields_, exact = CompressedBounds.encode(
            self.arch.compression, base, length)
        monotonic = (self.decoded().contains(base, length)
                     if length > 0 else
                     self.decoded().contains(base, 0) or base == self.top)
        tag = self.tag and monotonic and not self.is_sealed
        cap = Capability(self.arch, base, fields_, self.perms,
                         self.otype, tag, self.ghost)
        return cap, exact

    def without_perms(self, *perms: Permission) -> "Capability":
        return replace(self, perms=self.perms.without(*perms))

    def with_perms_masked(self, mask: PermissionSet) -> "Capability":
        return replace(self, perms=self.perms.intersect(mask))

    # -- sealing --------------------------------------------------------

    def sealed_with(self, otype: OType) -> "Capability":
        """Seal with the given object type (authority checked by caller)."""
        if self.is_sealed:
            return replace(self, tag=False)
        return replace(self, otype=otype)

    def unsealed(self) -> "Capability":
        return replace(self, otype=OType.unsealed())

    # -- comparisons ----------------------------------------------------

    def equal_exact(self, other: "Capability") -> bool:
        """Bitwise equality of representations, including the tag (S3.6).

        Ghost-state handling (unspecified results when either side has
        unspecified fields) is the memory model's job; this is the raw
        architectural comparison.
        """
        return (self.tag == other.tag
                and self.arch.encode(self) == other.arch.encode(other))

    # -- ghost plumbing ----------------------------------------------------

    def with_ghost(self, ghost: GhostState) -> "Capability":
        return replace(self, ghost=ghost)

    def merge_ghost(self, ghost: GhostState) -> "Capability":
        return replace(self, ghost=self.ghost.merge(ghost))

    def with_tag(self, tag: bool) -> "Capability":
        return replace(self, tag=tag)

    # -- display ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.decoded()
        state = "" if self.tag else " (notag)"
        ghost = "" if self.ghost.is_clean else f" ghost[{self.ghost.describe()}]"
        return (f"<cap {self.address:#x} [{self.perms.describe()},"
                f"{d.base:#x}-{d.top:#x}]{state}{ghost}>")
