"""A CHERIoT-style 64+1-bit capability format for 32-bit systems.

S3.10 / S5.4: CHERIoT extends RISC-V RV32E with 64+1-bit capabilities,
"uses a different capability encoding scheme from 32-bit CHERI-RISC-V and
provides byte-granularity bounds for any object up to 511 bytes".

We model it as a second instantiation of the same parametric compression:
a 32-bit address with an 11-bit bottom mantissa gives byte-exact bounds
for lengths up to ``2**9 - 1 = 511`` bytes, matching the published
granularity.  The permission set is the compressed embedded profile (no
separate seal/unseal/store-local bits in the encoding; sealing authority
is modelled as always-granted for the RTOS'd allocator).

Having two live architectures is what keeps the semantics honest about
which parts are implementation-defined (S3.10); the cross-architecture
tests and the representability benchmark (DESIGN.md E6) run over both.
"""

from __future__ import annotations

from repro.capability.abstract import Architecture
from repro.capability.concentrate import CompressionParams
from repro.capability.permissions import Permission

CHERIOT_COMPRESSION = CompressionParams(
    name="cheriot",
    address_width=32,
    mantissa_width=11,
    exponent_low_bits=3,
)

#: Permission bit order (LSB first) for the 7-bit embedded perms field.
CHERIOT_PERMS: tuple[Permission, ...] = (
    Permission.GLOBAL,
    Permission.LOAD,
    Permission.STORE,
    Permission.EXECUTE,
    Permission.LOAD_CAP,
    Permission.STORE_CAP,
    Permission.SYSTEM,
)

CHERIOT = Architecture(
    name="cheriot",
    compression=CHERIOT_COMPRESSION,
    otype_width=4,
    perm_order=CHERIOT_PERMS,
)
"""The CHERIoT-style architecture instance: 64-bit capabilities + tag."""

assert CHERIOT.capability_size == 8, "CHERIoT capabilities are 64 bits"
assert CHERIOT_COMPRESSION.max_exact_length == 511, (
    "CHERIoT-style format must be byte-granular up to 511 bytes")
