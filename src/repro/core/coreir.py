"""The Core IR: an explicit-effect instruction language for CHERI C.

This is the repo's analogue of Cerberus's *Core* language (the paper,
S2.2): the typed AST is *elaborated* (:mod:`repro.core.elaborate`) into
flat per-function instruction lists in which evaluation order, implicit
integer-rank conversions, lvalue decay, and the explicit S4.4
capability-derivation step are all visible as individual ops.  Control
flow is structured jumps over the flat list -- there is no hidden host
recursion and no exception-based ``break``/``continue``/``return``; the
iterative :class:`~repro.core.coreeval.CoreEvaluator` runs the ops with
an explicit frame stack.

Op taxonomy (docs/SEMANTICS.md has the rationale per group):

``Charge``
    pure step-metering op for an interior AST node (leaf ops carry
    their own charge flag), keeping Core step counts identical to the
    AST walker's per-node counts;
``PushInt / PushString / LoadIdent / TypeInfo``
    value creation (literals, identifier loads with array/function
    decay, ``sizeof``/``alignof``/``offsetof``);
``LvIdent / LvDeref / LvIndex / LvArrow / LvDot / LvString / LvError``
    lvalue computation -- each leaves an ``(ctype, pointer)`` pair on
    the operand stack, making every address computation explicit;
``LoadFrom / StoreValue / StoreCompound / LoadForAssign / InitStore /
GlobalStore``
    the explicit memory effects: every load and store in a Core listing
    is one of these ops (plus the intrinsic calls);
``ConvertTo / UnaryArith / BinOp / IncDec / NotOp / SizeofOf``
    conversions and arithmetic; integer arithmetic ops perform the
    explicit S4.4 derivation step on capability-carrying values;
``Jump / JumpIfFalse / JumpIfTrue / SwitchDispatch``
    structured control flow lowered to jumps over the flat op list;
``PushScope / PopScope / PopScopes``
    lexical scope management (``break``/``continue`` compile to a
    statically-computed ``PopScopes`` + ``Jump``);
``DeclAlloc / StaticCheck / StaticBind``
    object creation for local declarations and function-local statics;
``ResolveCall / ResolveTarget / Invoke / Ret / Halt``
    the calling convention: resolution (including function-pointer
    capability checks) happens *before* argument evaluation, exactly as
    in the AST walker; ``Invoke`` pushes a frame, ``Ret`` pops one --
    call depth is bounded by the frame stack, not the host stack;
``VaStart / VaCopy / VaArgOp``
    the variadic-argument protocol;
``BuildArray / BuildStruct / BuildUnion / PushStrArray / PushZero``
    initialiser composition;
``RaiseOp``
    runtime-raising op for programs the AST walker only rejects *when
    executed* (elaboration is total: it never rejects parser output).
"""

from __future__ import annotations

from repro.core import builtins as builtin_mod
from repro.core.interp import Binding, CHAR_CONST
from repro.ctypes.types import (
    ArrayT, FuncT, IKind, INT, Integer, Pointer, SIZE_T, StructT, UnionT,
    VOID, Void,
)
from repro.errors import CTypeError, UB, UndefinedBehaviour
from repro.memory.allocation import AllocKind
from repro.memory.derivation import derive
from repro.memory.values import (
    IntegerValue, MVArray, MVInteger, MVPointer, MVStruct, MVUnion,
    MVUnspecified,
)


class Op:
    """One Core instruction.  ``charge`` marks the ops that count as an
    evaluation step (exactly one charged op per AST-walker ``eval``/
    ``exec_stmt`` call, so budgets and traces agree byte-for-byte
    across evaluators).  ``run`` returns True when it switched the
    active frame (call/return)."""

    __slots__ = ("line", "charge", "id")
    name = "op"

    def __init__(self, line: int = 0, *, charge: bool = False) -> None:
        self.line = line
        self.charge = charge
        self.id = ""

    def operands(self) -> str:
        return ""

    def show(self) -> str:
        detail = self.operands()
        return f"{self.name:<14s}{' ' + detail if detail else ''}"

    def run(self, ev, frame):  # pragma: no cover - abstract
        raise NotImplementedError(self.name)


# ---------------------------------------------------------------------------
# Step metering
# ---------------------------------------------------------------------------


class Charge(Op):
    """Pre-order step charge for an interior AST node."""

    __slots__ = ("node",)
    name = "charge"

    def __init__(self, node: str, line: int = 0) -> None:
        super().__init__(line, charge=True)
        self.node = node

    def operands(self) -> str:
        return self.node

    def run(self, ev, frame):
        return False


# ---------------------------------------------------------------------------
# Value creation
# ---------------------------------------------------------------------------


class PushInt(Op):
    __slots__ = ("ctype", "value")
    name = "push_int"

    def __init__(self, ctype, value: int, line: int = 0, *,
                 charge: bool = True) -> None:
        super().__init__(line, charge=charge)
        self.ctype = ctype
        self.value = value

    def operands(self) -> str:
        return f"{self.value} : {self.ctype}"

    def run(self, ev, frame):
        frame.stack.append(MVInteger(self.ctype,
                                     IntegerValue.of_int(self.value)))
        return False


class PushString(Op):
    __slots__ = ("text",)
    name = "push_string"

    def __init__(self, text: str, line: int = 0) -> None:
        super().__init__(line, charge=True)
        self.text = text

    def operands(self) -> str:
        return repr(self.text)

    def run(self, ev, frame):
        ptr = ev._string_ptr(self.text)
        frame.stack.append(MVPointer(Pointer(CHAR_CONST), ptr))
        return False


class LoadIdent(Op):
    """Rvalue identifier: function designators decay to function
    pointers, arrays decay to element pointers, objects are loaded."""

    __slots__ = ("expr",)
    name = "load_ident"

    def __init__(self, expr, line: int = 0) -> None:
        super().__init__(line, charge=True)
        self.expr = expr

    def operands(self) -> str:
        return self.expr.name

    def run(self, ev, frame):
        frame.stack.append(ev._eval_ident(self.expr))
        return False


class TypeInfo(Op):
    """``sizeof(T)`` / ``alignof(T)`` / ``offsetof(T, member)``."""

    __slots__ = ("kind", "ctype", "member")
    name = "type_info"

    def __init__(self, kind: str, ctype, member: str = "",
                 line: int = 0) -> None:
        super().__init__(line, charge=True)
        self.kind = kind
        self.ctype = ctype
        self.member = member

    def operands(self) -> str:
        suffix = f", {self.member}" if self.member else ""
        return f"{self.kind}({self.ctype}{suffix})"

    def run(self, ev, frame):
        if self.kind == "sizeof":
            result = ev.layout.sizeof(self.ctype)
        elif self.kind == "alignof":
            result = ev.layout.alignof(self.ctype)
        else:
            if not isinstance(self.ctype, StructT):
                raise CTypeError("offsetof requires a struct/union type")
            result = ev.layout.offsetof(self.ctype, self.member)
        frame.stack.append(MVInteger(SIZE_T, IntegerValue.of_int(result)))
        return False


class SizeofOf(Op):
    """``sizeof(expr)``: the compile-time part of ``type_of`` is the
    pre-elaborated ``steps`` chain; a non-static innermost operand was
    elaborated as ordinary rvalue ops whose result this op consumes
    (matching the AST walker's evaluate-and-take-``.ctype`` fallback)."""

    __slots__ = ("leaf", "steps")
    name = "sizeof_of"

    def __init__(self, leaf, steps, line: int = 0) -> None:
        super().__init__(line)
        self.leaf = leaf      # ("static", ctype) | ("ident", name) | ("eval",)
        self.steps = steps    # applied innermost-out

    def operands(self) -> str:
        kind = self.leaf[0]
        detail = "" if kind == "eval" else f" {self.leaf[1]}"
        chain = "".join(f" .{s[0]}" for s in self.steps)
        return f"{kind}{detail}{chain}"

    def run(self, ev, frame):
        kind = self.leaf[0]
        if kind == "eval":
            ctype = frame.stack.pop().ctype
        elif kind == "ident":
            binding = ev._lookup(self.leaf[1])
            if binding is None:
                raise CTypeError(
                    f"undeclared identifier {self.leaf[1]!r}")
            ctype = binding.ctype
        else:
            ctype = self.leaf[1]
        for step in self.steps:
            tag = step[0]
            if tag == "deref":
                if isinstance(ctype, Pointer):
                    ctype = ctype.pointee
                elif isinstance(ctype, ArrayT):
                    ctype = ctype.elem
                else:
                    raise CTypeError("dereference of non-pointer in sizeof")
            elif tag == "addr":
                ctype = Pointer(ctype)
            elif tag == "index":
                if isinstance(ctype, ArrayT):
                    ctype = ctype.elem
                elif isinstance(ctype, Pointer):
                    ctype = ctype.pointee
                else:
                    raise CTypeError("index of non-pointer in sizeof")
            else:  # ("member", name, arrow)
                if step[2] and isinstance(ctype, Pointer):
                    ctype = ctype.pointee
                if isinstance(ctype, StructT):
                    ctype = ctype.field_type(step[1])
                else:
                    raise CTypeError("member of non-struct in sizeof")
        frame.stack.append(MVInteger(
            SIZE_T, IntegerValue.of_int(ev.layout.sizeof(ctype))))
        return False


# ---------------------------------------------------------------------------
# Lvalues
# ---------------------------------------------------------------------------


class LvIdent(Op):
    __slots__ = ("expr",)
    name = "lv_ident"

    def __init__(self, expr, line: int = 0) -> None:
        super().__init__(line)
        self.expr = expr

    def operands(self) -> str:
        return self.expr.name

    def run(self, ev, frame):
        binding = ev._lookup(self.expr.name)
        if binding is None:
            raise CTypeError(f"undeclared identifier {self.expr.name!r} "
                             f"(line {self.expr.line})")
        frame.stack.append((binding.ctype, binding.ptr))
        return False


class LvDeref(Op):
    name = "lv_deref"
    __slots__ = ()

    def run(self, ev, frame):
        value = frame.stack.pop()
        ctype, ptr = ev._as_pointer(value, self.line)
        if isinstance(ctype, Pointer):
            frame.stack.append((ctype.pointee, ptr))
            return False
        raise CTypeError(f"cannot dereference {value.ctype}")


class LvIndex(Op):
    name = "lv_index"
    __slots__ = ()

    def run(self, ev, frame):
        index = frame.stack.pop()
        base = frame.stack.pop()
        ctype, ptr = ev._as_pointer(base, self.line)
        if not isinstance(ctype, Pointer):
            raise CTypeError(f"cannot index {base.ctype}")
        n = ev._int_of(index, self.line)
        shifted = ev.model.array_shift(ptr, ctype.pointee, n)
        frame.stack.append((ctype.pointee, shifted))
        return False


class LvArrow(Op):
    __slots__ = ("member",)
    name = "lv_arrow"

    def __init__(self, member: str, line: int = 0) -> None:
        super().__init__(line)
        self.member = member

    def operands(self) -> str:
        return self.member

    def run(self, ev, frame):
        base = frame.stack.pop()
        btype, bptr = ev._as_pointer(base, self.line)
        if not isinstance(btype, Pointer) or \
                not isinstance(btype.pointee, StructT):
            raise CTypeError(f"-> on non-struct-pointer {base.ctype}")
        stype = btype.pointee
        member_t = stype.field_type(self.member)
        frame.stack.append(
            (member_t, ev.model.member_shift(bptr, stype, self.member)))
        return False


class LvDot(Op):
    __slots__ = ("member",)
    name = "lv_dot"

    def __init__(self, member: str, line: int = 0) -> None:
        super().__init__(line)
        self.member = member

    def operands(self) -> str:
        return self.member

    def run(self, ev, frame):
        stype, bptr = frame.stack.pop()
        if not isinstance(stype, StructT):
            raise CTypeError(f". on non-struct {stype}")
        member_t = stype.field_type(self.member)
        frame.stack.append(
            (member_t, ev.model.member_shift(bptr, stype, self.member)))
        return False


class LvString(Op):
    __slots__ = ("text",)
    name = "lv_string"

    def __init__(self, text: str, line: int = 0) -> None:
        super().__init__(line)
        self.text = text

    def operands(self) -> str:
        return repr(self.text)

    def run(self, ev, frame):
        ptr = ev._string_ptr(self.text)
        frame.stack.append(
            (ArrayT(elem=CHAR_CONST, length=len(self.text) + 1), ptr))
        return False


class LvError(Op):
    __slots__ = ("message",)
    name = "lv_error"

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(line)
        self.message = message

    def operands(self) -> str:
        return repr(self.message)

    def run(self, ev, frame):
        raise CTypeError(self.message)


# ---------------------------------------------------------------------------
# Memory effects
# ---------------------------------------------------------------------------


class LoadFrom(Op):
    """Load through an lvalue with array/function-to-pointer decay."""

    name = "load"
    __slots__ = ()

    def run(self, ev, frame):
        ctype, ptr = frame.stack.pop()
        frame.stack.append(ev._load_decayed(ctype, ptr))
        return False


class AddrOf(Op):
    name = "addr_of"
    __slots__ = ()

    def run(self, ev, frame):
        ctype, ptr = frame.stack.pop()
        frame.stack.append(MVPointer(Pointer(ctype), ptr))
        return False


class AddrFunc(Op):
    """``&f`` on a function designator (no lvalue is formed)."""

    __slots__ = ("expr",)
    name = "addr_func"

    def __init__(self, expr, line: int = 0) -> None:
        super().__init__(line)
        self.expr = expr

    def operands(self) -> str:
        return self.expr.name

    def run(self, ev, frame):
        frame.stack.append(ev._eval_ident(self.expr))
        return False


class LoadForAssign(Op):
    """Compound assignment: load the old value, keeping the lvalue."""

    name = "load_old"
    __slots__ = ()

    def run(self, ev, frame):
        ctype, ptr = frame.stack[-1]
        frame.stack.append(ev._load_decayed(ctype, ptr))
        return False


class StoreValue(Op):
    name = "store"
    __slots__ = ()

    def run(self, ev, frame):
        value = frame.stack.pop()
        ctype, ptr = frame.stack.pop()
        converted = ev.convert(value, ctype)
        if isinstance(ctype, UnionT):
            raise CTypeError("whole-union assignment is not supported")
        ev.model.store(ctype, ptr, converted)
        frame.stack.append(converted)
        return False


class StoreCompound(Op):
    __slots__ = ("op",)
    name = "store_op"

    def __init__(self, op: str, line: int = 0) -> None:
        super().__init__(line)
        self.op = op

    def operands(self) -> str:
        return self.op

    def run(self, ev, frame):
        rhs = frame.stack.pop()
        old = frame.stack.pop()
        ctype, ptr = frame.stack.pop()
        value = ev.binary_op(self.op, old, rhs, self.line)
        converted = ev.convert(value, ctype)
        if isinstance(ctype, UnionT):
            raise CTypeError("whole-union assignment is not supported")
        ev.model.store(ctype, ptr, converted)
        frame.stack.append(converted)
        return False


class InitStore(Op):
    """Store an initialiser value through the lvalue beneath it."""

    name = "init_store"
    __slots__ = ()

    def run(self, ev, frame):
        value = frame.stack.pop()
        ctype, ptr = frame.stack.pop()
        ev.model.store(ctype, ptr, value, initialising=True)
        return False


class GlobalStore(Op):
    """Store a global's initialiser (globals-phase only)."""

    __slots__ = ("name_",)
    name = "global_store"

    def __init__(self, name_: str, line: int = 0) -> None:
        super().__init__(line)
        self.name_ = name_

    def operands(self) -> str:
        return self.name_

    def run(self, ev, frame):
        binding = ev.globals[self.name_]
        value = frame.stack.pop()
        ev.model.store(binding.ctype, binding.ptr, value, initialising=True)
        return False


# ---------------------------------------------------------------------------
# Conversions and arithmetic
# ---------------------------------------------------------------------------


class ConvertTo(Op):
    __slots__ = ("ctype", "explicit")
    name = "convert"

    def __init__(self, ctype, explicit: bool, line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype
        self.explicit = explicit

    def operands(self) -> str:
        return f"{self.ctype}{' explicit' if self.explicit else ''}"

    def run(self, ev, frame):
        frame.stack.append(ev.convert(frame.stack.pop(), self.ctype,
                                      explicit=self.explicit))
        return False


class NotOp(Op):
    name = "not"
    __slots__ = ()

    def run(self, ev, frame):
        value = frame.stack.pop()
        frame.stack.append(MVInteger(
            INT, IntegerValue.of_int(0 if ev.truthy(value) else 1)))
        return False


class UnaryArith(Op):
    """``- + ~`` with promotion and the explicit S4.4 derivation."""

    __slots__ = ("op",)
    name = "unary"

    def __init__(self, op: str, line: int = 0) -> None:
        super().__init__(line)
        self.op = op

    def operands(self) -> str:
        return self.op

    def run(self, ev, frame):
        value = frame.stack.pop()
        if isinstance(value, MVUnspecified):
            frame.stack.append(MVUnspecified(value.ctype))
            return False
        if not isinstance(value, MVInteger):
            raise CTypeError(f"unary {self.op} on {value.ctype}")
        promoted = ev.integer_promote(value)
        kind = promoted.ctype.kind
        raw = promoted.ival.value()
        if self.op == "-":
            result = -raw
        elif self.op == "+":
            result = raw
        elif self.op == "~":
            result = ~raw
        else:
            raise CTypeError(f"unhandled unary {self.op}")
        result = ev._finish_arith(kind, result, self.line)
        ival = derive(promoted.ival, None, result,
                      signed=kind.is_signed, hardware=ev.model.hardware,
                      model=ev.model)
        frame.stack.append(MVInteger(promoted.ctype, ival))
        return False


class BinOp(Op):
    __slots__ = ("op",)
    name = "binop"

    def __init__(self, op: str, line: int = 0) -> None:
        super().__init__(line)
        self.op = op

    def operands(self) -> str:
        return self.op

    def run(self, ev, frame):
        rhs = frame.stack.pop()
        lhs = frame.stack.pop()
        frame.stack.append(ev.binary_op(self.op, lhs, rhs, self.line))
        return False


class IncDec(Op):
    __slots__ = ("op", "postfix")
    name = "incdec"

    def __init__(self, op: str, postfix: bool, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.postfix = postfix

    def operands(self) -> str:
        return f"{'post' if self.postfix else 'pre'} {self.op}"

    def run(self, ev, frame):
        ctype, ptr = frame.stack.pop()
        old = ev.model.load(ctype, ptr)
        delta = 1 if self.op == "++" else -1
        if isinstance(ctype, Pointer):
            if not isinstance(old, MVPointer):
                raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                         "++/-- on uninitialised pointer")
            moved = ev.model.array_shift(old.ptr, ctype.pointee, delta)
            new = MVPointer(ctype, moved)
        else:
            if not isinstance(old, MVInteger):
                raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                         "++/-- on uninitialised value")
            kind = old.ctype.kind
            result = ev._finish_arith(kind, old.ival.value() + delta,
                                      self.line)
            new = MVInteger(old.ctype,
                            derive(old.ival, None, result,
                                   signed=kind.is_signed,
                                   hardware=ev.model.hardware,
                                   model=ev.model))
        ev.model.store(ctype, ptr, new)
        frame.stack.append(old if self.postfix else new)
        return False


class PopValue(Op):
    name = "pop"
    __slots__ = ()

    def run(self, ev, frame):
        frame.stack.pop()
        return False


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Jump(Op):
    __slots__ = ("target",)
    name = "jump"

    def __init__(self, target: int = -1, line: int = 0) -> None:
        super().__init__(line)
        self.target = target

    def operands(self) -> str:
        return f"-> {self.target}"

    def run(self, ev, frame):
        frame.pc = self.target
        return False


class JumpIfFalse(Op):
    __slots__ = ("target",)
    name = "jump_false"

    def __init__(self, target: int = -1, line: int = 0) -> None:
        super().__init__(line)
        self.target = target

    def operands(self) -> str:
        return f"-> {self.target}"

    def run(self, ev, frame):
        if not ev.truthy(frame.stack.pop()):
            frame.pc = self.target
        return False


class JumpIfTrue(Op):
    __slots__ = ("target",)
    name = "jump_true"

    def __init__(self, target: int = -1, line: int = 0) -> None:
        super().__init__(line)
        self.target = target

    def operands(self) -> str:
        return f"-> {self.target}"

    def run(self, ev, frame):
        if ev.truthy(frame.stack.pop()):
            frame.pc = self.target
        return False


class SwitchDispatch(Op):
    """Pop the selector, pick a case label, push the switch scope.
    No match and no default jumps straight past the switch without
    pushing a scope (exactly as the AST walker returns early)."""

    __slots__ = ("cases", "stmt_targets", "end")
    name = "switch"

    def __init__(self, cases, line: int = 0) -> None:
        super().__init__(line)
        self.cases = cases            # tuple of (value | None, stmt index)
        self.stmt_targets = ()        # stmt index -> pc (finalized)
        self.end = -1

    def operands(self) -> str:
        arms = ", ".join(
            f"{'default' if v is None else v} -> {self.stmt_targets[i]}"
            for v, i in self.cases) if self.stmt_targets else "?"
        return f"[{arms}] else -> {self.end}"

    def run(self, ev, frame):
        value = frame.stack.pop()
        if isinstance(value, MVUnspecified):
            if not ev.model.hardware:
                raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                         "switch on unspecified value")
            selector = 0
        else:
            selector = ev._int_of(value, self.line)
        start = None
        default = None
        for case_value, case_index in self.cases:
            if case_value is None:
                default = case_index
            elif case_value == selector:
                start = case_index
                break
        if start is None:
            start = default
        if start is None:
            frame.pc = self.end
            return False
        frame.push()
        frame.pc = self.stmt_targets[start]
        return False


class PushScope(Op):
    name = "scope_push"
    __slots__ = ()

    def run(self, ev, frame):
        frame.push()
        return False


class PopScope(Op):
    name = "scope_pop"
    __slots__ = ()

    def run(self, ev, frame):
        frame.pop()
        return False


class PopScopes(Op):
    """``break``/``continue``: unwind a statically-known scope depth."""

    __slots__ = ("count",)
    name = "scope_popn"

    def __init__(self, count: int, line: int = 0) -> None:
        super().__init__(line)
        self.count = count

    def operands(self) -> str:
        return str(self.count)

    def run(self, ev, frame):
        for _ in range(self.count):
            frame.pop()
        return False


class RaiseOp(Op):
    """Raise a runtime error the AST walker raises mid-evaluation;
    elaboration is total, so rejection happens at the same execution
    point (and is charged identically) rather than at compile time."""

    __slots__ = ("exc", "args")
    name = "raise"

    def __init__(self, exc, args: tuple = (), line: int = 0) -> None:
        super().__init__(line)
        self.exc = exc
        self.args = args

    def operands(self) -> str:
        detail = ", ".join(repr(a) for a in self.args)
        return f"{self.exc.__name__}({detail})"

    def run(self, ev, frame):
        raise self.exc(*self.args)


# ---------------------------------------------------------------------------
# Declarations and initialisers
# ---------------------------------------------------------------------------


class DeclAlloc(Op):
    """Allocate + bind a local object (binding precedes initialisation,
    as in the AST walker: ``int x = x;`` sees the new ``x``)."""

    __slots__ = ("decl", "readonly", "push_lv")
    name = "decl"

    def __init__(self, decl, readonly: bool, push_lv: bool,
                 line: int = 0) -> None:
        super().__init__(line)
        self.decl = decl
        self.readonly = readonly
        self.push_lv = push_lv

    def operands(self) -> str:
        return f"{self.decl.name} : {self.decl.ctype}"

    def run(self, ev, frame):
        decl = self.decl
        ptr = ev.model.allocate_object(
            decl.ctype, AllocKind.STACK, decl.name, readonly=self.readonly)
        binding = Binding(decl.ctype, ptr,
                          ptr.prov.ident if not ptr.prov.is_empty else 0)
        frame.bind(decl.name, binding)
        frame.allocs.append(binding.alloc_id)
        if self.push_lv:
            frame.stack.append((decl.ctype, ptr))
        return False


class StaticCheck(Op):
    """Function-local static: on first execution allocate and fall
    through to the (one-shot) initialiser ops; afterwards jump straight
    to the ``StaticBind``."""

    __slots__ = ("key", "decl", "bind_target")
    name = "static"

    def __init__(self, key, decl, line: int = 0) -> None:
        super().__init__(line)
        self.key = key
        self.decl = decl
        self.bind_target = -1

    def operands(self) -> str:
        return f"{self.key[0]}.{self.key[1]} bound -> {self.bind_target}"

    def run(self, ev, frame):
        if self.key in ev.statics:
            frame.pc = self.bind_target
            return False
        decl = self.decl
        ptr = ev.model.allocate_object(
            decl.ctype, AllocKind.GLOBAL, decl.name,
            readonly=decl.ctype.const)
        binding = Binding(decl.ctype, ptr,
                          ptr.prov.ident if not ptr.prov.is_empty else 0)
        ev.statics[self.key] = binding
        frame.stack.append((decl.ctype, binding.ptr))
        return False


class StaticBind(Op):
    __slots__ = ("key", "name_")
    name = "static_bind"

    def __init__(self, key, name_: str, line: int = 0) -> None:
        super().__init__(line)
        self.key = key
        self.name_ = name_

    def operands(self) -> str:
        return self.name_

    def run(self, ev, frame):
        frame.bind(self.name_, ev.statics[self.key])
        return False


class PushZero(Op):
    __slots__ = ("ctype",)
    name = "push_zero"

    def __init__(self, ctype, line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype

    def operands(self) -> str:
        return str(self.ctype)

    def run(self, ev, frame):
        frame.stack.append(ev.zero_value(self.ctype))
        return False


class PushStrArray(Op):
    """``char s[] = "...";``: string-literal array initialiser."""

    __slots__ = ("ctype", "text")
    name = "push_strarr"

    def __init__(self, ctype, text: str, line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype
        self.text = text

    def operands(self) -> str:
        return f"{self.text!r} : {self.ctype}"

    def run(self, ev, frame):
        data = self.text.encode("latin-1") + b"\x00"
        ctype = self.ctype
        length = ctype.length or len(data)
        elems = []
        for i in range(length):
            byte = data[i] if i < len(data) else 0
            elems.append(MVInteger(ctype.elem, IntegerValue.of_int(byte)))
        frame.stack.append(MVArray(ctype, tuple(elems)))
        return False


class BuildArray(Op):
    __slots__ = ("ctype", "length", "given")
    name = "build_array"

    def __init__(self, ctype, length: int, given: int,
                 line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype
        self.length = length
        self.given = given

    def operands(self) -> str:
        return f"{self.ctype} ({self.given}/{self.length} given)"

    def run(self, ev, frame):
        stack = frame.stack
        elems = stack[len(stack) - self.given:] if self.given else []
        del stack[len(stack) - self.given:]
        for _ in range(self.length - self.given):
            elems.append(ev.zero_value(self.ctype.elem))
        stack.append(MVArray(self.ctype, tuple(elems)))
        return False


class BuildStruct(Op):
    __slots__ = ("ctype", "given")
    name = "build_struct"

    def __init__(self, ctype, given: int, line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype
        self.given = given

    def operands(self) -> str:
        return f"{self.ctype} ({self.given} given)"

    def run(self, ev, frame):
        stack = frame.stack
        values = stack[len(stack) - self.given:] if self.given else []
        del stack[len(stack) - self.given:]
        fields = self.ctype.fields or ()
        members = []
        for i, f in enumerate(fields):
            if i < self.given:
                members.append((f.name, values[i]))
            else:
                members.append((f.name, ev.zero_value(f.ctype)))
        stack.append(MVStruct(self.ctype, tuple(members)))
        return False


class BuildUnion(Op):
    """Pop the first initialiser (already elaborated for the first
    field's type) into a union value; ``active=""`` when the union has
    no fields or the initialiser list is empty."""

    __slots__ = ("ctype", "active")
    name = "build_union"

    def __init__(self, ctype, active: str, line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype
        self.active = active

    def operands(self) -> str:
        return f"{self.ctype} .{self.active or '<empty>'}"

    def run(self, ev, frame):
        if not self.active:
            frame.stack.append(MVUnion(self.ctype, active="", value=None))
            return False
        value = frame.stack.pop()
        frame.stack.append(MVUnion(self.ctype, active=self.active,
                                   value=value))
        return False


# ---------------------------------------------------------------------------
# Calls and returns
# ---------------------------------------------------------------------------


class ResolveCall(Op):
    """Resolve a named call target *before* argument evaluation: local
    binding -> call through the stored function pointer (capability
    checks happen here, as in the AST walker); otherwise builtin or
    user function by name."""

    __slots__ = ("expr",)
    name = "resolve"

    def __init__(self, expr, line: int = 0) -> None:
        super().__init__(line)
        self.expr = expr

    def operands(self) -> str:
        return self.expr.func.name

    def run(self, ev, frame):
        name = self.expr.func.name
        binding = ev._lookup(name)
        if binding is None:
            if name in builtin_mod.BUILTIN_NAMES and \
                    name not in ev.functions:
                frame.stack.append(("builtin", name))
                return False
            fdef = ev.functions.get(name)
            if fdef is not None:
                frame.stack.append(("user", fdef))
                return False
            raise CTypeError(f"call to unknown function {name!r} "
                             f"(line {self.expr.line})")
        # A local/global object: call through the stored pointer.  The
        # AST walker evaluates the function expression (one charged
        # eval), then checks the capability before the arguments.
        ev.charge_step()
        target = ev._eval_ident(self.expr.func)
        if not isinstance(target, MVPointer):
            raise CTypeError("called object is not a function pointer")
        frame.stack.append(("user", ev.resolve_code_pointer(target.ptr)))
        return False


class ResolveTarget(Op):
    """Resolve a computed call target (non-identifier callee) whose
    rvalue ops ran just before this op."""

    name = "resolve_ptr"
    __slots__ = ()

    def run(self, ev, frame):
        target = frame.stack.pop()
        if not isinstance(target, MVPointer):
            raise CTypeError("called object is not a function pointer")
        frame.stack.append(("user", ev.resolve_code_pointer(target.ptr)))
        return False


class Invoke(Op):
    """Pop ``nargs`` arguments plus the resolved target; dispatch a
    builtin inline or push a new frame for a user function (the only
    frame-switching op besides ``Ret``/``Halt``)."""

    __slots__ = ("nargs",)
    name = "invoke"

    def __init__(self, nargs: int, line: int = 0) -> None:
        super().__init__(line)
        self.nargs = nargs

    def operands(self) -> str:
        return f"{self.nargs} arg(s)"

    def run(self, ev, frame):
        stack = frame.stack
        nargs = self.nargs
        args = stack[len(stack) - nargs:] if nargs else []
        del stack[len(stack) - nargs:]
        kind, payload = stack.pop()
        if kind == "builtin":
            result = builtin_mod.dispatch(ev, payload, args, self.line)
            stack.append(result if result is not None
                         else MVInteger(INT, IntegerValue.of_int(0)))
            return False
        fdef = payload
        fixed = args[:len(fdef.params)]
        extra = args[len(fdef.params):]
        if extra and not fdef.variadic:
            raise CTypeError(f"too many arguments to {fdef.name}")
        ev.invoke_user(fdef, fixed, extra or None)
        return True


class Ret(Op):
    """Return from the active frame: convert the value (explicit
    returns), tear the frame down, and push the normalized result onto
    the caller -- or finish the run when this was the entry frame."""

    __slots__ = ("mode", "ret_ctype", "is_main")
    name = "ret"

    def __init__(self, mode: str, ret_ctype, is_main: bool,
                 line: int = 0, *, charge: bool = False) -> None:
        super().__init__(line, charge=charge)
        self.mode = mode              # "value" | "void" | "falloff"
        self.ret_ctype = ret_ctype    # None: no conversion (void return)
        self.is_main = is_main

    def operands(self) -> str:
        return self.mode

    def run(self, ev, frame):
        if self.mode == "value":
            value = frame.stack.pop()
            result = None if self.ret_ctype is None \
                else ev.convert(value, self.ret_ctype)
        elif self.mode == "void":
            result = None
        else:  # falloff
            result = MVInteger(INT, IntegerValue.of_int(0)) \
                if self.is_main else None
        ev.return_from_frame(result)
        return True


class VaStart(Op):
    name = "va_start"
    __slots__ = ()

    def run(self, ev, frame):
        ctype, ptr = frame.stack.pop()
        ev.model.store(ctype, ptr,
                       MVInteger(ctype, IntegerValue.of_int(0)))
        frame.stack.append(MVInteger(INT, IntegerValue.of_int(0)))
        return False


class VaCopy(Op):
    name = "va_copy"
    __slots__ = ()

    def run(self, ev, frame):
        sv = frame.stack.pop()
        dt, dp = frame.stack.pop()
        ev.model.store(dt, dp, ev.convert(sv, dt))
        frame.stack.append(MVInteger(INT, IntegerValue.of_int(0)))
        return False


class VaArgOp(Op):
    __slots__ = ("ctype",)
    name = "va_arg"

    def __init__(self, ctype, line: int = 0) -> None:
        super().__init__(line)
        self.ctype = ctype

    def operands(self) -> str:
        return str(self.ctype)

    def run(self, ev, frame):
        ctype, ptr = frame.stack.pop()
        state = ev.model.load(ctype, ptr)
        index = ev._int_of(state, self.line)
        if not 0 <= index < len(frame.varargs):
            raise UndefinedBehaviour(
                UB.READ_UNINITIALISED,
                f"va_arg past the end of the argument list "
                f"(line {self.line})")
        _vt, value = frame.varargs[index]
        ev.model.store(ctype, ptr, MVInteger(
            state.ctype, IntegerValue.of_int(index + 1)))
        frame.stack.append(ev.convert(value, self.ctype))
        return False


class Halt(Op):
    """End of the globals-initialisation phase: pop the phantom frame
    (no allocations to tear down) and stop the loop."""

    name = "halt"
    __slots__ = ()

    def run(self, ev, frame):
        ev.frames.pop()
        return True


# ---------------------------------------------------------------------------
# Program containers
# ---------------------------------------------------------------------------


class CoreFunc:
    """One elaborated function: a flat op list addressed by pc.

    ``runs``/``charges``/``ids`` are parallel dispatch arrays derived
    from ``ops`` by :func:`finalize_func` -- pre-bound ``run`` methods
    and pre-extracted flags, so the evaluator's inner loop indexes
    lists instead of resolving two attributes and binding a method per
    executed op.
    """

    __slots__ = ("name", "fdef", "ops", "runs", "charges", "ids")

    def __init__(self, name: str, fdef, ops) -> None:
        self.name = name
        self.fdef = fdef
        self.ops = ops
        self.runs: list = []
        self.charges: list = []
        self.ids: list = []


class CoreProgram:
    """An elaborated translation unit.

    Keeps the originating (optimised) AST ``Program`` as ``ast``: the
    evaluator still registers functions/globals from it, and
    :meth:`Implementation.run_compiled` accepts either representation.
    """

    __slots__ = ("ast", "functions", "globals_init")

    def __init__(self, ast, functions: dict[str, CoreFunc],
                 globals_init: CoreFunc) -> None:
        self.ast = ast
        self.functions = functions
        self.globals_init = globals_init


def finalize_func(func: CoreFunc) -> CoreFunc:
    """Assign the stable per-op ids (``function:index``) the obs layer
    attaches to events, and build the evaluator's dispatch arrays."""
    for index, op in enumerate(func.ops):
        op.id = f"{func.name}:{index}"
    func.runs = [op.run for op in func.ops]
    func.charges = [op.charge for op in func.ops]
    func.ids = [op.id for op in func.ops]
    return func


def render_func(func: CoreFunc) -> str:
    lines = [f"func {func.name} ({len(func.ops)} ops):"]
    for index, op in enumerate(func.ops):
        mark = "*" if op.charge else " "
        lines.append(f"  {index:4d} {mark} {op.show()}")
    return "\n".join(lines)


def render_core(core: CoreProgram) -> str:
    """The ``repro run --dump-core`` listing: deterministic, suitable
    for golden tests (charged ops are starred)."""
    sections = []
    if core.globals_init.ops and len(core.globals_init.ops) > 1:
        sections.append(render_func(core.globals_init))
    for name, func in core.functions.items():
        if func.ops:
            sections.append(render_func(func))
    return "\n\n".join(sections) + "\n"
