"""A modelled C optimiser: the transformations the paper reasons about.

The paper's S3 design discussion turns on what *standard compiler
optimisations* may do to CHERI C programs:

* S3.1 -- the doomed out-of-bounds write can be eliminated entirely at
  -O2 ("the current Clang/LLVM-based CHERI C compiler compiles this code
  to just return zero"), or survive when the address escapes, and be
  eliminated again at -O3;
* S3.1 -- ``a[i]`` with ``a`` of length 1 is rewritten to ``a[0]`` (the
  compiler assumes the absence of UB);
* S3.2/S3.3 -- transient out-of-bounds arithmetic ``(p+100001)-100000``
  collapses to ``p+1``, eliminating excursions into non-representability;
* S3.5 -- identity byte writes (``p[0] = p[0]``) are removed, and byte
  copy loops become ``memcpy`` (GCC's tree-loop-distribute-patterns),
  which at the hardware level *preserves* tags the loop would have lost.

This module implements exactly those transformations as AST passes, so
the simulated Clang/GCC implementations (:mod:`repro.impls`) reproduce
the divergences the paper narrates.  It is intentionally not a general
optimiser: each pass is the minimal sound-looking rewrite a real compiler
performs, applied at the optimisation levels the paper associates with
it.

The passes are *bridged* over the Core IR rather than re-expressed on
it: the pipeline is parse -> optimise (here, on the typed AST) ->
elaborate (:mod:`repro.core.elaborate`), so the Core program is built
from the already-optimised AST and both evaluators execute identical
post-optimisation semantics.  Rewriting the passes as Core-to-Core
transformations would buy nothing -- they model *source-level* compiler
reasoning, which is exactly what the AST form expresses.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.cast import (
    Assign, Binary, Block, Call, Cast, Comma, Conditional, Declarator,
    DeclStmt, Empty, Expr, ExprStmt, For, FuncDef, Ident, If, Index,
    InitList, IntLit, Member, OffsetofExpr, Program, Return,
    SizeofType, Stmt, Switch, Unary, VaArg, While,
)
from repro.ctypes.layout import TargetLayout
from repro.ctypes.types import ArrayT, Void


def optimize_program(program: Program, layout: TargetLayout,
                     level: int) -> Program:
    """Apply the modelled passes for the given -O level."""
    if level <= 0:
        return program
    # Escape analysis runs on the source program: substitution duplicates
    # address-of expressions, which must not count as extra escapes.
    escape_counts = {f.name: _count_ident_uses(f)
                     for f in program.functions if f.body is not None}
    program = _map_functions(program, lambda f: _fold_function(f, layout))
    if level >= 2:
        program = _inline_small_calls(program)
        # Pattern passes run before forward substitution, which rewrites
        # identifier-based patterns into substituted expressions.
        program = _map_functions(program, _eliminate_identity_writes)
        program = _map_functions(program, lambda f: _loops_to_memcpy(f, layout))
        program = _map_functions(
            program, lambda f: _substitute_and_fold(f, layout))
        program = _map_functions(program, _assume_in_bounds)
        program = _map_functions(
            program, lambda f: _eliminate_doomed_writes(
                f, level, escape_counts.get(f.name, {})))
        program = _map_functions(program, lambda f: _fold_function(f, layout))
    return program


def _map_functions(program: Program, fn) -> Program:
    return replace(program, functions=tuple(
        fn(f) if f.body is not None else f for f in program.functions))


# ---------------------------------------------------------------------------
# Generic AST walking
# ---------------------------------------------------------------------------


def _map_expr(expr: Expr | None, fn) -> Expr | None:
    """Bottom-up expression rewrite."""
    if expr is None:
        return None
    if isinstance(expr, Unary):
        expr = replace(expr, operand=_map_expr(expr.operand, fn))
    elif isinstance(expr, Binary):
        expr = replace(expr, lhs=_map_expr(expr.lhs, fn),
                       rhs=_map_expr(expr.rhs, fn))
    elif isinstance(expr, Assign):
        expr = replace(expr, target=_map_expr(expr.target, fn),
                       value=_map_expr(expr.value, fn))
    elif isinstance(expr, Conditional):
        expr = replace(expr, cond=_map_expr(expr.cond, fn),
                       then=_map_expr(expr.then, fn),
                       other=_map_expr(expr.other, fn))
    elif isinstance(expr, Cast):
        expr = replace(expr, operand=_map_expr(expr.operand, fn))
    elif isinstance(expr, Call):
        expr = replace(expr, func=_map_expr(expr.func, fn),
                       args=tuple(_map_expr(a, fn) for a in expr.args))
    elif isinstance(expr, Index):
        expr = replace(expr, base=_map_expr(expr.base, fn),
                       index=_map_expr(expr.index, fn))
    elif isinstance(expr, Member):
        expr = replace(expr, base=_map_expr(expr.base, fn))
    elif isinstance(expr, Comma):
        expr = replace(expr, lhs=_map_expr(expr.lhs, fn),
                       rhs=_map_expr(expr.rhs, fn))
    elif isinstance(expr, InitList):
        expr = replace(expr, items=tuple(_map_expr(i, fn)
                                         for i in expr.items))
    elif isinstance(expr, VaArg):
        expr = replace(expr, ap=_map_expr(expr.ap, fn))
    return fn(expr)


def _map_stmt(stmt: Stmt | None, expr_fn, stmt_fn=None) -> Stmt | None:
    if stmt is None:
        return None
    if isinstance(stmt, ExprStmt):
        stmt = replace(stmt, expr=_map_expr(stmt.expr, expr_fn))
    elif isinstance(stmt, DeclStmt):
        stmt = replace(stmt, decls=tuple(
            replace(d, init=_map_expr(d.init, expr_fn)) for d in stmt.decls))
    elif isinstance(stmt, Block):
        stmt = replace(stmt, stmts=tuple(
            _map_stmt(s, expr_fn, stmt_fn) for s in stmt.stmts))
    elif isinstance(stmt, If):
        stmt = replace(stmt, cond=_map_expr(stmt.cond, expr_fn),
                       then=_map_stmt(stmt.then, expr_fn, stmt_fn),
                       other=_map_stmt(stmt.other, expr_fn, stmt_fn))
    elif isinstance(stmt, While):
        stmt = replace(stmt, cond=_map_expr(stmt.cond, expr_fn),
                       body=_map_stmt(stmt.body, expr_fn, stmt_fn))
    elif isinstance(stmt, For):
        stmt = replace(stmt, init=_map_stmt(stmt.init, expr_fn, stmt_fn),
                       cond=_map_expr(stmt.cond, expr_fn),
                       step=_map_expr(stmt.step, expr_fn),
                       body=_map_stmt(stmt.body, expr_fn, stmt_fn))
    elif isinstance(stmt, Switch):
        stmt = replace(stmt, cond=_map_expr(stmt.cond, expr_fn),
                       stmts=tuple(_map_stmt(s, expr_fn, stmt_fn)
                                   for s in stmt.stmts))
    elif isinstance(stmt, Return):
        stmt = replace(stmt, value=_map_expr(stmt.value, expr_fn))
    if stmt_fn is not None:
        stmt = stmt_fn(stmt)
    return stmt


def _walk_exprs(node) -> list[Expr]:
    """Flat list of all expressions under a statement/expression."""
    found: list[Expr] = []

    def collect(e: Expr) -> Expr:
        found.append(e)
        return e

    if isinstance(node, Stmt):
        _map_stmt(node, collect)
    else:
        _map_expr(node, collect)
    return found


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def _fold_function(fdef: FuncDef, layout: TargetLayout) -> FuncDef:
    def fold(expr: Expr) -> Expr:
        return _fold_expr(expr, layout)

    return replace(fdef, body=_map_stmt(fdef.body, fold))


def _fold_expr(expr: Expr, layout: TargetLayout) -> Expr:
    """One step of bottom-up folding (children already folded)."""
    if isinstance(expr, SizeofType):
        try:
            return IntLit(value=layout.sizeof(expr.ctype), line=expr.line)
        except Exception:
            return expr
    if isinstance(expr, Binary) and isinstance(expr.lhs, IntLit) \
            and isinstance(expr.rhs, IntLit):
        a, b = expr.lhs.value, expr.rhs.value
        table = {"+": a + b, "-": a - b, "*": a * b,
                 "&": a & b, "|": a | b, "^": a ^ b,
                 "<<": a << b if 0 <= b < 64 else None,
                 ">>": a >> b if 0 <= b < 64 else None,
                 "/": None if b == 0 else int(a / b) if b else None,
                 "%": None if b == 0 else a - int(a / b) * b,
                 "==": int(a == b), "!=": int(a != b),
                 "<": int(a < b), ">": int(a > b),
                 "<=": int(a <= b), ">=": int(a >= b)}
        result = table.get(expr.op)
        if result is not None:
            return IntLit(value=result, ctype=expr.lhs.ctype, line=expr.line)
    if isinstance(expr, Unary) and expr.op == "-" \
            and isinstance(expr.operand, IntLit):
        return IntLit(value=-expr.operand.value,
                      ctype=expr.operand.ctype, line=expr.line)
    # Transient-arithmetic collapsing (S3.2/S3.3): (e + c1) - c2 and
    # (e - c1) + c2 reassociate to a single offset, eliminating any
    # excursion into non-representability.
    if isinstance(expr, Binary) and expr.op in ("+", "-") \
            and isinstance(expr.rhs, IntLit) \
            and isinstance(expr.lhs, Binary) \
            and expr.lhs.op in ("+", "-") \
            and isinstance(expr.lhs.rhs, IntLit):
        inner = expr.lhs.rhs.value if expr.lhs.op == "+" \
            else -expr.lhs.rhs.value
        outer = expr.rhs.value if expr.op == "+" else -expr.rhs.value
        total = inner + outer
        if total >= 0:
            return Binary(op="+", lhs=expr.lhs.lhs,
                          rhs=IntLit(value=total, line=expr.line),
                          line=expr.line)
        return Binary(op="-", lhs=expr.lhs.lhs,
                      rhs=IntLit(value=-total, line=expr.line),
                      line=expr.line)
    return expr


# ---------------------------------------------------------------------------
# Inlining (statement-position calls to small void functions)
# ---------------------------------------------------------------------------


def _inline_small_calls(program: Program) -> Program:
    by_name = {f.name: f for f in program.functions if f.body is not None}
    counter = [0]

    def inline_stmt(stmt: Stmt) -> Stmt:
        if not isinstance(stmt, ExprStmt) or not isinstance(stmt.expr, Call):
            return stmt
        call = stmt.expr
        if not isinstance(call.func, Ident):
            return stmt
        callee = by_name.get(call.func.name)
        if callee is None or callee.body is None:
            return stmt
        if not isinstance(callee.ret, Void) or callee.variadic:
            return stmt
        if len(callee.body.stmts) > 8 or _calls_self(callee):
            return stmt
        if len(call.args) != len(callee.params):
            return stmt
        counter[0] += 1
        suffix = f"__inl{counter[0]}"
        renames = {p.name: p.name + suffix for p in callee.params}
        decls = tuple(
            Declarator(name=p.name + suffix, ctype=p.ctype, init=arg,
                       line=stmt.line)
            for p, arg in zip(callee.params, call.args))
        body = _rename_locals(callee.body, renames, suffix)
        return Block(stmts=(DeclStmt(decls=decls, line=stmt.line), body),
                     line=stmt.line)

    def transform(fdef: FuncDef) -> FuncDef:
        if fdef.name != "main":
            return fdef
        return replace(fdef, body=_map_stmt(fdef.body, lambda e: e,
                                            inline_stmt))

    return _map_functions(program, transform)


def _calls_self(fdef: FuncDef) -> bool:
    for expr in _walk_exprs(fdef.body):
        if isinstance(expr, Call) and isinstance(expr.func, Ident) \
                and expr.func.name == fdef.name:
            return True
    return False


def _rename_locals(block: Block, renames: dict[str, str],
                   suffix: str) -> Block:
    renames = dict(renames)

    def rename_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, DeclStmt):
            new_decls = []
            for d in stmt.decls:
                renames[d.name] = d.name + suffix
                new_decls.append(replace(d, name=d.name + suffix))
            return replace(stmt, decls=tuple(new_decls))
        if isinstance(stmt, Return):
            return Empty(line=stmt.line)
        return stmt

    def rename_expr(expr: Expr) -> Expr:
        if isinstance(expr, Ident) and expr.name in renames:
            return replace(expr, name=renames[expr.name])
        return expr

    # Declarations are renamed in a first pass (so later uses resolve),
    # then identifiers in a second.
    pass1 = _map_stmt(block, lambda e: e, rename_stmt)
    return _map_stmt(pass1, rename_expr)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Forward substitution of single-assignment pure locals
# ---------------------------------------------------------------------------


def _substitute_and_fold(fdef: FuncDef, layout: TargetLayout) -> FuncDef:
    """Forward-substitute straight-line value chains and fold.

    This is what turns ``j = i + A; k = j - B;`` into ``k = i + (A-B)``
    (the S3.3 excursion-eliminating rewrite) -- including through plain
    reassignments, as the S3.2 listing needs.

    Soundness: a captured expression may only mention *stable* names --
    locals that are never reassigned and never have their address taken
    (so neither an alias nor a call can change them).  Keys may be
    reassigned locals (each assignment updates the entry) but never
    address-taken ones.  Control flow clears the environment.
    """
    address_taken = _address_taken_names(fdef)
    mutated = _mutated_names(fdef)
    local_names = {p.name for p in fdef.params}
    for stmt in _walk_stmts(fdef.body):
        if isinstance(stmt, DeclStmt):
            local_names.update(d.name for d in stmt.decls)
    stable = {n for n in local_names
              if n not in mutated and n not in address_taken}

    def all_stable(expr: Expr) -> bool:
        """Every *value-read* identifier is stable.  An identifier under
        a direct address-of is an address use -- constant for the whole
        scope -- so it does not need value stability."""
        return all(name in stable for name in _value_read_idents(expr))

    def rewrite(expr: Expr, env: dict[str, Expr]) -> Expr:
        return _rewrite_with_env(expr, env, layout)

    def side_effect_targets(expr: Expr) -> list[str]:
        names = []
        for e in _walk_exprs(expr):
            if isinstance(e, Assign) and isinstance(e.target, Ident):
                names.append(e.target.name)
            if isinstance(e, Unary) and e.op in ("++", "--") and \
                    isinstance(e.operand, Ident):
                names.append(e.operand.name)
        return names

    def process_block(stmt: Stmt) -> Stmt:
        if not isinstance(stmt, Block):
            return stmt
        env: dict[str, Expr] = {}
        out: list[Stmt] = []
        for s in stmt.stmts:
            if isinstance(s, DeclStmt) and not s.static:
                new_decls = []
                for d in s.decls:
                    init = d.init
                    if init is not None:
                        init = rewrite(init, env)
                        if (_is_pure(init) and all_stable(init)
                                and d.name not in address_taken):
                            env[d.name] = init
                        else:
                            env.pop(d.name, None)
                    new_decls.append(replace(d, init=init))
                out.append(replace(s, decls=tuple(new_decls)))
            elif isinstance(s, ExprStmt):
                e = s.expr
                if isinstance(e, Assign) and not e.op and \
                        isinstance(e.target, Ident):
                    value = rewrite(e.value, env)
                    out.append(replace(s, expr=replace(e, value=value)))
                    name = e.target.name
                    if (name not in address_taken and _is_pure(value)
                            and all_stable(value)):
                        env[name] = value
                    else:
                        env.pop(name, None)
                else:
                    new_e = rewrite(e, env)
                    out.append(replace(s, expr=new_e))
                    for name in side_effect_targets(new_e):
                        env.pop(name, None)
            elif isinstance(s, (Return, Empty)):
                out.append(_map_stmt_whole(
                    s, lambda x: rewrite(x, env)))
            else:
                # Control flow: a body may execute repeatedly and may
                # reassign or shadow names, so only entries untouched
                # inside it may be substituted into it.
                unsafe = _names_written_or_declared(s)
                safe_env = {k: v for k, v in env.items()
                            if k not in unsafe}
                out.append(_map_stmt_whole(
                    s, lambda x: rewrite(x, safe_env)))
                env.clear()   # stop propagating past the join
        return replace(stmt, stmts=tuple(out))

    return replace(fdef, body=_map_stmt(fdef.body, lambda e: e,
                                        process_block))


def _subst(expr: Expr, env: dict[str, Expr]) -> Expr:
    return _map_expr(expr, lambda e: _subst_leaf(e, env))


def _names_written_or_declared(stmt: Stmt) -> set[str]:
    """Names a statement assigns, increments, or (re)declares anywhere
    inside itself -- unsafe to substitute into it from outside."""
    names: set[str] = set()
    for sub in _walk_stmts(stmt):
        if isinstance(sub, DeclStmt):
            names.update(d.name for d in sub.decls)
    for e in _walk_exprs(stmt):
        if isinstance(e, Assign) and isinstance(e.target, Ident):
            names.add(e.target.name)
        if isinstance(e, Unary) and e.op in ("++", "--") and \
                isinstance(e.operand, Ident):
            names.add(e.operand.name)
    return names


def _value_read_idents(expr: Expr) -> list[str]:
    """Identifiers whose *value* the expression reads (address-of a bare
    identifier is an address use, not a value read)."""
    if isinstance(expr, Ident):
        return [expr.name]
    if isinstance(expr, Unary) and expr.op == "&" and \
            isinstance(expr.operand, Ident):
        return []
    out: list[str] = []
    for e in _walk_exprs(expr):
        if e is expr:
            continue
        if isinstance(e, Unary) and e.op == "&" and \
                isinstance(e.operand, Ident):
            continue
        if isinstance(e, Ident):
            out.append(e.name)
    # _walk_exprs flattens; remove idents that sit directly under an
    # address-of (they were collected by the flat walk).
    addressed = [e.operand.name for e in _walk_exprs(expr)
                 if isinstance(e, Unary) and e.op == "&"
                 and isinstance(e.operand, Ident)]
    for name in addressed:
        if name in out:
            out.remove(name)
    return out


def _rewrite_with_env(expr: Expr, env: dict[str, Expr],
                      layout: TargetLayout) -> Expr:
    """Substitute + fold, but never substitute an identifier in *direct*
    lvalue position (assignment target, ++/-- operand): the store must
    still go to the variable.  Identifiers nested under derefs/indexing
    in a target are value uses and substitute normally."""
    if isinstance(expr, Assign):
        if isinstance(expr.target, Ident):
            target: Expr = expr.target
        else:
            target = _rewrite_with_env(expr.target, env, layout)
        return replace(expr, target=target,
                       value=_rewrite_with_env(expr.value, env, layout))
    if isinstance(expr, Unary) and expr.op in ("++", "--"):
        if isinstance(expr.operand, Ident):
            return expr
        return replace(expr, operand=_rewrite_with_env(expr.operand, env,
                                                       layout))
    if isinstance(expr, Unary) and expr.op == "&" and \
            isinstance(expr.operand, Ident):
        # &x must keep naming the object, not its value.
        return expr

    def leaf(e: Expr) -> Expr:
        return _fold_expr(_subst_leaf(e, env), layout)

    # Rebuild children through this function (so nested assignments keep
    # their targets), then fold/substitute the node itself.
    if isinstance(expr, Binary):
        node: Expr = replace(expr,
                             lhs=_rewrite_with_env(expr.lhs, env, layout),
                             rhs=_rewrite_with_env(expr.rhs, env, layout))
    elif isinstance(expr, Unary):
        node = replace(expr,
                       operand=_rewrite_with_env(expr.operand, env, layout))
    elif isinstance(expr, Cast):
        node = replace(expr,
                       operand=_rewrite_with_env(expr.operand, env, layout))
    elif isinstance(expr, Conditional):
        node = replace(expr,
                       cond=_rewrite_with_env(expr.cond, env, layout),
                       then=_rewrite_with_env(expr.then, env, layout),
                       other=_rewrite_with_env(expr.other, env, layout))
    elif isinstance(expr, Call):
        node = replace(expr, args=tuple(
            _rewrite_with_env(a, env, layout) for a in expr.args))
    elif isinstance(expr, Index):
        node = replace(expr,
                       base=_rewrite_with_env(expr.base, env, layout),
                       index=_rewrite_with_env(expr.index, env, layout))
    elif isinstance(expr, Member):
        node = replace(expr,
                       base=_rewrite_with_env(expr.base, env, layout))
    elif isinstance(expr, Comma):
        node = replace(expr,
                       lhs=_rewrite_with_env(expr.lhs, env, layout),
                       rhs=_rewrite_with_env(expr.rhs, env, layout))
    elif isinstance(expr, InitList):
        node = replace(expr, items=tuple(
            _rewrite_with_env(i, env, layout) for i in expr.items))
    else:
        node = expr
    return leaf(node)


def _map_stmt_whole(stmt: Stmt | None, fn) -> Stmt | None:
    """Apply ``fn`` to each complete expression tree in a statement."""
    if stmt is None:
        return None
    if isinstance(stmt, ExprStmt):
        return replace(stmt, expr=fn(stmt.expr))
    if isinstance(stmt, DeclStmt):
        return replace(stmt, decls=tuple(
            replace(d, init=fn(d.init) if d.init is not None else None)
            for d in stmt.decls))
    if isinstance(stmt, Block):
        return replace(stmt, stmts=tuple(
            _map_stmt_whole(s, fn) for s in stmt.stmts))
    if isinstance(stmt, If):
        return replace(stmt, cond=fn(stmt.cond),
                       then=_map_stmt_whole(stmt.then, fn),
                       other=_map_stmt_whole(stmt.other, fn))
    if isinstance(stmt, While):
        return replace(stmt, cond=fn(stmt.cond),
                       body=_map_stmt_whole(stmt.body, fn))
    if isinstance(stmt, For):
        return replace(stmt, init=_map_stmt_whole(stmt.init, fn),
                       cond=fn(stmt.cond) if stmt.cond is not None else None,
                       step=fn(stmt.step) if stmt.step is not None else None,
                       body=_map_stmt_whole(stmt.body, fn))
    if isinstance(stmt, Switch):
        return replace(stmt, cond=fn(stmt.cond),
                       stmts=tuple(_map_stmt_whole(s, fn)
                                   for s in stmt.stmts))
    if isinstance(stmt, Return):
        return replace(stmt, value=fn(stmt.value)
                       if stmt.value is not None else None)
    return stmt


def _subst_leaf(expr: Expr, env: dict[str, Expr]) -> Expr:
    if isinstance(expr, Ident) and expr.name in env:
        return env[expr.name]
    return expr


def _is_pure(expr: Expr) -> bool:
    """Syntactically side-effect-free and cheap enough to duplicate."""
    if isinstance(expr, (IntLit, Ident, SizeofType, OffsetofExpr)):
        return True
    if isinstance(expr, Unary):
        return expr.op in ("-", "+", "~", "!", "&") and \
            _is_pure(expr.operand)
    if isinstance(expr, Binary):
        return _is_pure(expr.lhs) and _is_pure(expr.rhs)
    if isinstance(expr, Cast):
        return _is_pure(expr.operand)
    return False


def _mutated_names(fdef: FuncDef) -> set[str]:
    names: set[str] = set()
    for expr in _walk_exprs(fdef.body):
        if isinstance(expr, Assign) and isinstance(expr.target, Ident):
            names.add(expr.target.name)
        if isinstance(expr, Unary) and expr.op in ("++", "--") \
                and isinstance(expr.operand, Ident):
            names.add(expr.operand.name)
    return names


def _address_taken_names(fdef: FuncDef) -> set[str]:
    names: set[str] = set()
    for expr in _walk_exprs(fdef.body):
        if isinstance(expr, Unary) and expr.op == "&" \
                and isinstance(expr.operand, Ident):
            names.add(expr.operand.name)
    return names


# ---------------------------------------------------------------------------
# Identity-write elimination (S3.5)
# ---------------------------------------------------------------------------


def _eliminate_identity_writes(fdef: FuncDef) -> FuncDef:
    def clean(stmt: Stmt) -> Stmt:
        if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Assign) \
                and not stmt.expr.op \
                and _same_lvalue(stmt.expr.target, stmt.expr.value) \
                and _is_pure_lvalue(stmt.expr.target):
            return Empty(line=stmt.line)
        return stmt

    return replace(fdef, body=_map_stmt(fdef.body, lambda e: e, clean))


def _same_lvalue(a: Expr, b: Expr) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Ident):
        return a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, IntLit):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, Index):
        return _same_lvalue(a.base, b.base) and \
            _same_lvalue(a.index, b.index)  # type: ignore[union-attr]
    if isinstance(a, Unary):
        return a.op == b.op and \
            _same_lvalue(a.operand, b.operand)  # type: ignore[union-attr]
    if isinstance(a, Member):
        return a.name == b.name and a.arrow == b.arrow and \
            _same_lvalue(a.base, b.base)  # type: ignore[union-attr]
    if isinstance(a, Cast):
        return a.ctype == b.ctype and \
            _same_lvalue(a.operand, b.operand)  # type: ignore[union-attr]
    return False


def _is_pure_lvalue(expr: Expr) -> bool:
    if isinstance(expr, Ident):
        return True
    if isinstance(expr, Index):
        return _is_pure_lvalue(expr.base) and _is_pure(expr.index)
    if isinstance(expr, Unary) and expr.op == "*":
        return _is_pure(expr.operand)
    if isinstance(expr, Member):
        return _is_pure_lvalue(expr.base)
    return False


# ---------------------------------------------------------------------------
# Byte-copy loops -> memcpy (S3.5, GCC tree-loop-distribute-patterns)
# ---------------------------------------------------------------------------


def _loops_to_memcpy(fdef: FuncDef, layout: TargetLayout) -> FuncDef:
    def rewrite(stmt: Stmt) -> Stmt:
        match = _match_copy_loop(stmt, layout)
        if match is None:
            return stmt
        dest, src, count, line = match
        call = Call(func=Ident(name="memcpy", line=line),
                    args=(Ident(name=dest, line=line),
                          Ident(name=src, line=line),
                          IntLit(value=count, line=line)),
                    line=line)
        return ExprStmt(expr=call, line=line)

    return replace(fdef, body=_map_stmt(fdef.body, lambda e: e, rewrite))


def _match_copy_loop(stmt: Stmt, layout: TargetLayout):
    """Match ``for (i=0; i<N; i++) d[i] = s[i];`` with constant N."""
    if not isinstance(stmt, For) or stmt.cond is None or stmt.step is None:
        return None
    # init: i = 0 (decl or assignment)
    if isinstance(stmt.init, DeclStmt) and len(stmt.init.decls) == 1:
        d = stmt.init.decls[0]
        var, init = d.name, d.init
    elif isinstance(stmt.init, ExprStmt) and \
            isinstance(stmt.init.expr, Assign) and \
            isinstance(stmt.init.expr.target, Ident):
        var, init = stmt.init.expr.target.name, stmt.init.expr.value
    else:
        return None
    if not (isinstance(init, IntLit) and init.value == 0):
        return None
    # cond: i < N
    cond = stmt.cond
    if not (isinstance(cond, Binary) and cond.op == "<"
            and isinstance(cond.lhs, Ident) and cond.lhs.name == var):
        return None
    bound = cond.rhs
    if isinstance(bound, SizeofType):
        count = layout.sizeof(bound.ctype)
    elif isinstance(bound, IntLit):
        count = bound.value
    else:
        return None
    # step: i++ (or ++i)
    step = stmt.step
    if not (isinstance(step, Unary) and step.op == "++"
            and isinstance(step.operand, Ident)
            and step.operand.name == var):
        return None
    # body: d[i] = s[i];
    body = stmt.body
    if isinstance(body, Block) and len(body.stmts) == 1:
        body = body.stmts[0]
    if not (isinstance(body, ExprStmt) and isinstance(body.expr, Assign)
            and not body.expr.op):
        return None
    tgt, val = body.expr.target, body.expr.value
    if not (isinstance(tgt, Index) and isinstance(tgt.base, Ident)
            and isinstance(tgt.index, Ident) and tgt.index.name == var):
        return None
    if not (isinstance(val, Index) and isinstance(val.base, Ident)
            and isinstance(val.index, Ident) and val.index.name == var):
        return None
    return tgt.base.name, val.base.name, count, stmt.line


# ---------------------------------------------------------------------------
# In-bounds assumption (S3.1's g(): a[i] with a[1] becomes a[0])
# ---------------------------------------------------------------------------


def _assume_in_bounds(fdef: FuncDef) -> FuncDef:
    lengths: dict[str, int] = {}
    for stmt in _walk_stmts(fdef.body):
        if isinstance(stmt, DeclStmt):
            for d in stmt.decls:
                if isinstance(d.ctype, ArrayT) and d.ctype.length == 1:
                    lengths[d.name] = 1

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, Index) and isinstance(expr.base, Ident) \
                and lengths.get(expr.base.name) == 1 \
                and not isinstance(expr.index, IntLit):
            return replace(expr, index=IntLit(value=0, line=expr.line))
        return expr

    return replace(fdef, body=_map_stmt(fdef.body, rewrite))


def _walk_stmts(stmt: Stmt | None) -> list[Stmt]:
    found: list[Stmt] = []

    def collect(s: Stmt) -> Stmt:
        found.append(s)
        return s

    _map_stmt(stmt, lambda e: e, collect)
    return found


# ---------------------------------------------------------------------------
# Doomed-write elimination (S3.1)
# ---------------------------------------------------------------------------


def _eliminate_doomed_writes(fdef: FuncDef, level: int,
                             ident_uses: dict[str, int]) -> FuncDef:
    """Remove stores through statically out-of-bounds pointers to locals.

    After inlining + substitution, the S3.1 store is ``*(&x + 1) = 42``.
    The compiler may assume no UB and treat the store as unreachable; it
    removes it when the target local does not escape (-O2) or regardless
    (-O3) -- matching the paper's account of how the surviving write
    depends "in subtle and hard-to-predict ways on the rest of the code".
    ``ident_uses`` counts address-of occurrences in the *source* program
    (one occurrence = the call argument itself = non-escaping).
    """

    def clean(stmt: Stmt) -> Stmt:
        if not (isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Assign)
                and not stmt.expr.op):
            return stmt
        target = stmt.expr.target
        name = _oob_scalar_store_target(target)
        if name is None:
            return stmt
        escapes = ident_uses.get(name, 0) > 1
        if escapes and level < 3:
            return stmt
        return Empty(line=stmt.line)

    return replace(fdef, body=_map_stmt(fdef.body, lambda e: e, clean))


def _oob_scalar_store_target(target: Expr) -> str | None:
    """Match ``*(&x + c)`` / ``(&x)[c]`` with c != 0: statically OOB for
    a scalar ``x``.  Returns the local's name."""
    if isinstance(target, Unary) and target.op == "*":
        inner = target.operand
    elif isinstance(target, Index):
        if isinstance(target.base, Unary) and target.base.op == "&" and \
                isinstance(target.base.operand, Ident) and \
                isinstance(target.index, IntLit) and target.index.value != 0:
            return target.base.operand.name
        return None
    else:
        return None
    while isinstance(inner, Cast):
        inner = inner.operand
    if isinstance(inner, Binary) and inner.op in ("+", "-") and \
            isinstance(inner.rhs, IntLit) and inner.rhs.value != 0:
        base = inner.lhs
        while isinstance(base, Cast):
            base = base.operand
        if isinstance(base, Unary) and base.op == "&" and \
                isinstance(base.operand, Ident):
            return base.operand.name
    return None


def _count_ident_uses(fdef: FuncDef) -> dict[str, int]:
    counts: dict[str, int] = {}
    for expr in _walk_exprs(fdef.body):
        if isinstance(expr, Unary) and expr.op == "&" and \
                isinstance(expr.operand, Ident):
            counts[expr.operand.name] = counts.get(expr.operand.name, 0) + 1
    return counts
