"""Direct-threaded compilation of Core IR (the ``compiled`` evaluator).

:func:`compile_core` lowers each Core function's flat op list into a
table of pre-bound Python closures.  Dispatch is *direct-threaded*:
every closure finishes by returning the next closure to run, so the
inner loop is ``k = k(ev, frame)`` -- no per-step dict or array
indexing (the dispatch arrays of :class:`~repro.core.coreeval
.CoreEvaluator` are indexed once per op; here only control transfers
index the table).  Three superinstructions fuse the hot op pairs
(load+binop, cmp+branch, const+store), member/offset resolution gets a
per-site inline cache, and pure constant regions are folded at compile
time.

Semantic ground rules (the whole point of the three-way differential
gate):

* **Charge identity.**  Every closure charges exactly the steps its
  ops would have charged under the Core loop, *before* running, with
  the same step-budget cut-off message and the same 1024-step deadline
  poll.  A folded region batch-charges its step count (splitting into
  single steps whenever a budget or deadline could observe the
  difference), so ``resource_exhausted`` outcomes are byte-identical.
* **Folding never erases semantics.**  A region is folded only if it
  consists of pure integer ops (``push_int``/``binop``/``unary``/
  ``not`` plus their ``charge`` markers), is evaluated successfully
  under *both* the abstract machine and hardware mode on scratch
  evaluators, both modes agree, and the result is a plain
  provenance-free integer.  Division by zero, signed overflow, shifts
  past the width, anything capability-carrying -- all fail that trial
  evaluation and stay unfolded, so UB, traps, and provenance remain
  observable exactly where the CoreEvaluator raises them.
* **Traced runs delegate.**  When an event bus is attached the
  evaluator runs the inherited Core dispatch loop over the *same*
  ``CoreProgram``, so every event carries the stable ``function:index``
  op id and ``bus.step`` stamp the explainer expects; tracing already
  pays per-event costs that dwarf dispatch, and delegation makes event
  identity structural rather than re-proved per optimisation.

Snapshots: for untraced, fault-free runs the evaluator additionally
memoises the post-globals-phase machine state per run configuration
(mode, address map, options...) on the :class:`CompiledProgram`, so
repeated runs of a cached program skip static-storage registration and
global initialisation entirely.  The snapshot records its step and
allocation usage and is bypassed whenever a budget could have observed
the globals phase differently.

Run memoisation: the logical completion of the snapshot.  A run with
no event bus, no budget meter, and no fault plan is a *pure* function
of the compiled program and the run configuration -- programs are
frozen, the allocator is deterministic, and every observable
(exit status, stdout, UB, trap, unspecified-ness) lands in the frozen
:class:`~repro.errors.Outcome`.  The evaluator therefore memoises the
complete Outcome per ``(entry point, run configuration)`` on the
:class:`CompiledProgram`: the first run of each configuration executes
for real (and is what the three-way differential gate checks), repeats
are served from the memo.  Traced, metered, or fault-injected runs
never consult or populate it.  This is the dominant term in the
compliance benchmark's warm-cache speedup; the fuzz axis (fresh
programs every iteration, no memo hits) is what isolates raw dispatch
performance -- both are reported in ``BENCH_engine.json``.

Closures do not pickle; :class:`CompiledProgram` reduces to its
retained :class:`~repro.core.coreir.CoreProgram` and is recompiled on
unpickle (without the fold pass, which preserves semantics and charges
exactly -- folding only batches them).
"""

from __future__ import annotations

from repro.core.coreeval import CoreEvaluator, CoreFrame
from repro.core.coreir import (
    BinOp, Charge, CoreFunc, CoreProgram, Halt, InitStore, Invoke, Jump,
    JumpIfFalse, JumpIfTrue, LoadFrom, LoadIdent, LvArrow, LvDot, NotOp,
    PushInt, Ret, StaticCheck, StoreValue, SwitchDispatch, UnaryArith,
    render_func,
)
from repro.ctypes.types import Pointer, StructT, UnionT
from repro.errors import CTypeError, Outcome
from repro.memory.model import MemoryModel, Mode
from repro.memory.state import CapMeta
from repro.memory.values import IntegerValue, MVInteger

__all__ = [
    "CompiledFunc", "CompiledProgram", "CompiledEvaluator",
    "compile_core", "render_compiled",
]


# ---------------------------------------------------------------------------
# Compiled containers
# ---------------------------------------------------------------------------


class CompiledFunc:
    """One function's closure table.

    ``entry`` is the first closure (``None`` for an empty op list);
    ``plan`` and ``slot_ids`` are deterministic descriptions of the
    slot structure (op / fused pair / folded region per table start),
    used by tests and ``--dump-core`` -- compiling the same
    ``CoreFunc`` twice yields identical plans and slot ids.
    """

    __slots__ = ("name", "core", "table", "entry", "plan", "slot_ids")

    def __init__(self, name: str, core: CoreFunc, table, plan) -> None:
        self.name = name
        self.core = core
        self.table = table
        self.entry = table[0] if table else None
        self.plan = plan
        self.slot_ids = tuple(_slot_id(name, entry) for entry in plan)


def _slot_id(fname: str, entry: tuple) -> str:
    kind, index = entry[0], entry[1]
    detail = ":".join(str(part) for part in entry[2:])
    return f"{fname}:{index}:{kind}" + (f":{detail}" if detail else "")


class _Snapshot:
    """Post-globals-phase machine state (see the module docstring)."""

    __slots__ = ("allocations", "iotas", "bytes", "capmeta", "allocator",
                 "next_alloc_id", "next_iota_id", "functions", "func_ptrs",
                 "func_by_addr", "globals", "statics", "string_literals",
                 "steps", "out", "alloc_bytes", "alloc_count")


def run_config_key(model) -> tuple:
    """Every run-only axis of a :class:`MemoryModel`, as a memo key.

    A compiled program is valid across all of these axes (the compile
    caches are deliberately policy-/mode-/map-independent), so run memos
    and globals snapshots must key on *every* one of them -- missing one
    silently aliases outcomes across configurations.  The cache-key
    audit (``tests/test_cache_key_audit.py``) cross-checks this tuple
    against :data:`repro.impls.config.RUN_AXES`.

    ``type(model)`` matters too: the seeded-fault implementations
    (:mod:`repro.impls.faults`) share every configuration axis with
    their clean base and differ only in the MemoryModel subclass, so a
    snapshot or memoised outcome must never cross model classes.
    """
    return (type(model), model.mode, model.arch.name,
            model.state.allocator.address_map,
            model.state.allocator.policy,
            model.subobject_bounds, model.options, model.revocation)


class CompiledProgram:
    """A Core program lowered to closure tables.

    Retains the :class:`~repro.core.coreir.CoreProgram` (whose ``ast``
    backs static-storage registration, and whose dispatch arrays back
    traced runs), plus per-run-configuration snapshots of the
    post-globals machine state.
    """

    __slots__ = ("core", "functions", "globals_init", "snapshots",
                 "outcomes")

    def __init__(self, core: CoreProgram,
                 functions: dict[str, CompiledFunc],
                 globals_init: CompiledFunc) -> None:
        self.core = core
        self.functions = functions
        self.globals_init = globals_init
        #: run-config key -> _Snapshot (process-local, never pickled)
        self.snapshots: dict = {}
        #: (main, run-config key) -> Outcome for pure runs (no bus, no
        #: meter, no faults); see "Run memoisation" in the module
        #: docstring.  Process-local, never pickled.
        self.outcomes: dict = {}

    @property
    def ast(self):
        return self.core.ast

    def __reduce__(self):
        # Closures (and snapshots full of live state) do not pickle:
        # reduce to the Core program and recompile on unpickle.  The
        # recompile runs without the fold pass (no Implementation in
        # hand), which is charge- and semantics-identical.
        return (compile_core, (self.core,))


# ---------------------------------------------------------------------------
# Jump targets and superinstruction selection
# ---------------------------------------------------------------------------


def _jump_targets(ops) -> set[int]:
    """Every pc that some op can transfer control to.  A fused pair or
    folded region must never contain one of these in its interior."""
    targets: set[int] = set()
    for op in ops:
        cls = type(op)
        if cls is Jump or cls is JumpIfFalse or cls is JumpIfTrue:
            targets.add(op.target)
        elif cls is SwitchDispatch:
            targets.update(op.stmt_targets)
            targets.add(op.end)
        elif cls is StaticCheck:
            targets.add(op.bind_target)
    return targets


_CMP_OPS = frozenset(("<", "<=", ">", ">=", "==", "!="))


def _pair_kind(op, op2) -> str | None:
    """The superinstruction table: exactly the three hot pairs, fused
    only when the charge pattern keeps step accounting a prefix of the
    pair (first op may charge; second never does)."""
    if op2.charge:
        return None
    t1, t2 = type(op), type(op2)
    if t2 is BinOp and (t1 is LoadIdent and op.charge
                        or t1 is LoadFrom and not op.charge):
        return "load_binop"
    if (t1 is BinOp and not op.charge and op.op in _CMP_OPS
            and (t2 is JumpIfFalse or t2 is JumpIfTrue)):
        return "cmp_branch"
    if t1 is PushInt and (t2 is StoreValue or t2 is InitStore):
        return "const_store"
    return None


# ---------------------------------------------------------------------------
# Constant folding (trial evaluation on scratch evaluators)
# ---------------------------------------------------------------------------

#: Ops a foldable region may consist of.  Everything else -- loads,
#: stores, casts, pointer arithmetic, calls -- is conservatively
#: opaque, so no foldable region can touch memory, provenance, or
#: ghost state.
_FOLDABLE = (Charge, PushInt, BinOp, UnaryArith, NotOp)


class _ScratchFrame:
    __slots__ = ("stack",)

    def __init__(self, stack) -> None:
        self.stack = stack


def _scratch_pair(core: CoreProgram, impl):
    """Two scratch evaluators -- abstract machine and hardware mode --
    for trial evaluation under ``impl``'s compile-relevant axes."""
    evs = []
    for mode in (Mode.ABSTRACT, Mode.HARDWARE):
        model = MemoryModel(impl.arch, mode, impl.address_map,
                            subobject_bounds=impl.subobject_bounds,
                            options=impl.options)
        evs.append(CoreEvaluator(core, model))
    return tuple(evs)


def _trial(ev, op, args):
    """Run one pure op on a scratch frame; the result only counts if
    the op succeeds and leaves a single plain provenance-free integer."""
    frame = _ScratchFrame(list(args))
    try:
        op.run(ev, frame)
    except BaseException:
        return None
    if len(frame.stack) != 1:
        return None
    result = frame.stack[0]
    if type(result) is not MVInteger:
        return None
    ival = result.ival
    if ival.cap is not None or ival.num is None or not ival.prov.is_empty:
        return None
    return result


def _trial_both(scratch, op, args_abs, args_hw):
    ra = _trial(scratch[0], op, args_abs)
    if ra is None:
        return None
    rh = _trial(scratch[1], op, args_hw)
    if rh is None or ra != rh:
        return None
    return (ra, rh)


class _Region:
    """A candidate constant region [start, end] with its per-mode
    values (equal by construction when the region survives)."""

    __slots__ = ("start", "end", "vals")

    def __init__(self, start: int, end: int, vals) -> None:
        self.start = start
        self.end = end
        self.vals = vals


def _plan_folds(func: CoreFunc, targets: set[int], scratch) -> dict:
    """Linear symbolic scan of the op list.  The symbolic stack models
    a *suffix* of the runtime operand stack: regions of known constant
    value, or ``None`` for opaque entries.  Any op outside the
    whitelist flushes the stack (committing surviving regions as
    folds); every jump target is a control merge and clears it.
    Returns ``{start: (end, charges, MVInteger)}``."""
    if scratch is None:
        return {}
    ops = func.ops
    folds: dict[int, tuple] = {}
    stack: list = []
    run_start = None   # first index of the current contiguous Charge run

    def commit(region) -> None:
        if region is not None and region.end > region.start:
            charges = sum(1 for j in range(region.start, region.end + 1)
                          if ops[j].charge)
            folds[region.start] = (region.end, charges, region.vals[0])

    def flush() -> None:
        for entry in stack:
            commit(entry)
        del stack[:]

    for i, op in enumerate(ops):
        if i in targets:
            flush()
            run_start = None
        cls = type(op)
        if cls is Charge:
            if run_start is None:
                run_start = i
            continue
        if cls is PushInt:
            # Absorb the immediately preceding charge run (pre-order
            # charges of the enclosing pure expression): charges are
            # no-ops, so their position within the region is free.
            start = run_start if run_start is not None else i
            mv = MVInteger(op.ctype, IntegerValue.of_int(op.value))
            stack.append(_Region(start, i, (mv, mv)))
            run_start = None
            continue
        run_start = None
        if cls is NotOp or cls is UnaryArith:
            top = stack.pop() if stack else None
            if top is not None and top.end == i - 1:
                vals = _trial_both(scratch, op,
                                   [top.vals[0]], [top.vals[1]])
                if vals is not None:
                    stack.append(_Region(top.start, i, vals))
                    continue
            commit(top)
            stack.append(None)
            continue
        if cls is BinOp:
            rhs = stack.pop() if stack else None
            lhs = stack.pop() if stack else None
            if (lhs is not None and rhs is not None
                    and rhs.end == i - 1 and rhs.start == lhs.end + 1):
                vals = _trial_both(scratch, op,
                                   [lhs.vals[0], rhs.vals[0]],
                                   [lhs.vals[1], rhs.vals[1]])
                if vals is not None:
                    stack.append(_Region(lhs.start, i, vals))
                    continue
            commit(lhs)
            commit(rhs)
            stack.append(None)
            continue
        # Opaque op: arbitrary stack effect -- commit and forget.
        flush()
    flush()
    return folds


# ---------------------------------------------------------------------------
# Closure factories
#
# The charge prologue is written out inline in each charged closure (a
# helper call would cost what threading saves).  It is byte-for-byte
# the Core loop's: charge before running, cut with the same message,
# poll the deadline on 1024-step boundaries.
# ---------------------------------------------------------------------------


def _charge_closure(nxt):
    def clos(ev, frame):
        steps = ev.steps + 1
        ev.steps = steps
        if steps > ev._max_steps:
            ev._steps_exhausted()
        if ev._deadline_at is not None and not (steps & 1023):
            ev.meter.check_deadline(steps)
        return nxt
    return clos


def _push_int_closure(op, nxt):
    mv = MVInteger(op.ctype, IntegerValue.of_int(op.value))
    if op.charge:
        def clos(ev, frame):
            steps = ev.steps + 1
            ev.steps = steps
            if steps > ev._max_steps:
                ev._steps_exhausted()
            if ev._deadline_at is not None and not (steps & 1023):
                ev.meter.check_deadline(steps)
            frame.stack.append(mv)
            return nxt
    else:
        def clos(ev, frame):
            frame.stack.append(mv)
            return nxt
    return clos


def _fold_closure(mv, charges, nxt):
    def clos(ev, frame):
        steps = ev.steps + charges
        if steps <= ev._max_steps and ev._deadline_at is None:
            ev.steps = steps
        else:
            # A budget or deadline could observe the batch: charge
            # one step at a time, exactly as the unfolded ops would.
            remaining = charges
            while remaining:
                remaining -= 1
                step = ev.steps + 1
                ev.steps = step
                if step > ev._max_steps:
                    ev._steps_exhausted()
                if ev._deadline_at is not None and not (step & 1023):
                    ev.meter.check_deadline(step)
        frame.stack.append(mv)
        return nxt
    return clos


def _jump_closure(table, target):
    def clos(ev, frame):
        return table[target]
    return clos


def _branch_closure(table, target, nxt, branch_when):
    if branch_when:
        def clos(ev, frame):
            if ev.truthy(frame.stack.pop()):
                return table[target]
            return nxt
    else:
        def clos(ev, frame):
            if ev.truthy(frame.stack.pop()):
                return nxt
            return table[target]
    return clos


def _pc_closure(op, index, table):
    """Computed-goto ops (switch dispatch, static check) keep their pc
    protocol: give them the Core loop's ``pc+1`` and continue at
    whatever slot they leave ``frame.pc`` on."""
    run = op.run
    fallthrough = index + 1

    def clos(ev, frame):
        frame.pc = fallthrough
        run(ev, frame)
        return table[frame.pc]
    return clos


def _invoke_closure(op, nxt):
    run = op.run

    def clos(ev, frame):
        frame.resume = nxt
        if run(ev, frame):
            return None
        return nxt
    return clos


def _final_closure(op):
    run = op.run

    def clos(ev, frame):
        run(ev, frame)
        return None
    return clos


def _lv_member_closure(op, nxt):
    """``lv_arrow`` / ``lv_dot`` with a per-site monomorphic inline
    cache over the struct type's identity: field type and offset are
    resolved once per site per struct type (Core programs are cached
    and reused, so type identity is stable across runs)."""
    member = op.member
    line = op.line
    arrow = type(op) is LvArrow
    cache = [None, None, 0]

    def clos(ev, frame):
        stack = frame.stack
        if arrow:
            base = stack.pop()
            btype, bptr = ev._as_pointer(base, line)
            if not isinstance(btype, Pointer) or \
                    not isinstance(btype.pointee, StructT):
                raise CTypeError(f"-> on non-struct-pointer {base.ctype}")
            stype = btype.pointee
        else:
            stype, bptr = stack.pop()
            if not isinstance(stype, StructT):
                raise CTypeError(f". on non-struct {stype}")
        if cache[0] is stype:
            member_t = cache[1]
            offset = cache[2]
        else:
            member_t = stype.field_type(member)
            offset = ev.layout.offsetof(stype, member)
            cache[0] = stype
            cache[1] = member_t
            cache[2] = offset
        stack.append((member_t, ev.model.member_shift(
            bptr, stype, member, offset=offset, member_t=member_t)))
        return nxt
    return clos


def _generic_closure(op, nxt):
    run = op.run
    if op.charge:
        def clos(ev, frame):
            steps = ev.steps + 1
            ev.steps = steps
            if steps > ev._max_steps:
                ev._steps_exhausted()
            if ev._deadline_at is not None and not (steps & 1023):
                ev.meter.check_deadline(steps)
            run(ev, frame)
            return nxt
    else:
        def clos(ev, frame):
            run(ev, frame)
            return nxt
    return clos


def _op_closure(op, index, nxt, table):
    t = type(op)
    if t is Charge:
        return _charge_closure(nxt)
    if t is PushInt:
        return _push_int_closure(op, nxt)
    if t is Jump:
        clos = _jump_closure(table, op.target)
    elif t is JumpIfFalse:
        clos = _branch_closure(table, op.target, nxt, False)
    elif t is JumpIfTrue:
        clos = _branch_closure(table, op.target, nxt, True)
    elif t is SwitchDispatch or t is StaticCheck:
        clos = _pc_closure(op, index, table)
    elif t is Invoke:
        clos = _invoke_closure(op, nxt)
    elif t is Ret or t is Halt:
        clos = _final_closure(op)
    elif t is LvArrow or t is LvDot:
        clos = _lv_member_closure(op, nxt)
    else:
        return _generic_closure(op, nxt)
    # The elaborator never charges control/lvalue ops (the Charge op
    # carries the step); if that ever changes, chain the prologue in
    # front rather than silently dropping the step.
    return _charge_closure(clos) if op.charge else clos


# -- fused closures ---------------------------------------------------------


def _load_binop_closure(op1, op2, nxt):
    bop = op2.op
    line = op2.line
    if type(op1) is LoadIdent:
        expr = op1.expr

        def clos(ev, frame):
            steps = ev.steps + 1
            ev.steps = steps
            if steps > ev._max_steps:
                ev._steps_exhausted()
            if ev._deadline_at is not None and not (steps & 1023):
                ev.meter.check_deadline(steps)
            stack = frame.stack
            rhs = ev._eval_ident(expr)
            lhs = stack.pop()
            stack.append(ev.binary_op(bop, lhs, rhs, line))
            return nxt
    else:  # LoadFrom (uncharged)
        def clos(ev, frame):
            stack = frame.stack
            ctype, ptr = stack.pop()
            rhs = ev._load_decayed(ctype, ptr)
            lhs = stack.pop()
            stack.append(ev.binary_op(bop, lhs, rhs, line))
            return nxt
    return clos


def _cmp_branch_closure(op1, op2, nxt, table):
    bop = op1.op
    line = op1.line
    target = op2.target
    if type(op2) is JumpIfTrue:
        def clos(ev, frame):
            stack = frame.stack
            rhs = stack.pop()
            lhs = stack.pop()
            if ev.truthy(ev.binary_op(bop, lhs, rhs, line)):
                return table[target]
            return nxt
    else:
        def clos(ev, frame):
            stack = frame.stack
            rhs = stack.pop()
            lhs = stack.pop()
            if ev.truthy(ev.binary_op(bop, lhs, rhs, line)):
                return nxt
            return table[target]
    return clos


def _const_store_closure(op1, op2, nxt):
    mv = MVInteger(op1.ctype, IntegerValue.of_int(op1.value))
    charged = op1.charge
    if type(op2) is InitStore:
        if charged:
            def clos(ev, frame):
                steps = ev.steps + 1
                ev.steps = steps
                if steps > ev._max_steps:
                    ev._steps_exhausted()
                if ev._deadline_at is not None and not (steps & 1023):
                    ev.meter.check_deadline(steps)
                ctype, ptr = frame.stack.pop()
                ev.model.store(ctype, ptr, mv, initialising=True)
                return nxt
        else:
            def clos(ev, frame):
                ctype, ptr = frame.stack.pop()
                ev.model.store(ctype, ptr, mv, initialising=True)
                return nxt
    else:  # StoreValue
        if charged:
            def clos(ev, frame):
                steps = ev.steps + 1
                ev.steps = steps
                if steps > ev._max_steps:
                    ev._steps_exhausted()
                if ev._deadline_at is not None and not (steps & 1023):
                    ev.meter.check_deadline(steps)
                stack = frame.stack
                ctype, ptr = stack.pop()
                converted = ev.convert(mv, ctype)
                if isinstance(ctype, UnionT):
                    raise CTypeError(
                        "whole-union assignment is not supported")
                ev.model.store(ctype, ptr, converted)
                stack.append(converted)
                return nxt
        else:
            def clos(ev, frame):
                stack = frame.stack
                ctype, ptr = stack.pop()
                converted = ev.convert(mv, ctype)
                if isinstance(ctype, UnionT):
                    raise CTypeError(
                        "whole-union assignment is not supported")
                ev.model.store(ctype, ptr, converted)
                stack.append(converted)
                return nxt
    return clos


# ---------------------------------------------------------------------------
# The compile pass
# ---------------------------------------------------------------------------


def _compile_func(func: CoreFunc, scratch) -> CompiledFunc:
    ops = func.ops
    n = len(ops)
    targets = _jump_targets(ops)
    folds = _plan_folds(func, targets, scratch)

    # Slot structure: folded region / fused pair / single op per start.
    slots: list[tuple] = []
    i = 0
    while i < n:
        fold = folds.get(i)
        if fold is not None:
            slots.append(("fold", i, fold))
            i = fold[0] + 1
            continue
        j = i + 1
        if j < n and j not in targets and j not in folds:
            kind = _pair_kind(ops[i], ops[j])
            if kind is not None:
                slots.append(("fused", i, kind))
                i += 2
                continue
        slots.append(("op", i))
        i += 1

    # Build closures back-to-front so each slot's successor exists for
    # direct pre-binding; control transfers go through ``table`` (one
    # list index per *taken* branch, none per straight-line op).
    table: list = [None] * n
    for slot in reversed(slots):
        kind, start = slot[0], slot[1]
        if kind == "fold":
            end, charges, mv = slot[2]
            nxt = table[end + 1] if end + 1 < n else None
            table[start] = _fold_closure(mv, charges, nxt)
        elif kind == "fused":
            nxt = table[start + 2] if start + 2 < n else None
            pair = slot[2]
            if pair == "load_binop":
                table[start] = _load_binop_closure(
                    ops[start], ops[start + 1], nxt)
            elif pair == "cmp_branch":
                table[start] = _cmp_branch_closure(
                    ops[start], ops[start + 1], nxt, table)
            else:
                table[start] = _const_store_closure(
                    ops[start], ops[start + 1], nxt)
        else:
            nxt = table[start + 1] if start + 1 < n else None
            table[start] = _op_closure(ops[start], start, nxt, table)

    plan = []
    for slot in slots:
        kind, start = slot[0], slot[1]
        if kind == "fold":
            end, charges, mv = slot[2]
            plan.append(("fold", start, end, charges,
                         f"{mv.ival.value()} : {mv.ctype}"))
        elif kind == "fused":
            plan.append(("fused", start, slot[2]))
        else:
            plan.append(("op", start, ops[start].name))
    return CompiledFunc(func.name, func, table, tuple(plan))


def compile_core(program: CoreProgram, impl=None) -> CompiledProgram:
    """Lower ``program`` into direct-threaded closure tables.

    ``impl`` (an :class:`~repro.impls.config.Implementation`) enables
    the constant-folding pass, which trial-evaluates candidate regions
    under both execution modes of ``impl``'s compile axes; ``None``
    compiles structurally (fuse + thread, no folds) -- used by the
    unpickle path, where no implementation is in hand.
    """
    scratch = _scratch_pair(program, impl) if impl is not None else None
    functions = {name: _compile_func(func, scratch)
                 for name, func in program.functions.items()}
    globals_init = _compile_func(program.globals_init, scratch)
    return CompiledProgram(program, functions, globals_init)


def render_compiled(compiled: CompiledProgram) -> str:
    """The ``--dump-core`` listing under the compiled evaluator: the
    Core listing per function plus what the compiler did to it (folded
    regions with their replacement constant and batched charges, fused
    pairs).  Deterministic, suitable for golden tests."""
    sections = []
    funcs = []
    gi = compiled.globals_init
    if gi.core.ops and len(gi.core.ops) > 1:
        funcs.append(gi)
    funcs.extend(cf for cf in compiled.functions.values() if cf.core.ops)
    for cf in funcs:
        lines = [render_func(cf.core)]
        notes = []
        for entry in cf.plan:
            if entry[0] == "fold":
                _, start, end, charges, value = entry
                notes.append(f"    fold {start}-{end} -> push {value} "
                             f"({charges} charge(s))")
            elif entry[0] == "fused":
                _, start, kind = entry
                notes.append(f"    fuse {start}+{start + 1} {kind}")
        if notes:
            lines.append("  compiled:")
            lines.extend(notes)
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------


class CompiledEvaluator(CoreEvaluator):
    """Run a :class:`CompiledProgram` by direct-threaded dispatch.

    Inherits every semantic helper and the calling convention from
    :class:`~repro.core.coreeval.CoreEvaluator`; only the dispatch
    strategy differs.  Traced runs (an attached bus) delegate wholesale
    to the inherited Core loop -- see the module docstring."""

    def __init__(self, compiled: CompiledProgram,
                 model: MemoryModel) -> None:
        super().__init__(compiled.core, model)
        self.compiled = compiled

    # -- dispatch ----------------------------------------------------------

    def _loop(self) -> None:
        if self.bus is not None:
            return super()._loop()
        frames = self.frames
        while frames:
            frame = frames[-1]
            k = frame.resume
            while k is not None:
                k = k(self, frame)

    def invoke_user(self, fdef, args, varargs) -> None:
        super().invoke_user(fdef, args, varargs)
        if self.bus is None:
            self.frames[-1].resume = \
                self.compiled.functions[fdef.name].entry

    # -- top level ---------------------------------------------------------

    def run(self, main: str = "main") -> Outcome:
        """Run ``main``, serving pure repeat runs from the run memo.

        A run with no bus, no meter (hence no budget and no fault
        plan) is deterministic in the compiled program and the run
        configuration, so its frozen Outcome is shared across repeats;
        any attached instrumentation bypasses the memo entirely (the
        run must actually step to emit events, charge budgets, or meet
        a fault plan).  On a memo hit this evaluator has not executed:
        ``steps`` stays 0 and ``out`` stays empty.
        """
        if self.bus is None and self.meter is None:
            key = (main, self._snapshot_key())
            outcome = self.compiled.outcomes.get(key)
            if outcome is None:
                outcome = super().run(main)
                self.compiled.outcomes[key] = outcome
            return outcome
        return super().run(main)

    def _execute(self, main: str) -> Outcome:
        if self.bus is not None:
            return super()._execute(main)
        compiled = self.compiled
        key = self._snapshot_key()
        try:
            snap = compiled.snapshots.get(key)
            if snap is not None and self._restorable(snap):
                self._restore(snap)
            else:
                self._register_static_storage()
                frame = CoreFrame("<globals>", self.core.globals_init)
                frame.resume = compiled.globals_init.entry
                self.frames.append(frame)
                self._base_frames = 1
                self._loop()
                self._base_frames = 0
                if snap is None and self._capturable():
                    compiled.snapshots[key] = self._capture()
            fdef = self.functions.get(main)
            if fdef is None or fdef.body is None:
                return Outcome.frontend_error(f"no function {main!r}")
            self.invoke_user(fdef, [], None)
            self._loop()
        except BaseException:
            self._unwind_all()
            raise
        return self._main_outcome(self._result)

    # -- snapshots ---------------------------------------------------------

    def _snapshot_key(self) -> tuple:
        return run_config_key(self.model)

    def _capturable(self) -> bool:
        # State after a clean globals phase is a pure function of the
        # program and the run configuration; fault plans are excluded
        # because a plan that did not fire here must still be able to
        # fire at the same allocation index in a later run.
        meter = self.meter
        return meter is None or meter.faults is None

    def _restorable(self, snap: _Snapshot) -> bool:
        """A governed run may only skip the globals phase when the
        budget provably could not have observed it: no fault plan, no
        deadline pressure recorded per-step (the capture already
        charged deterministically), and every deterministic axis at
        least as large as the snapshot's usage."""
        meter = self.meter
        if meter is None:
            return snap.steps <= self._max_steps
        if meter.faults is not None:
            return False
        if snap.steps > self._max_steps:
            return False
        budget = meter.budget
        if budget.max_allocations is not None and \
                snap.alloc_count > budget.max_allocations:
            return False
        if budget.max_alloc_bytes is not None and \
                snap.alloc_bytes > budget.max_alloc_bytes:
            return False
        return True

    def _capture(self) -> _Snapshot:
        state = self.model.state
        snap = _Snapshot()
        snap.allocations = {
            ident: Allocation_clone(alloc)
            for ident, alloc in state.allocations.items()
        }
        snap.iotas = dict(state.iotas)
        snap.bytes = dict(state.bytes)        # AbsByte is frozen
        snap.capmeta = {addr: CapMeta(meta.tag, meta.ghost)
                        for addr, meta in state.capmeta.items()}
        snap.allocator = state.allocator.snapshot()
        snap.next_alloc_id = state._next_alloc_id
        snap.next_iota_id = state._next_iota_id
        snap.functions = dict(self.functions)
        snap.func_ptrs = dict(self.func_ptrs)
        snap.func_by_addr = dict(self.func_by_addr)
        snap.globals = dict(self.globals)     # Bindings are never mutated
        snap.statics = dict(self.statics)
        snap.string_literals = dict(self.string_literals)
        snap.steps = self.steps
        snap.out = self.out.getvalue()
        snap.alloc_count = len(state.allocations)
        snap.alloc_bytes = sum(a.cap_size
                               for a in state.allocations.values())
        return snap

    def _restore(self, snap: _Snapshot) -> None:
        state = self.model.state
        state.allocations = {ident: Allocation_clone(alloc)
                             for ident, alloc in snap.allocations.items()}
        state.iotas = dict(snap.iotas)
        state.bytes = dict(snap.bytes)
        state.capmeta = {addr: CapMeta(meta.tag, meta.ghost)
                         for addr, meta in snap.capmeta.items()}
        state.allocator.restore(snap.allocator)
        state._next_alloc_id = snap.next_alloc_id
        state._next_iota_id = snap.next_iota_id
        self.functions.update(snap.functions)
        self.func_ptrs.update(snap.func_ptrs)
        self.func_by_addr.update(snap.func_by_addr)
        self.globals.update(snap.globals)
        self.statics.update(snap.statics)
        self.string_literals.update(snap.string_literals)
        self.steps = snap.steps
        if snap.out:
            self.out.write(snap.out)
        meter = self.meter
        if meter is not None:
            meter.allocations = snap.alloc_count
            meter.alloc_bytes = snap.alloc_bytes


def Allocation_clone(alloc):
    """Field-by-field Allocation copy (``alive``/``exposed`` are
    mutated at runtime, so snapshot entries must be private)."""
    from repro.memory.allocation import Allocation
    new = Allocation.__new__(Allocation)
    new.ident = alloc.ident
    new.base = alloc.base
    new.size = alloc.size
    new.align = alloc.align
    new.kind = alloc.kind
    new.ctype = alloc.ctype
    new.name = alloc.name
    new.readonly = alloc.readonly
    new.alive = alloc.alive
    new.exposed = alloc.exposed
    new.cap_base = alloc.cap_base
    new.cap_size = alloc.cap_size
    return new
