"""The iterative Core evaluator.

Executes :class:`~repro.core.coreir.CoreProgram` with an explicit frame
stack: ``Invoke`` pushes a :class:`CoreFrame`, ``Ret`` pops one, and the
dispatch loop below simply runs the active frame's op list.  There is
no host recursion anywhere in the execution path -- call depth is
bounded by the deterministic ``CALL_DEPTH_LIMIT`` counting frames, and
a depth-100000 call chain terminates with a structured
``resource_exhausted`` without ever touching the host recursion limit.
There is likewise no exception-driven control flow: the AST walker's
``ReturnSignal``/``BreakSignal``/``ContinueSignal`` have no Core
counterpart (break/continue are jumps; return is a frame pop).

The evaluator subclasses :class:`~repro.core.interp.Interpreter` for
its *semantic* helpers only -- conversions, arithmetic, truthiness,
lvalue decay, the outcome classification in ``run()`` -- never for its
recursive evaluation strategy: ``_execute`` is overridden wholesale
with the frame-stack loop.

Step metering is per charged op (see the charge-matching discipline in
:mod:`repro.core.elaborate`), so budgets and traces agree with the AST
walker byte-for-byte; when a trace bus is attached, each op publishes
its id (``function:index``) as the events' ``op`` field, which is how
the explainer's causal chains point at explicit Core loads, stores, and
derivations.
"""

from __future__ import annotations

from repro.capability.permissions import Permission
from repro.core.coreir import CoreFunc, CoreProgram
from repro.core.interp import (
    Binding, CALL_DEPTH_LIMIT, Frame, Interpreter,
)
from repro.core.cast import FuncDef
from repro.errors import (
    CheriTrap, CTypeError, Outcome, TrapKind, UB, UndefinedBehaviour,
)
from repro.memory.allocation import AllocKind
from repro.memory.model import MemoryModel
from repro.memory.values import (
    IntegerValue, MemoryValue, MVInteger, PointerValue,
)
from repro.ctypes.types import INT

#: The process-wide default evaluation strategy.  ``compiled`` -- the
#: direct-threaded closure backend (:mod:`repro.core.compile`).  The
#: three-way differential gate (CI job ``evaluator-differential``)
#: holds all three evaluators byte-identical over the full suite and a
#: 500-program fuzz batch, which is what allowed flipping the default
#: first off the AST walker and now onto the compiled backend; ``ast``
#: and ``core`` stay available as differential oracles.
_DEFAULT_EVALUATOR = "compiled"

EVALUATORS = ("ast", "core", "compiled")


def set_default_evaluator(name: str) -> None:
    """Select the process-wide default (worker processes do not inherit
    the parent's choice; the engine re-applies it per task)."""
    global _DEFAULT_EVALUATOR
    if name not in EVALUATORS:
        raise ValueError(f"unknown evaluator {name!r} "
                         f"(expected one of {EVALUATORS})")
    _DEFAULT_EVALUATOR = name


def default_evaluator() -> str:
    return _DEFAULT_EVALUATOR


class CoreFrame(Frame):
    """One Core activation: the AST walker's frame plus an operand
    stack, a program counter into the function's op list, and the
    stack-allocator mark released at teardown (``None`` for the phantom
    globals-phase frame, which owns no stack storage)."""

    def __init__(self, name: str, func: CoreFunc, mark=None) -> None:
        super().__init__(name)
        self.func = func
        self.pc = 0
        self.stack: list = []
        self.mark = mark


class CoreEvaluator(Interpreter):
    """Evaluate one elaborated translation unit iteratively."""

    def __init__(self, core: CoreProgram, model: MemoryModel) -> None:
        super().__init__(core.ast, model)
        self.core = core
        self._result: MemoryValue | None = None
        #: Frames that do not count toward C call depth (the phantom
        #: globals-initialisation frame while it is live).
        self._base_frames = 0

    # ------------------------------------------------------------------
    # Top level (run() and the exception->Outcome mapping are inherited)
    # ------------------------------------------------------------------

    def _execute(self, main: str) -> Outcome:
        try:
            self._register_static_storage()
            # Globals phase: run the initialiser ops on a phantom frame
            # with empty scopes (identifier lookup falls through to the
            # globals map, as the walker's empty frame list does).  A
            # function called from a global initialiser starts at call
            # depth 0, exactly as under the walker.
            self.frames.append(
                CoreFrame("<globals>", self.core.globals_init))
            self._base_frames = 1
            self._loop()
            self._base_frames = 0
            fdef = self.functions.get(main)
            if fdef is None or fdef.body is None:
                return Outcome.frontend_error(f"no function {main!r}")
            self.invoke_user(fdef, [], None)
            self._loop()
        except BaseException:
            self._unwind_all()
            raise
        return self._main_outcome(self._result)

    def _unwind_all(self) -> None:
        """Frame teardown on any raised error, innermost first --
        the Core form of the walker's per-call ``finally`` chain, so
        ``alloc.kill`` event order is identical."""
        frames = self.frames
        while frames:
            frame = frames.pop()
            for ident in frame.allocs:
                self.model.kill_allocation(ident)
            if frame.mark is not None:
                self.model.stack_release(frame.mark)

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        # Two inner loops over the per-function dispatch arrays
        # (coreir.finalize_func): the traced variant additionally
        # stamps ``bus.step``/``bus.op``.  Both charge *before*
        # running the op and poll the deadline at 1024-step
        # boundaries, so step accounting is byte-identical to the
        # walker's regardless of which variant runs.
        frames = self.frames
        bus = self.bus
        max_steps = self._max_steps
        while frames:
            frame = frames[-1]
            func = frame.func
            runs = func.runs
            charges = func.charges
            deadline = self._deadline_at
            if bus is not None:
                ids = func.ids
                while True:
                    pc = frame.pc
                    frame.pc = pc + 1
                    if charges[pc]:
                        steps = self.steps + 1
                        self.steps = steps
                        if steps > max_steps:
                            self._steps_exhausted()
                        if deadline is not None and \
                                not (steps & 1023):
                            self.meter.check_deadline(steps)
                        bus.step = steps
                    bus.op = ids[pc]
                    if runs[pc](self, frame):
                        break
            else:
                while True:
                    pc = frame.pc
                    frame.pc = pc + 1
                    if charges[pc]:
                        steps = self.steps + 1
                        self.steps = steps
                        if steps > max_steps:
                            self._steps_exhausted()
                        if deadline is not None and \
                                not (steps & 1023):
                            self.meter.check_deadline(steps)
                    if runs[pc](self, frame):
                        break

    def charge_step(self) -> None:
        """One evaluation step outside the loop prologue (ops that fold
        an extra walker ``eval`` into themselves, e.g. resolving a call
        through a function-pointer object)."""
        self.steps += 1
        if self.steps > self._max_steps:
            self._steps_exhausted()
        if self._deadline_at is not None and not (self.steps & 1023):
            self.meter.check_deadline(self.steps)
        if self.bus is not None:
            self.bus.step = self.steps

    # ------------------------------------------------------------------
    # Calling convention (ops delegate here)
    # ------------------------------------------------------------------

    def invoke_user(self, fdef: FuncDef, args: list[MemoryValue],
                    varargs: list[MemoryValue] | None) -> None:
        """Push a frame for a user function (the Core counterpart of
        ``call_function`` up to body entry)."""
        if fdef.body is None:
            raise CTypeError(f"call to undefined function {fdef.name!r}")
        if len(args) != len(fdef.params):
            raise CTypeError(
                f"{fdef.name} expects {len(fdef.params)} arguments, "
                f"got {len(args)}")
        depth = len(self.frames) - self._base_frames
        if depth > CALL_DEPTH_LIMIT:
            self._cut("call-depth",
                      f"call to {fdef.name}() at depth {depth} "
                      f"over the {CALL_DEPTH_LIMIT}-frame limit")
        bus = self.bus
        if bus is not None:
            bus.emit("interp.call", func=fdef.name, args=len(args),
                     depth=depth,
                     what=f"call {fdef.name}() with {len(args)} arg(s)")
        frame = CoreFrame(fdef.name, self.core.functions[fdef.name],
                          mark=self.model.stack_mark())
        # Push before parameter setup so _unwind_all tears down a
        # partially-initialised frame (the walker's finally does too).
        self.frames.append(frame)
        for param, arg in zip(fdef.params, args):
            value = self.convert(arg, param.ctype)
            ptr = self.model.allocate_object(
                param.ctype, AllocKind.STACK, param.name)
            self.model.store(param.ctype, ptr, value)
            frame.bind(param.name, Binding(
                param.ctype, ptr,
                ptr.prov.ident if not ptr.prov.is_empty else 0))
            frame.allocs.append(ptr.prov.ident)
        if varargs:
            frame.varargs = [(v.ctype, v) for v in varargs]

    def return_from_frame(self, result: MemoryValue | None) -> None:
        """Pop the active frame with teardown; normalize the value for
        the caller (``None`` -> int 0, like ``_call_user``) or record
        the raw result when the entry frame returns."""
        frame = self.frames.pop()
        for ident in frame.allocs:
            self.model.kill_allocation(ident)
        self.model.stack_release(frame.mark)
        if self.frames:
            self.frames[-1].stack.append(
                result if result is not None
                else MVInteger(INT, IntegerValue.of_int(0)))
        else:
            self._result = result

    def resolve_code_pointer(self, ptr: PointerValue) -> FuncDef:
        """Capability checks for an indirect call -- performed *before*
        argument evaluation, as in the walker's ``_call_via_pointer``."""
        cap = ptr.cap
        if self.model.hardware:
            if not cap.tag:
                raise CheriTrap(TrapKind.TAG_VIOLATION,
                                "branch via untagged capability")
            if not cap.has_perm(Permission.EXECUTE):
                raise CheriTrap(TrapKind.PERMISSION_VIOLATION,
                                "branch without EXECUTE permission")
        else:
            if cap.ghost.tag_unspecified:
                raise UndefinedBehaviour(UB.CHERI_UNDEFINED_TAG,
                                         "call via manipulated capability")
            if not cap.tag:
                raise UndefinedBehaviour(UB.CHERI_INVALID_CAP,
                                         "call via untagged capability")
            if not cap.has_perm(Permission.EXECUTE):
                raise UndefinedBehaviour(
                    UB.CHERI_INSUFFICIENT_PERMISSIONS,
                    "call without EXECUTE permission")
        name = self.func_by_addr.get(cap.address)
        if name is None:
            if self.model.hardware:
                raise CheriTrap(TrapKind.SIGSEGV,
                                "jump to non-code address")
            raise UndefinedBehaviour(UB.ACCESS_OUT_OF_BOUNDS,
                                     "call to non-function address")
        return self.functions[name]
