"""Lexer (with a minimal preprocessor) for the CHERI C subset.

The preprocessor supports what the paper's test programs need:
``#include`` lines are recognised and skipped (the standard headers'
contents -- ``stdint.h`` typedefs, ``limits.h`` macros, the CHERI
intrinsics of ``cheriintrin.h`` -- are built into the parser and
interpreter), and object-like ``#define`` macros are expanded at the
token level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CSyntaxError

KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "signed", "unsigned", "_Bool",
    "const", "volatile", "static", "extern", "struct", "union", "enum",
    "typedef", "sizeof", "return", "if", "else", "while", "do", "for",
    "break", "continue", "switch", "case", "default", "goto", "float",
    "double", "inline", "restrict", "_Alignof",
})

#: Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: str          # "id", "kw", "num", "char", "str", "punct", "eof"
    text: str
    line: int
    col: int
    value: object = None   # int value for num/char; decoded str for str
    suffix: str = ""       # numeric suffix, lowercased (e.g. "ul")
    base: int = 10         # numeric base (8/10/16)

    def is_punct(self, *texts: str) -> bool:
        return self.kind == "punct" and self.text in texts

    def is_kw(self, *names: str) -> bool:
        return self.kind == "kw" and self.text in names


#: Predefined object-like macros (the capprint.h helper of Appendix A:
#: ``"%" PTR_FMT`` formats a capability string produced by ``sptr``).
PREDEFINED_MACROS: dict[str, list] = {
    "PTR_FMT": [Token("str", '"s"', 0, 0, value="s")],
}


class Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.macros: dict[str, list[Token]] = dict(PREDEFINED_MACROS)

    def error(self, message: str) -> CSyntaxError:
        return CSyntaxError(message, self.line, self.col)

    # -- character helpers ----------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self) -> str:
        if self.pos >= len(self.source):
            raise self.error("unexpected end of input")
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _skip_space_and_comments(self, *, stop_at_newline: bool = False) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\n" and stop_at_newline:
                return
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(), self._advance()
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(), self._advance()
                        break
                    self._advance()
                else:
                    raise self.error("unterminated comment")
            else:
                return

    # -- tokenisation ----------------------------------------------------

    def tokens(self) -> list[Token]:
        """Tokenise the whole input, applying the mini-preprocessor."""
        out: list[Token] = []
        expanding: set[str] = set()
        while True:
            tok = self._next_raw()
            if tok is None:
                out.append(Token("eof", "", self.line, self.col))
                return out
            if tok.kind == "id" and tok.text in self.macros:
                out.extend(self._expand(tok.text, expanding))
            else:
                out.append(tok)

    def _expand(self, name: str, expanding: set[str]) -> list[Token]:
        if name in expanding:
            return [Token("id", name, self.line, self.col)]
        expanding = expanding | {name}
        out: list[Token] = []
        for tok in self.macros[name]:
            if tok.kind == "id" and tok.text in self.macros:
                out.extend(self._expand(tok.text, expanding))
            else:
                out.append(tok)
        return out

    def _next_raw(self) -> Token | None:
        while True:
            self._skip_space_and_comments()
            if self.pos >= len(self.source):
                return None
            if self._peek() == "#" and self.col == 1 or (
                    self._peek() == "#" and self._at_line_start()):
                self._preprocessor_line()
                continue
            break
        line, col = self.line, self.col
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._identifier(line, col)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, col)
        if ch == "'":
            return self._char_const(line, col)
        if ch == '"':
            return self._string(line, col)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                for _ in punct:
                    self._advance()
                return Token("punct", punct, line, col)
        raise self.error(f"unexpected character {ch!r}")

    def _at_line_start(self) -> bool:
        i = self.pos - 1
        while i >= 0 and self.source[i] in " \t":
            i -= 1
        return i < 0 or self.source[i] == "\n"

    # -- preprocessor -----------------------------------------------------

    def _preprocessor_line(self) -> None:
        self._advance()  # '#'
        self._skip_space_and_comments(stop_at_newline=True)
        directive = ""
        while self._peek().isalpha():
            directive += self._advance()
        if directive in ("include", "pragma", "undef", ""):
            self._skip_to_eol()
            return
        if directive == "define":
            self._define()
            return
        raise self.error(f"unsupported preprocessor directive #{directive}")

    def _define(self) -> None:
        self._skip_space_and_comments(stop_at_newline=True)
        if not (self._peek().isalpha() or self._peek() == "_"):
            raise self.error("#define needs a name")
        line, col = self.line, self.col
        name_tok = self._identifier(line, col)
        if self._peek() == "(":
            raise self.error("function-like macros are not supported")
        body: list[Token] = []
        while True:
            self._skip_space_and_comments(stop_at_newline=True)
            if self.pos >= len(self.source) or self._peek() == "\n":
                break
            start = self.line
            tok = self._next_body_token()
            if tok is None or tok.line != start:
                break
            body.append(tok)
        self.macros[name_tok.text] = body

    def _next_body_token(self) -> Token | None:
        line, col = self.line, self.col
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._identifier(line, col)
        if ch.isdigit():
            return self._number(line, col)
        if ch == "'":
            return self._char_const(line, col)
        if ch == '"':
            return self._string(line, col)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                for _ in punct:
                    self._advance()
                return Token("punct", punct, line, col)
        return None

    def _skip_to_eol(self) -> None:
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    # -- token classes ------------------------------------------------------

    def _identifier(self, line: int, col: int) -> Token:
        text = ""
        while self._peek().isalnum() or self._peek() == "_":
            text += self._advance()
        kind = "kw" if text in KEYWORDS else "id"
        return Token(kind, text, line, col)

    def _number(self, line: int, col: int) -> Token:
        text = ""
        base = 10
        if self._peek() == "0" and self._peek(1) in "xX":
            base = 16
            text += self._advance() + self._advance()
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._advance()
        else:
            while self._peek().isdigit():
                text += self._advance()
            if text.startswith("0") and len(text) > 1:
                base = 8
        if base == 10 and self._peek() and self._peek() in ".eE":
            if self._peek() == "." or (self._peek() in "eE"
                                       and self._peek(1).isdigit()):
                raise self.error("floating-point constants not supported")
        suffix = ""
        while self._peek() and self._peek() in "uUlL":
            suffix += self._advance().lower()
        digits = text[2:] if base == 16 else text
        value = int(digits, base) if digits else 0
        return Token("num", text + suffix, line, col, value=value,
                     suffix=suffix, base=base)

    def _char_const(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance()
            value = self._escape()
        else:
            value = ord(self._advance())
        if self._peek() != "'":
            raise self.error("unterminated character constant")
        self._advance()
        return Token("char", f"'{chr(value)}'", line, col, value=value)

    def _escape(self) -> int:
        ch = self._advance()
        simple = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39,
                  '"': 34, "a": 7, "b": 8, "f": 12, "v": 11}
        if ch in simple:
            return simple[ch]
        if ch == "x":
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            return int(digits, 16) & 0xFF
        raise self.error(f"unsupported escape \\{ch}")

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self.error("unterminated string literal")
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                chars.append(chr(self._escape()))
            else:
                chars.append(self._advance())
        return Token("str", '"' + "".join(chars) + '"', line, col,
                     value="".join(chars))


def tokenize(source: str) -> list[Token]:
    """Lex a translation unit, merging adjacent string literals."""
    toks = Lexer(source).tokens()
    out: list[Token] = []
    for tok in toks:
        if (tok.kind == "str" and out and out[-1].kind == "str"):
            prev = out.pop()
            merged = prev.value + tok.value  # type: ignore[operator]
            out.append(Token("str", f'"{merged}"', prev.line, prev.col,
                             value=merged))
        else:
            out.append(tok)
    return out
