"""The CHERI C abstract-machine evaluator.

This is the executable semantics of S4: a typed AST evaluator in which
*every* memory effect goes through the
:class:`~repro.memory.model.MemoryModel`, so that the semantic content --
capability checks, ghost state, provenance, UB detection -- lives in one
place and this module contributes only what Cerberus's Core elaboration
contributes: conversions (with CHERI C's integer ranks), the explicit
capability-derivation step for arithmetic (S4.4), control flow, and
calling convention.

The same evaluator runs in abstract mode (the paper's semantics: UB is
reported at the point the abstract machine reaches it) and in hardware
mode (the simulated Clang/GCC implementations: traps, real tag clears,
wrapping arithmetic), selected by the memory model's mode.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.capability.permissions import Permission
from repro.core import builtins as builtin_mod
from repro.core.cast import (
    AlignofType, Assign, Binary, Block, Break, Call, Cast, Comma,
    Conditional, Continue, Declarator, DeclStmt, Empty, Expr, ExprStmt, For,
    FuncDef, GlobalDecl, Ident, If, Index, InitList, IntLit, Member,
    OffsetofExpr, Program, Return, SizeofExpr, SizeofType, Stmt, StrLit,
    Switch, Unary, VaArg, While,
)
from repro.ctypes.layout import TargetLayout
from repro.ctypes.types import (
    ArrayT, BOOL, CType, FuncT, IKind, INT, Integer, Pointer, StructT,
    UnionT, VOID, Void,
)
from repro.errors import (
    AssertionFailure, CheriTrap, CSyntaxError, CTypeError, Outcome,
    ResourceExhausted, TrapKind, UB, UndefinedBehaviour,
)
from repro.memory.allocation import AllocKind
from repro.memory.derivation import derive
from repro.memory.intrinsics import Intrinsics
from repro.memory.model import MemoryModel
from repro.memory.values import (
    IntegerValue, MemoryValue, MVArray, MVInteger, MVPointer, MVStruct,
    MVUnion, MVUnspecified, PointerValue,
)


class ReturnSignal(Exception):
    def __init__(self, value: MemoryValue | None) -> None:
        self.value = value


class BreakSignal(Exception):
    pass


class ContinueSignal(Exception):
    pass


class ExitSignal(Exception):
    def __init__(self, status: int) -> None:
        self.status = status


class AbortSignal(Exception):
    def __init__(self, detail: str) -> None:
        self.detail = detail


@dataclass
class Binding:
    ctype: CType
    ptr: PointerValue
    alloc_id: int


class Frame:
    """One function activation: scope chain + cleanup bookkeeping."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.scopes: list[dict[str, Binding]] = [{}]
        self.allocs: list[int] = []
        self.varargs: list[tuple[CType, MemoryValue]] = []

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, binding: Binding) -> None:
        self.scopes[-1][name] = binding

    def lookup(self, name: str) -> Binding | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


#: The default evaluation step budget: the executable semantics is a
#: test oracle for small programs, so runaway loops indicate a broken
#: test.  A :class:`~repro.robust.Budget` on the memory model's meter
#: overrides it per run.
STEP_LIMIT = 2_000_000

#: The function-call depth ceiling.  Infinite recursion in the subject
#: program must surface as a ``resource_exhausted`` outcome well before
#: the *host* interpreter's own recursion limit turns it into an
#: uninformative ``RecursionError``.
CALL_DEPTH_LIMIT = 200


class Interpreter:
    """Evaluate one translation unit against one memory model."""

    def __init__(self, program: Program, model: MemoryModel) -> None:
        self.program = program
        self.model = model
        self.layout: TargetLayout = model.layout
        self.arch = model.arch
        self.intrinsics = Intrinsics(model)
        self.out = io.StringIO()
        self.functions: dict[str, FuncDef] = {}
        self.func_ptrs: dict[str, PointerValue] = {}
        self.func_by_addr: dict[int, str] = {}
        self.globals: dict[str, Binding] = {}
        self.statics: dict[tuple[str, str], Binding] = {}
        self.string_literals: dict[str, PointerValue] = {}
        self.frames: list[Frame] = []
        self.steps = 0
        #: The model's event bus (None = untraced).  Kept as a local
        #: attribute so the hot step counters pay one ``is None`` test.
        self.bus = model.bus
        #: Budget enforcement (see :mod:`repro.robust`): the step limit
        #: and deadline are flattened onto the interpreter so the hot
        #: path pays one comparison, not an attribute chase per step.
        meter = getattr(model, "meter", None)
        self.meter = meter
        self._max_steps = STEP_LIMIT
        self._deadline_at: float | None = None
        if meter is not None:
            if meter.budget.max_steps is not None:
                self._max_steps = meter.budget.max_steps
            self._deadline_at = meter.deadline_at

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self, main: str = "main") -> Outcome:
        outcome = self._run(main)
        bus = self.bus
        if bus is not None:
            bus.step = self.steps
            # The outcome is a run-level summary, not tied to any op.
            bus.op = None
            bus.emit("run.outcome", outcome=outcome.kind.value,
                     ub=str(outcome.ub) if outcome.ub is not None else None,
                     trap=(str(outcome.trap) if outcome.trap is not None
                           else None),
                     exit_status=outcome.exit_status,
                     unspecified=outcome.unspecified,
                     limit=outcome.limit or None,
                     what=outcome.describe())
        return outcome

    def _cut(self, limit: str, where: str) -> None:
        """Report a budget cut-off through the meter (which emits the
        ``robust.cutoff`` event) or raise directly when ungoverned."""
        meter = self.meter
        if meter is not None:
            meter.cut(limit, where)
        raise ResourceExhausted(limit, where)

    def _steps_exhausted(self) -> None:
        self._cut("steps",
                  f"step {self.steps} over the {self._max_steps}-step "
                  f"budget")

    def _run(self, main: str) -> Outcome:
        try:
            return self._execute(main)
        except UndefinedBehaviour as exc:
            return Outcome.undefined(exc.ub, exc.detail, self.out.getvalue())
        except CheriTrap as exc:
            return Outcome.trapped(exc.kind, exc.detail, self.out.getvalue())
        except AssertionFailure as exc:
            return Outcome.aborted(str(exc), self.out.getvalue())
        except AbortSignal as exc:
            return Outcome.aborted(exc.detail, self.out.getvalue())
        except ExitSignal as exc:
            return Outcome.exited(exc.status, self.out.getvalue())
        except (CSyntaxError, CTypeError) as exc:
            return Outcome.frontend_error(str(exc))
        except ResourceExhausted as exc:
            return Outcome.resource_exhausted(exc.limit, exc.where,
                                              self.out.getvalue())
        except RecursionError:
            # The CALL_DEPTH_LIMIT guard should fire first; this is the
            # backstop for host-stack exhaustion via deep *expressions*.
            return Outcome.resource_exhausted(
                "python-recursion", "host interpreter recursion limit",
                self.out.getvalue())
        except MemoryError:
            return Outcome.resource_exhausted(
                "python-memory", "host interpreter out of memory",
                self.out.getvalue())

    def _execute(self, main: str) -> Outcome:
        """The evaluation strategy: the AST walker here, overridden by
        the iterative Core evaluator."""
        self._setup()
        fdef = self.functions.get(main)
        if fdef is None or fdef.body is None:
            return Outcome.frontend_error(f"no function {main!r}")
        result = self.call_function(fdef, [])
        return self._main_outcome(result)

    def _main_outcome(self, result: MemoryValue | None) -> Outcome:
        if isinstance(result, MVUnspecified):
            # S3.5: ghost state reached main's return value; there is
            # no single correct concrete exit status.
            return Outcome.exited_unspecified(self.out.getvalue())
        status = 0
        if result is not None and isinstance(result, MVInteger):
            status = self.layout.wrap(IKind.INT, result.ival.value())
        return Outcome.exited(status, self.out.getvalue())

    def _register_static_storage(self) -> list[tuple[GlobalDecl, Binding]]:
        """Register functions (with dedup of prototypes against
        definitions) and allocate all globals *before* any initialiser
        runs (so initialisers may take addresses of later globals);
        uninitialised static objects are zero (ISO 6.7.9p10).  Returns
        the globals pending initialisation, in declaration order."""
        for fdef in self.program.functions:
            if fdef.body is None and fdef.name in self.functions:
                continue
            if fdef.body is not None or fdef.name not in self.functions:
                self.functions[fdef.name] = fdef
        for name, fdef in self.functions.items():
            ptr = self.model.allocate_function(name)
            self.func_ptrs[name] = ptr
            self.func_by_addr[ptr.address] = name
        pending: list[tuple[GlobalDecl, Binding]] = []
        for gdecl in self.program.globals:
            decl = gdecl.decl
            readonly = decl.ctype.const or _array_of_const(decl.ctype)
            ptr = self.model.allocate_object(
                decl.ctype, AllocKind.GLOBAL, decl.name, readonly=readonly)
            binding = Binding(decl.ctype, ptr,
                              ptr.prov.ident if not ptr.prov.is_empty else 0)
            self.globals[decl.name] = binding
            pending.append((gdecl, binding))
        return pending

    def _setup(self) -> None:
        for gdecl, binding in self._register_static_storage():
            decl = gdecl.decl
            if decl.init is None:
                value = self.zero_value(decl.ctype)
            else:
                value = self.eval_initializer(decl.init, decl.ctype)
            self.model.store(decl.ctype, binding.ptr, value,
                             initialising=True)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def call_function(self, fdef: FuncDef,
                      args: list[MemoryValue],
                      varargs: list[MemoryValue] | None = None
                      ) -> MemoryValue | None:
        if fdef.body is None:
            raise CTypeError(f"call to undefined function {fdef.name!r}")
        if len(args) != len(fdef.params):
            raise CTypeError(
                f"{fdef.name} expects {len(fdef.params)} arguments, "
                f"got {len(args)}")
        if len(self.frames) > CALL_DEPTH_LIMIT:
            self._cut("call-depth",
                      f"call to {fdef.name}() at depth {len(self.frames)} "
                      f"over the {CALL_DEPTH_LIMIT}-frame limit")
        bus = self.bus
        if bus is not None:
            bus.emit("interp.call", func=fdef.name, args=len(args),
                     depth=len(self.frames),
                     what=f"call {fdef.name}() with {len(args)} arg(s)")
        frame = Frame(fdef.name)
        mark = self.model.stack_mark()
        self.frames.append(frame)
        try:
            for param, arg in zip(fdef.params, args):
                value = self.convert(arg, param.ctype)
                ptr = self.model.allocate_object(
                    param.ctype, AllocKind.STACK, param.name)
                self.model.store(param.ctype, ptr, value)
                frame.bind(param.name, Binding(
                    param.ctype, ptr,
                    ptr.prov.ident if not ptr.prov.is_empty else 0))
                frame.allocs.append(ptr.prov.ident)
            if varargs:
                frame.varargs = [(v.ctype, v) for v in varargs]
            try:
                self.exec_block(fdef.body, new_scope=False)
            except ReturnSignal as ret:
                if ret.value is None or isinstance(fdef.ret, Void):
                    return None
                return self.convert(ret.value, fdef.ret)
            if fdef.name == "main":
                return MVInteger(INT, IntegerValue.of_int(0))
            return None
        finally:
            self.frames.pop()
            for ident in frame.allocs:
                self.model.kill_allocation(ident)
            self.model.stack_release(mark)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def exec_block(self, block: Block, *, new_scope: bool = True) -> None:
        frame = self.frames[-1]
        if new_scope:
            frame.push()
        try:
            for stmt in block.stmts:
                self.exec_stmt(stmt)
        finally:
            if new_scope:
                frame.pop()

    def exec_stmt(self, stmt: Stmt) -> None:
        self.steps += 1
        if self.steps > self._max_steps:
            self._steps_exhausted()
        if self._deadline_at is not None and not (self.steps & 1023):
            self.meter.check_deadline(self.steps)
        bus = self.bus
        if bus is not None:
            bus.step = self.steps
        if isinstance(stmt, Empty):
            return
        if isinstance(stmt, ExprStmt):
            self.eval(stmt.expr)
            return
        if isinstance(stmt, DeclStmt):
            for decl in stmt.decls:
                self.exec_declaration(decl, static=stmt.static)
            return
        if isinstance(stmt, Block):
            self.exec_block(stmt)
            return
        if isinstance(stmt, If):
            if self.truthy(self.eval(stmt.cond)):
                self.exec_stmt(stmt.then)
            elif stmt.other is not None:
                self.exec_stmt(stmt.other)
            return
        if isinstance(stmt, While):
            if stmt.do_while:
                while True:
                    try:
                        self.exec_stmt(stmt.body)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        pass
                    if not self.truthy(self.eval(stmt.cond)):
                        break
            else:
                while self.truthy(self.eval(stmt.cond)):
                    try:
                        self.exec_stmt(stmt.body)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        continue
            return
        if isinstance(stmt, For):
            frame = self.frames[-1]
            frame.push()
            try:
                if stmt.init is not None:
                    self.exec_stmt(stmt.init)
                while stmt.cond is None or self.truthy(self.eval(stmt.cond)):
                    try:
                        self.exec_stmt(stmt.body)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        pass
                    if stmt.step is not None:
                        self.eval(stmt.step)
            finally:
                frame.pop()
            return
        if isinstance(stmt, Switch):
            self._exec_switch(stmt)
            return
        if isinstance(stmt, Return):
            value = self.eval(stmt.value) if stmt.value is not None else None
            raise ReturnSignal(value)
        if isinstance(stmt, Break):
            raise BreakSignal()
        if isinstance(stmt, Continue):
            raise ContinueSignal()
        raise CTypeError(f"unhandled statement {type(stmt).__name__}")

    def exec_declaration(self, decl: Declarator, *, static: bool) -> None:
        frame = self.frames[-1]
        if static:
            key = (frame.name, decl.name)
            binding = self.statics.get(key)
            if binding is None:
                ptr = self.model.allocate_object(
                    decl.ctype, AllocKind.GLOBAL, decl.name,
                    readonly=decl.ctype.const)
                binding = Binding(decl.ctype, ptr,
                                  ptr.prov.ident if not ptr.prov.is_empty
                                  else 0)
                self.statics[key] = binding
                value = (self.zero_value(decl.ctype) if decl.init is None
                         else self.eval_initializer(decl.init, decl.ctype))
                self.model.store(decl.ctype, binding.ptr, value,
                                 initialising=True)
            frame.bind(decl.name, binding)
            return
        readonly = decl.ctype.const or _array_of_const(decl.ctype)
        ptr = self.model.allocate_object(
            decl.ctype, AllocKind.STACK, decl.name, readonly=readonly)
        binding = Binding(decl.ctype, ptr,
                          ptr.prov.ident if not ptr.prov.is_empty else 0)
        frame.bind(decl.name, binding)
        frame.allocs.append(binding.alloc_id)
        if decl.init is not None:
            value = self.eval_initializer(decl.init, decl.ctype)
            self.model.store(decl.ctype, ptr, value, initialising=True)

    def _exec_switch(self, stmt: Switch) -> None:
        value = self.eval(stmt.cond)
        if isinstance(value, MVUnspecified):
            if not self.model.hardware:
                raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                         "switch on unspecified value")
            selector = 0
        else:
            selector = self._int_of(value, stmt.line)
        start = None
        default = None
        for case in stmt.cases:
            if case.value is None:
                default = case.index
            elif case.value == selector:
                start = case.index
                break
        if start is None:
            start = default
        if start is None:
            return
        frame = self.frames[-1]
        frame.push()
        try:
            for sub in stmt.stmts[start:]:
                self.exec_stmt(sub)
        except BreakSignal:
            pass
        finally:
            frame.pop()

    # ------------------------------------------------------------------
    # Initialisers
    # ------------------------------------------------------------------

    def eval_initializer(self, init: Expr, ctype: CType) -> MemoryValue:
        if isinstance(init, InitList):
            return self._init_list(init, ctype)
        if isinstance(init, StrLit) and isinstance(ctype, ArrayT):
            data = init.value.encode("latin-1") + b"\x00"
            elems = []
            length = ctype.length or len(data)
            for i in range(length):
                byte = data[i] if i < len(data) else 0
                elems.append(MVInteger(ctype.elem,
                                       IntegerValue.of_int(byte)))
            return MVArray(ctype, tuple(elems))
        value = self.eval(init)
        return self.convert(value, ctype)

    def _init_list(self, init: InitList, ctype: CType) -> MemoryValue:
        if isinstance(ctype, ArrayT):
            length = ctype.length if ctype.length is not None \
                else len(init.items)
            elems = []
            for i in range(length):
                if i < len(init.items):
                    elems.append(self.eval_initializer(init.items[i],
                                                       ctype.elem))
                else:
                    elems.append(self.zero_value(ctype.elem))
            return MVArray(ctype, tuple(elems))
        if isinstance(ctype, UnionT):
            fields = ctype.fields or ()
            if not init.items or not fields:
                return MVUnion(ctype, active="", value=None)
            first = fields[0]
            return MVUnion(ctype, active=first.name,
                           value=self.eval_initializer(init.items[0],
                                                       first.ctype))
        if isinstance(ctype, StructT):
            fields = ctype.fields or ()
            members = []
            for i, f in enumerate(fields):
                if i < len(init.items):
                    members.append((f.name,
                                    self.eval_initializer(init.items[i],
                                                          f.ctype)))
                else:
                    members.append((f.name, self.zero_value(f.ctype)))
            return MVStruct(ctype, tuple(members))
        if len(init.items) == 1:
            return self.eval_initializer(init.items[0], ctype)
        raise CTypeError(f"brace initialiser for scalar type {ctype}")

    def zero_value(self, ctype: CType) -> MemoryValue:
        """Static-storage zero initialisation (null pointers for
        capability-carrying types)."""
        if isinstance(ctype, Pointer):
            return MVPointer(ctype, self.model.null_pointer())
        if isinstance(ctype, Integer):
            return MVInteger(ctype, IntegerValue.of_int(0))
        if isinstance(ctype, ArrayT):
            length = ctype.length or 0
            return MVArray(ctype, tuple(self.zero_value(ctype.elem)
                                        for _ in range(length)))
        if isinstance(ctype, UnionT):
            fields = ctype.fields or ()
            if not fields:
                return MVUnion(ctype, active="", value=None)
            return MVUnion(ctype, active=fields[0].name,
                           value=self.zero_value(fields[0].ctype))
        if isinstance(ctype, StructT):
            return MVStruct(ctype, tuple(
                (f.name, self.zero_value(f.ctype))
                for f in (ctype.fields or ())))
        raise CTypeError(f"cannot zero-initialise {ctype}")

    # ------------------------------------------------------------------
    # Lvalues
    # ------------------------------------------------------------------

    def lval(self, expr: Expr) -> tuple[CType, PointerValue]:
        if isinstance(expr, Ident):
            binding = self._lookup(expr.name)
            if binding is None:
                raise CTypeError(f"undeclared identifier {expr.name!r} "
                                 f"(line {expr.line})")
            return binding.ctype, binding.ptr
        if isinstance(expr, Unary) and expr.op == "*":
            value = self.eval(expr.operand)
            ctype, ptr = self._as_pointer(value, expr.line)
            if isinstance(ctype, Pointer):
                return ctype.pointee, ptr
            raise CTypeError(f"cannot dereference {value.ctype}")
        if isinstance(expr, Index):
            base = self.eval(expr.base)
            index = self.eval(expr.index)
            ctype, ptr = self._as_pointer(base, expr.line)
            if not isinstance(ctype, Pointer):
                raise CTypeError(f"cannot index {base.ctype}")
            n = self._int_of(index, expr.line)
            shifted = self.model.array_shift(ptr, ctype.pointee, n)
            return ctype.pointee, shifted
        if isinstance(expr, Member):
            if expr.arrow:
                base = self.eval(expr.base)
                btype, bptr = self._as_pointer(base, expr.line)
                if not isinstance(btype, Pointer) or \
                        not isinstance(btype.pointee, StructT):
                    raise CTypeError(f"-> on non-struct-pointer "
                                     f"{base.ctype}")
                stype = btype.pointee
            else:
                stype_, bptr = self.lval(expr.base)
                if not isinstance(stype_, StructT):
                    raise CTypeError(f". on non-struct {stype_}")
                stype = stype_
            member_t = stype.field_type(expr.name)
            shifted = self.model.member_shift(bptr, stype, expr.name)
            return member_t, shifted
        if isinstance(expr, StrLit):
            ptr = self._string_ptr(expr.value)
            return ArrayT(elem=Integer(IKind.CHAR, const=True),
                          length=len(expr.value) + 1), ptr
        if isinstance(expr, Cast):
            raise CTypeError("cast expressions are not lvalues")
        raise CTypeError(
            f"expression is not an lvalue: {type(expr).__name__} "
            f"(line {expr.line})")

    def _lookup(self, name: str) -> Binding | None:
        if self.frames:
            binding = self.frames[-1].lookup(name)
            if binding is not None:
                return binding
        return self.globals.get(name)

    def _string_ptr(self, text: str) -> PointerValue:
        ptr = self.string_literals.get(text)
        if ptr is None:
            ptr = self.model.allocate_string(text.encode("latin-1"),
                                             name="string-literal")
            self.string_literals[text] = ptr
        return ptr

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval(self, expr: Expr) -> MemoryValue:
        self.steps += 1
        if self.steps > self._max_steps:
            self._steps_exhausted()
        if self._deadline_at is not None and not (self.steps & 1023):
            self.meter.check_deadline(self.steps)
        bus = self.bus
        if bus is not None:
            bus.step = self.steps
        method = getattr(self, "_eval_" + type(expr).__name__.lower(), None)
        if method is None:
            raise CTypeError(f"unhandled expression {type(expr).__name__}")
        return method(expr)

    def _eval_intlit(self, expr: IntLit) -> MemoryValue:
        ctype = expr.ctype or INT
        return MVInteger(ctype, IntegerValue.of_int(expr.value))

    def _eval_strlit(self, expr: StrLit) -> MemoryValue:
        ptr = self._string_ptr(expr.value)
        return MVPointer(Pointer(Integer(IKind.CHAR, const=True)), ptr)

    def _eval_ident(self, expr: Ident) -> MemoryValue:
        if expr.name in self.functions:
            fdef = self.functions[expr.name]
            ftype = FuncT(ret=fdef.ret,
                          params=tuple(p.ctype for p in fdef.params),
                          variadic=fdef.variadic)
            return MVPointer(Pointer(ftype), self.func_ptrs[expr.name])
        if expr.name in ("stderr", "stdout"):
            return MVPointer(Pointer(VOID), self.model.null_pointer(
                1 if expr.name == "stderr" else 2))
        ctype, ptr = self.lval(expr)
        return self._load_decayed(ctype, ptr)

    def _load_decayed(self, ctype: CType,
                      ptr: PointerValue) -> MemoryValue:
        if isinstance(ctype, ArrayT):
            # Array-to-pointer decay: same capability, element type.
            return MVPointer(Pointer(ctype.elem), ptr)
        if isinstance(ctype, FuncT):
            return MVPointer(Pointer(ctype), ptr)
        return self.model.load(ctype, ptr)

    def _eval_unary(self, expr: Unary) -> MemoryValue:
        op = expr.op
        if op == "&":
            if isinstance(expr.operand, Ident) and \
                    expr.operand.name in self.functions:
                return self._eval_ident(expr.operand)
            ctype, ptr = self.lval(expr.operand)
            return MVPointer(Pointer(ctype), ptr)
        if op == "*":
            ctype, ptr = self.lval(expr)
            return self._load_decayed(ctype, ptr)
        if op in ("++", "--"):
            return self._eval_incdec(expr)
        value = self.eval(expr.operand)
        if op == "!":
            return MVInteger(INT,
                             IntegerValue.of_int(0 if self.truthy(value)
                                                 else 1))
        if isinstance(value, MVUnspecified):
            return MVUnspecified(value.ctype)
        if not isinstance(value, MVInteger):
            raise CTypeError(f"unary {op} on {value.ctype}")
        promoted = self.integer_promote(value)
        kind = promoted.ctype.kind  # type: ignore[union-attr]
        raw = promoted.ival.value()
        if op == "-":
            result = -raw
        elif op == "+":
            result = raw
        elif op == "~":
            result = ~raw
        else:
            raise CTypeError(f"unhandled unary {op}")
        result = self._finish_arith(kind, result, expr.line)
        ival = derive(promoted.ival, None, result,
                      signed=kind.is_signed, hardware=self.model.hardware,
                      model=self.model)
        return MVInteger(promoted.ctype, ival)

    def _eval_incdec(self, expr: Unary) -> MemoryValue:
        ctype, ptr = self.lval(expr.operand)
        old = self.model.load(ctype, ptr)
        delta = 1 if expr.op == "++" else -1
        if isinstance(ctype, Pointer):
            if not isinstance(old, MVPointer):
                raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                         "++/-- on uninitialised pointer")
            moved = self.model.array_shift(old.ptr, ctype.pointee, delta)
            new = MVPointer(ctype, moved)
        else:
            if not isinstance(old, MVInteger):
                raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                         "++/-- on uninitialised value")
            kind = old.ctype.kind  # type: ignore[union-attr]
            result = self._finish_arith(kind, old.ival.value() + delta,
                                        expr.line)
            new = MVInteger(old.ctype,
                            derive(old.ival, None, result,
                                   signed=kind.is_signed,
                                   hardware=self.model.hardware,
                      model=self.model))
        self.model.store(ctype, ptr, new)
        return old if expr.postfix else new

    def _eval_binary(self, expr: Binary) -> MemoryValue:
        op = expr.op
        if op == "&&":
            if not self.truthy(self.eval(expr.lhs)):
                return MVInteger(INT, IntegerValue.of_int(0))
            return MVInteger(INT, IntegerValue.of_int(
                1 if self.truthy(self.eval(expr.rhs)) else 0))
        if op == "||":
            if self.truthy(self.eval(expr.lhs)):
                return MVInteger(INT, IntegerValue.of_int(1))
            return MVInteger(INT, IntegerValue.of_int(
                1 if self.truthy(self.eval(expr.rhs)) else 0))
        lhs = self.eval(expr.lhs)
        rhs = self.eval(expr.rhs)
        return self.binary_op(op, lhs, rhs, expr.line)

    def binary_op(self, op: str, lhs: MemoryValue, rhs: MemoryValue,
                  line: int) -> MemoryValue:
        lptr = isinstance(lhs, MVPointer)
        rptr = isinstance(rhs, MVPointer)
        if lptr or rptr:
            return self._pointer_binary(op, lhs, rhs, line)
        if isinstance(lhs, MVUnspecified) or isinstance(rhs, MVUnspecified):
            return MVUnspecified(lhs.ctype if isinstance(lhs, MVUnspecified)
                                 else rhs.ctype)
        if not (isinstance(lhs, MVInteger) and isinstance(rhs, MVInteger)):
            raise CTypeError(f"binary {op} on {lhs.ctype} and {rhs.ctype}")
        if op in ("<<", ">>"):
            return self._shift(op, lhs, rhs, line)
        lhs2, rhs2 = self.usual_arith(lhs, rhs)
        kind = lhs2.ctype.kind  # type: ignore[union-attr]
        a, b = lhs2.ival.value(), rhs2.ival.value()
        if op in ("==", "!=", "<", ">", "<=", ">="):
            result = {"==": a == b, "!=": a != b, "<": a < b,
                      ">": a > b, "<=": a <= b, ">=": a >= b}[op]
            return MVInteger(INT, IntegerValue.of_int(int(result)))
        if op in ("/", "%") and b == 0:
            if self.model.hardware:
                # Arm semantics: division by zero yields zero, no trap.
                return MVInteger(lhs2.ctype, IntegerValue.of_int(0))
            raise UndefinedBehaviour(UB.DIVISION_BY_ZERO, f"line {line}")
        result = {
            "+": a + b, "-": a - b, "*": a * b,
            "/": _c_div(a, b) if op == "/" else 0,
            "%": _c_mod(a, b) if op == "%" else 0,
            "&": a & b, "|": a | b, "^": a ^ b,
        }[op]
        result = self._finish_arith(kind, result, line)
        ival = derive(lhs2.ival, rhs2.ival, result,
                      signed=kind.is_signed, hardware=self.model.hardware,
                      model=self.model)
        return MVInteger(lhs2.ctype, ival)

    def _shift(self, op: str, lhs: MVInteger, rhs: MVInteger,
               line: int) -> MemoryValue:
        lhs2 = self.integer_promote(lhs)
        kind = lhs2.ctype.kind  # type: ignore[union-attr]
        width = self.layout.value_width(kind)
        amount = rhs.ival.value()
        a = lhs2.ival.value()
        if amount < 0 or amount >= width:
            if self.model.hardware:
                amount %= width
            else:
                raise UndefinedBehaviour(UB.SHIFT_OUT_OF_RANGE,
                                         f"shift by {amount} (line {line})")
        result = a << amount if op == "<<" else _c_shr(a, amount, kind)
        if op == "<<" and kind.is_signed and not self.model.hardware and \
                not self.layout.in_range(kind, result):
            raise UndefinedBehaviour(UB.SIGNED_OVERFLOW,
                                     f"<< overflow (line {line})")
        result = self.layout.wrap(kind, result)
        ival = derive(lhs2.ival, None, result,
                      signed=kind.is_signed, hardware=self.model.hardware,
                      model=self.model)
        return MVInteger(lhs2.ctype, ival)

    def _pointer_binary(self, op: str, lhs: MemoryValue, rhs: MemoryValue,
                        line: int) -> MemoryValue:
        if op == "+":
            if isinstance(lhs, MVPointer) and isinstance(rhs, MVInteger):
                return self._ptr_add(lhs, rhs, line)
            if isinstance(rhs, MVPointer) and isinstance(lhs, MVInteger):
                return self._ptr_add(rhs, lhs, line)
            raise CTypeError("invalid pointer addition")
        if op == "-":
            if isinstance(lhs, MVPointer) and isinstance(rhs, MVInteger):
                neg = MVInteger(rhs.ctype,
                                IntegerValue.of_int(-rhs.ival.value()))
                return self._ptr_add(lhs, neg, line)
            if isinstance(lhs, MVPointer) and isinstance(rhs, MVPointer):
                elem = lhs.ctype.pointee  # type: ignore[union-attr]
                diff = self.model.diff(lhs.ptr, rhs.ptr, elem)
                from repro.ctypes.types import PTRDIFF_T
                return MVInteger(PTRDIFF_T, IntegerValue.of_int(diff))
            raise CTypeError("invalid pointer subtraction")
        if op in ("==", "!="):
            pa = self._coerce_ptr_operand(lhs)
            pb = self._coerce_ptr_operand(rhs)
            same = self.model.eq(pa, pb)
            return MVInteger(INT, IntegerValue.of_int(
                int(same if op == "==" else not same)))
        if op in ("<", ">", "<=", ">="):
            pa = self._coerce_ptr_operand(lhs)
            pb = self._coerce_ptr_operand(rhs)
            return MVInteger(INT, IntegerValue.of_int(
                int(self.model.relational(op, pa, pb))))
        raise CTypeError(f"invalid pointer operation {op!r}")

    def _ptr_add(self, ptr: MVPointer, offset: MVInteger,
                 line: int) -> MemoryValue:
        if isinstance(offset, MVUnspecified):
            raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                     f"pointer offset (line {line})")
        elem = ptr.ctype.pointee  # type: ignore[union-attr]
        moved = self.model.array_shift(ptr.ptr, elem, offset.ival.value())
        return MVPointer(ptr.ctype, moved)

    def _coerce_ptr_operand(self, value: MemoryValue) -> PointerValue:
        if isinstance(value, MVPointer):
            return value.ptr
        if isinstance(value, MVInteger):
            # Comparing a pointer with an integer (usually the 0 of NULL).
            return self.model.int_to_ptr(value.ival, VOID)
        raise CTypeError(f"not a pointer operand: {value.ctype}")

    def _eval_assign(self, expr: Assign) -> MemoryValue:
        ctype, ptr = self.lval(expr.target)
        if expr.op:
            old = self._load_decayed(ctype, ptr)
            rhs = self.eval(expr.value)
            value = self.binary_op(expr.op, old, rhs, expr.line)
        else:
            value = self.eval(expr.value)
        converted = self.convert(value, ctype)
        if isinstance(ctype, UnionT):
            raise CTypeError("whole-union assignment is not supported")
        self.model.store(ctype, ptr, converted)
        return converted

    def _eval_conditional(self, expr: Conditional) -> MemoryValue:
        if self.truthy(self.eval(expr.cond)):
            return self.eval(expr.then)
        return self.eval(expr.other)

    def _eval_cast(self, expr: Cast) -> MemoryValue:
        value = self.eval(expr.operand)
        return self.convert(value, expr.ctype, explicit=True)

    def _eval_comma(self, expr: Comma) -> MemoryValue:
        self.eval(expr.lhs)
        return self.eval(expr.rhs)

    def _eval_sizeoftype(self, expr: SizeofType) -> MemoryValue:
        from repro.ctypes.types import SIZE_T
        return MVInteger(SIZE_T,
                         IntegerValue.of_int(self.layout.sizeof(expr.ctype)))

    def _eval_sizeofexpr(self, expr: SizeofExpr) -> MemoryValue:
        from repro.ctypes.types import SIZE_T
        ctype = self.type_of(expr.operand)
        return MVInteger(SIZE_T,
                         IntegerValue.of_int(self.layout.sizeof(ctype)))

    def _eval_alignoftype(self, expr: AlignofType) -> MemoryValue:
        from repro.ctypes.types import SIZE_T
        return MVInteger(SIZE_T,
                         IntegerValue.of_int(self.layout.alignof(expr.ctype)))

    def _eval_offsetofexpr(self, expr: OffsetofExpr) -> MemoryValue:
        from repro.ctypes.types import SIZE_T
        if not isinstance(expr.ctype, StructT):
            raise CTypeError("offsetof requires a struct/union type")
        return MVInteger(SIZE_T, IntegerValue.of_int(
            self.layout.offsetof(expr.ctype, expr.member)))

    def _eval_index(self, expr: Index) -> MemoryValue:
        ctype, ptr = self.lval(expr)
        return self._load_decayed(ctype, ptr)

    def _eval_member(self, expr: Member) -> MemoryValue:
        ctype, ptr = self.lval(expr)
        return self._load_decayed(ctype, ptr)

    def _eval_initlist(self, expr: InitList) -> MemoryValue:
        raise CTypeError("initialiser list outside a declaration")

    def _eval_vaarg(self, expr: VaArg) -> MemoryValue:
        ctype, ptr = self.lval(expr.ap)
        state = self.model.load(ctype, ptr)
        index = self._int_of(state, expr.line)
        frame = self.frames[-1]
        if not 0 <= index < len(frame.varargs):
            raise UndefinedBehaviour(
                UB.READ_UNINITIALISED,
                f"va_arg past the end of the argument list "
                f"(line {expr.line})")
        _vt, value = frame.varargs[index]
        self.model.store(ctype, ptr, MVInteger(
            state.ctype, IntegerValue.of_int(index + 1)))
        return self.convert(value, expr.ctype)

    def _eval_call(self, expr: Call) -> MemoryValue:
        if isinstance(expr.func, Ident):
            name = expr.func.name
            if name in ("va_start", "va_end", "va_copy"):
                return self._eval_va_builtin(name, expr)
            binding = self._lookup(name)
            if binding is None:
                if name in builtin_mod.BUILTIN_NAMES and \
                        name not in self.functions:
                    args = [self.eval(a) for a in expr.args]
                    result = builtin_mod.dispatch(self, name, args,
                                                  expr.line)
                    return result if result is not None else \
                        MVInteger(INT, IntegerValue.of_int(0))
                if name in self.functions:
                    return self._call_user(self.functions[name], expr)
                raise CTypeError(f"call to unknown function {name!r} "
                                 f"(line {expr.line})")
            # A local/global object: call through the stored pointer.
        # Call through a function pointer.
        target = self.eval(expr.func)
        if not isinstance(target, MVPointer):
            raise CTypeError("called object is not a function pointer")
        return self._call_via_pointer(target.ptr, expr)

    def _call_user(self, fdef: FuncDef, expr: Call) -> MemoryValue:
        args = [self.eval(a) for a in expr.args]
        fixed = args[:len(fdef.params)]
        extra = args[len(fdef.params):]
        if extra and not fdef.variadic:
            raise CTypeError(f"too many arguments to {fdef.name}")
        result = self.call_function(fdef, fixed, varargs=extra or None)
        if result is None:
            return MVInteger(INT, IntegerValue.of_int(0))
        return result

    def _call_via_pointer(self, ptr: PointerValue,
                          expr: Call) -> MemoryValue:
        cap = ptr.cap
        if self.model.hardware:
            if not cap.tag:
                raise CheriTrap(TrapKind.TAG_VIOLATION,
                                "branch via untagged capability")
            if not cap.has_perm(Permission.EXECUTE):
                raise CheriTrap(TrapKind.PERMISSION_VIOLATION,
                                "branch without EXECUTE permission")
        else:
            if cap.ghost.tag_unspecified:
                raise UndefinedBehaviour(UB.CHERI_UNDEFINED_TAG,
                                         "call via manipulated capability")
            if not cap.tag:
                raise UndefinedBehaviour(UB.CHERI_INVALID_CAP,
                                         "call via untagged capability")
            if not cap.has_perm(Permission.EXECUTE):
                raise UndefinedBehaviour(UB.CHERI_INSUFFICIENT_PERMISSIONS,
                                         "call without EXECUTE permission")
        name = self.func_by_addr.get(cap.address)
        if name is None:
            if self.model.hardware:
                raise CheriTrap(TrapKind.SIGSEGV, "jump to non-code address")
            raise UndefinedBehaviour(UB.ACCESS_OUT_OF_BOUNDS,
                                     "call to non-function address")
        fdef = self.functions[name]
        return self._call_user(fdef, expr)

    def _eval_va_builtin(self, name: str, expr: Call) -> MemoryValue:
        zero = MVInteger(INT, IntegerValue.of_int(0))
        if name == "va_end":
            return zero
        if name == "va_start":
            if len(expr.args) != 2:
                raise CTypeError("va_start expects (ap, last)")
            ctype, ptr = self.lval(expr.args[0])
            self.model.store(ctype, ptr,
                             MVInteger(ctype, IntegerValue.of_int(0)))
            return zero
        # va_copy(dst, src)
        if len(expr.args) != 2:
            raise CTypeError("va_copy expects (dst, src)")
        dt, dp = self.lval(expr.args[0])
        sv = self.eval(expr.args[1])
        self.model.store(dt, dp, self.convert(sv, dt))
        return zero

    # ------------------------------------------------------------------
    # Conversions (ISO 6.3 with the CHERI C rank rule of S3.7)
    # ------------------------------------------------------------------

    def integer_promote(self, value: MVInteger) -> MVInteger:
        kind = value.ctype.kind  # type: ignore[union-attr]
        if self.layout.rank(kind) < self.layout.rank(IKind.INT):
            return MVInteger(INT, IntegerValue.of_int(
                self.layout.wrap(IKind.INT, value.ival.value())))
        return value

    def usual_arith(self, lhs: MVInteger,
                    rhs: MVInteger) -> tuple[MVInteger, MVInteger]:
        lhs = self.integer_promote(lhs)
        rhs = self.integer_promote(rhs)
        lk = lhs.ctype.kind  # type: ignore[union-attr]
        rk = rhs.ctype.kind  # type: ignore[union-attr]
        if lk == rk:
            return lhs, rhs
        common = self._common_kind(lk, rk)
        return (self._convert_int(lhs, Integer(common)),
                self._convert_int(rhs, Integer(common)))

    def _common_kind(self, lk: IKind, rk: IKind) -> IKind:
        lr, rr = self.layout.rank(lk), self.layout.rank(rk)
        if lr == rr:
            # Same rank: unsigned wins.
            return lk if not lk.is_signed else rk
        hi, lo = (lk, rk) if lr > rr else (rk, lk)
        if not hi.is_signed:
            return hi
        if self.layout.int_max(hi) >= self.layout.int_max(lo):
            return hi
        # Signed type cannot represent the unsigned one: unsigned version.
        return _unsigned_of(hi)

    def _convert_int(self, value: MVInteger, to: Integer) -> MVInteger:
        ival = value.ival
        wrapped = self.layout.wrap(to.kind, ival.value())
        if to.kind.is_capability_carrying:
            if ival.cap is not None:
                # (u)intptr_t <-> (u)intptr_t: the capability is carried.
                # A same-value conversion is a pure no-op (no SCVALUE is
                # executed), so even sealed capabilities pass through.
                if wrapped == ival.value():
                    return MVInteger(to, IntegerValue.of_cap(
                        ival.cap, to.is_signed, ival.prov))
                moved = (ival.with_value_hardware(wrapped)
                         if self.model.hardware
                         else ival.with_value(wrapped))
                return MVInteger(to, IntegerValue.of_cap(
                    moved.cap, to.is_signed, moved.prov))
            # Converted *from* a non-capability type: stays in the plain
            # arm (NULL-derived), which is what drives the S3.7
            # derivation rule.
            return MVInteger(to, IntegerValue.of_int(wrapped))
        # Keep byte provenance through plain conversions so char-wise
        # pointer copies round-trip (S3.5; only 1-byte stores consult it).
        return MVInteger(to, IntegerValue(num=wrapped, prov=ival.prov))

    def convert(self, value: MemoryValue, to: CType, *,
                explicit: bool = False) -> MemoryValue:
        to_stripped = to.unqualified() if not isinstance(to, ArrayT) else to
        if isinstance(value, MVUnspecified):
            return MVUnspecified(to)
        if isinstance(to_stripped, Void):
            return MVInteger(INT, IntegerValue.of_int(0))
        if isinstance(to_stripped, (ArrayT, StructT, UnionT)):
            if value.ctype.unqualified() == to_stripped.unqualified() or \
                    isinstance(value, (MVArray, MVStruct, MVUnion)):
                return value
            raise CTypeError(f"cannot convert {value.ctype} to {to}")
        if isinstance(to_stripped, Pointer):
            if isinstance(value, MVPointer):
                # Pointer-to-pointer casts (including const casts) are
                # no-ops on the capability (S3.9).
                return MVPointer(to_stripped, value.ptr)
            if isinstance(value, MVInteger):
                ptr = self.model.int_to_ptr(value.ival, to_stripped.pointee)
                return MVPointer(to_stripped, ptr)
            raise CTypeError(f"cannot convert {value.ctype} to {to}")
        if isinstance(to_stripped, Integer):
            if to_stripped.kind is IKind.BOOL:
                return MVInteger(BOOL, IntegerValue.of_int(
                    1 if self.truthy(value) else 0))
            if isinstance(value, MVPointer):
                ival = self.model.ptr_to_int(value.ptr, to_stripped.kind)
                return MVInteger(to_stripped, ival)
            if isinstance(value, MVInteger):
                return self._convert_int(value, to_stripped)
        raise CTypeError(f"cannot convert {value.ctype} to {to}")

    # ------------------------------------------------------------------
    # Misc helpers
    # ------------------------------------------------------------------

    def truthy(self, value: MemoryValue) -> bool:
        if isinstance(value, MVUnspecified):
            if self.model.hardware:
                return False
            raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                     "branch on unspecified value")
        if isinstance(value, MVInteger):
            return value.ival.value() != 0
        if isinstance(value, MVPointer):
            return value.ptr.address != 0
        raise CTypeError(f"non-scalar used in boolean context: "
                         f"{value.ctype}")

    def _finish_arith(self, kind: IKind, result: int, line: int) -> int:
        if kind.is_signed and not self.layout.in_range(kind, result):
            if not self.model.hardware:
                raise UndefinedBehaviour(UB.SIGNED_OVERFLOW,
                                         f"line {line}")
        return self.layout.wrap(kind, result)

    def _as_pointer(self, value: MemoryValue,
                    line: int) -> tuple[CType, PointerValue]:
        if isinstance(value, MVPointer):
            return value.ctype, value.ptr
        if isinstance(value, MVUnspecified):
            raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                     f"use of unspecified pointer "
                                     f"(line {line})")
        raise CTypeError(f"expected a pointer, found {value.ctype} "
                         f"(line {line})")

    def _int_of(self, value: MemoryValue, line: int) -> int:
        if isinstance(value, MVInteger):
            return value.ival.value()
        if isinstance(value, MVUnspecified):
            raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                     f"use of unspecified integer "
                                     f"(line {line})")
        raise CTypeError(f"expected an integer, found {value.ctype}")

    def type_of(self, expr: Expr) -> CType:
        """Static type of an expression, for ``sizeof``."""
        if isinstance(expr, IntLit):
            return expr.ctype or INT
        if isinstance(expr, StrLit):
            return ArrayT(elem=CHAR_CONST, length=len(expr.value) + 1)
        if isinstance(expr, Ident):
            binding = self._lookup(expr.name)
            if binding is not None:
                return binding.ctype
            raise CTypeError(f"undeclared identifier {expr.name!r}")
        if isinstance(expr, Unary) and expr.op == "*":
            inner = self.type_of(expr.operand)
            if isinstance(inner, Pointer):
                return inner.pointee
            if isinstance(inner, ArrayT):
                return inner.elem
            raise CTypeError("dereference of non-pointer in sizeof")
        if isinstance(expr, Unary) and expr.op == "&":
            return Pointer(self.type_of(expr.operand))
        if isinstance(expr, Index):
            base = self.type_of(expr.base)
            if isinstance(base, ArrayT):
                return base.elem
            if isinstance(base, Pointer):
                return base.pointee
            raise CTypeError("index of non-pointer in sizeof")
        if isinstance(expr, Member):
            base = self.type_of(expr.base)
            if expr.arrow and isinstance(base, Pointer):
                base = base.pointee
            if isinstance(base, StructT):
                return base.field_type(expr.name)
            raise CTypeError("member of non-struct in sizeof")
        if isinstance(expr, Cast):
            return expr.ctype
        # Fall back to evaluating (sizeof of side-effect-free operands
        # only; this is an oracle for small tests).
        return self.eval(expr).ctype


from repro.ctypes.types import Integer as _Integer  # noqa: E402

CHAR_CONST = _Integer(IKind.CHAR, const=True)


def _unsigned_of(kind: IKind) -> IKind:
    return {
        IKind.INT: IKind.UINT, IKind.LONG: IKind.ULONG,
        IKind.LLONG: IKind.ULLONG, IKind.INTPTR: IKind.UINTPTR,
        IKind.PTRDIFF: IKind.SIZE,
    }.get(kind, kind)


def _c_div(a: int, b: int) -> int:
    """C division truncates toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


def _c_shr(a: int, amount: int, kind: IKind) -> int:
    """Arithmetic shift for signed, logical for unsigned (on the
    already-interpreted mathematical value both are plain ``>>``)."""
    return a >> amount


def _array_of_const(ctype: CType) -> bool:
    return isinstance(ctype, ArrayT) and ctype.elem.const


def run_program(source: str, model: MemoryModel,
                main: str = "main") -> Outcome:
    """Parse and run a translation unit; never raises for program-level
    outcomes (UB, traps, aborts are returned as :class:`Outcome`)."""
    from repro.core.cparser import parse_program
    try:
        program = parse_program(source, model.layout)
    except (CSyntaxError, CTypeError) as exc:
        return Outcome.frontend_error(str(exc))
    return Interpreter(program, model).run(main)
