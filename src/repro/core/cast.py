"""Abstract syntax for the CHERI C subset.

Every node carries a source line for error reporting.  The AST is plain
data: the evaluator (:mod:`repro.core.interp`) gives it meaning, and the
modelled optimiser (:mod:`repro.core.optimizer`) rewrites it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ctypes.types import CType


@dataclass(frozen=True)
class Node:
    line: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int = 0
    ctype: CType | None = None   # resolved by the parser from suffix/base


@dataclass(frozen=True)
class StrLit(Expr):
    value: str = ""


@dataclass(frozen=True)
class Ident(Expr):
    name: str = ""


@dataclass(frozen=True)
class Unary(Expr):
    """Prefix ops: ``- + ~ ! & *``, plus ``++``/``--`` (pre and post)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]
    postfix: bool = False


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Assign(Expr):
    """``=`` and the compound assignments (op is "" for plain ``=``)."""

    op: str = ""
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Conditional(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Cast(Expr):
    ctype: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    func: Expr = None  # type: ignore[assignment]
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Member(Expr):
    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False


@dataclass(frozen=True)
class SizeofType(Expr):
    ctype: CType = None  # type: ignore[assignment]


@dataclass(frozen=True)
class SizeofExpr(Expr):
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class AlignofType(Expr):
    ctype: CType = None  # type: ignore[assignment]


@dataclass(frozen=True)
class OffsetofExpr(Expr):
    ctype: CType = None  # type: ignore[assignment]
    member: str = ""


@dataclass(frozen=True)
class Comma(Expr):
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class VaArg(Expr):
    """``va_arg(ap, type)``: fetch the next variadic argument."""

    ap: Expr = None  # type: ignore[assignment]
    ctype: CType = None  # type: ignore[assignment]


@dataclass(frozen=True)
class InitList(Expr):
    items: tuple[Expr, ...] = ()


# ---------------------------------------------------------------------------
# Statements and declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Declarator:
    name: str
    ctype: CType
    init: Expr | None = None
    line: int = 0


@dataclass(frozen=True)
class DeclStmt(Stmt):
    decls: tuple[Declarator, ...] = ()
    static: bool = False


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    other: Stmt | None = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]
    do_while: bool = False


@dataclass(frozen=True)
class For(Stmt):
    init: Stmt | None = None     # DeclStmt or ExprStmt
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass(frozen=True)
class SwitchCase:
    """One ``case`` (or ``default`` when ``value`` is None) label: the
    index of the statement it jumps to within the switch body."""

    value: int | None
    index: int


@dataclass(frozen=True)
class Switch(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    stmts: tuple[Stmt, ...] = ()
    cases: tuple[SwitchCase, ...] = ()


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class Empty(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    name: str
    ctype: CType


@dataclass(frozen=True)
class FuncDef(Node):
    name: str = ""
    ret: CType = None  # type: ignore[assignment]
    params: tuple[Param, ...] = ()
    variadic: bool = False
    body: Block | None = None   # None for a declaration (prototype)


@dataclass(frozen=True)
class GlobalDecl(Node):
    decl: Declarator = None  # type: ignore[assignment]
    static: bool = False


@dataclass(frozen=True)
class Program(Node):
    functions: tuple[FuncDef, ...] = ()
    globals: tuple[GlobalDecl, ...] = ()
