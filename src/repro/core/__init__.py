"""The executable semantics: C-subset frontend plus evaluator (S4).

Cerberus expresses ISO C as an elaboration into a small Core language
plus a memory object model.  Our frontend is narrower -- a direct
recursive-descent parser and AST evaluator for the C subset that the
paper's test programs exercise -- but the division of labour is the
same: *all* memory-related semantics lives in :mod:`repro.memory`; this
package only performs typing, conversions, control flow, and the
explicit capability-derivation elaboration of S4.4.
"""

from repro.core.interp import Interpreter, run_program
from repro.core.cparser import parse_program

__all__ = ["Interpreter", "run_program", "parse_program"]
