"""The executable semantics: C-subset frontend plus evaluators (S4).

Cerberus expresses ISO C as an elaboration into a small Core language
plus a memory object model.  This package now reproduces that
architecture end to end: the typed AST is *elaborated*
(:mod:`repro.core.elaborate`) into an explicit-effect Core IR
(:mod:`repro.core.coreir`) executed by an iterative evaluator with an
explicit frame stack (:mod:`repro.core.coreeval`) -- the process
default.  The original recursive AST walker
(:mod:`repro.core.interp`) is retained behind ``--evaluator ast`` as
the differential oracle for the Core pipeline.  As in Cerberus, *all*
memory-related semantics lives in :mod:`repro.memory`; this package
only performs typing, conversions, control flow, and the explicit
capability-derivation elaboration of S4.4.
"""

from repro.core.coreeval import (
    CoreEvaluator,
    default_evaluator,
    set_default_evaluator,
)
from repro.core.coreir import CoreProgram, render_core
from repro.core.elaborate import ElaborationError, elaborate_program
from repro.core.interp import Interpreter, run_program
from repro.core.cparser import parse_program

__all__ = [
    "CoreEvaluator",
    "CoreProgram",
    "ElaborationError",
    "Interpreter",
    "default_evaluator",
    "elaborate_program",
    "parse_program",
    "render_core",
    "run_program",
    "set_default_evaluator",
]
