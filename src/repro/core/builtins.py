"""Built-in functions: the tiny libc and the CHERI intrinsics.

The paper's test environment provides libc (CheriBSD or newlib) and the
``cheriintrin.h`` intrinsics; here they are interpreter built-ins so that
their semantics (notably ``memcpy``'s capability preservation, S3.5, and
the intrinsics' ghost-state behaviour, S3.5/S4.5) are exactly the memory
model's.

``print_cap(label, value)`` is this dialect's rendering of the appendix's
``capprint.h`` helper: it prints a line ``label <capability>`` in the
Appendix-A format appropriate to the implementation (abstract or
hardware).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.capability.abstract import Capability
from repro.ctypes.types import (
    BOOL, CType, IKind, INT, Integer, Pointer, PTRADDR, SIZE_T, VOID,
)
from repro.errors import (
    AssertionFailure, CTypeError, UB, UndefinedBehaviour,
)
from repro.memory.intrinsics import SIGNATURES, UNSPECIFIED
from repro.memory.provenance import Provenance, ProvKind
from repro.memory.values import (
    IntegerValue, MemoryValue, MVInteger, MVPointer, MVUnspecified,
    PointerValue,
)
from repro.reporting.capprint import format_capability

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.interp import Interpreter

#: Runtime-provided (not header-intrinsic) CHERI helpers.
CHERI_RUNTIME_NAMES = frozenset({
    "cheri_sealcap_get",
})

LIBC_NAMES = frozenset({
    "malloc", "calloc", "free", "realloc",
    "memcpy", "memmove", "memset", "memcmp",
    "strlen", "strcmp", "strcpy", "strncmp",
    "strcat", "strncpy", "strchr", "memchr",
    "printf", "fprintf", "puts", "putchar", "sptr",
    "assert", "abort", "exit",
    "print_cap", "print_int",
})

BUILTIN_NAMES = LIBC_NAMES | CHERI_RUNTIME_NAMES | frozenset(SIGNATURES)


def dispatch(interp: "Interpreter", name: str, args: list[MemoryValue],
             line: int) -> MemoryValue | None:
    if name in SIGNATURES:
        result = _intrinsic(interp, name, args, line)
        bus = interp.model.bus
        if bus is not None:
            _emit_intrinsic_call(interp, bus, name, args, result)
        return result
    handler = _HANDLERS[name]
    return handler(interp, args, line)


def _trace_render(interp: "Interpreter", value: MemoryValue) -> str:
    """Render a value for the ``intrinsic.call`` trace payload in the
    Appendix-A capprint style (provenance-free under hardware)."""
    hardware = interp.model.hardware
    if isinstance(value, MVPointer):
        return format_capability(value.ptr.cap,
                                 None if hardware else value.ptr.prov,
                                 hardware=hardware)
    if isinstance(value, MVInteger):
        ival = value.ival
        if ival.cap is not None:
            return format_capability(ival.cap,
                                     None if hardware else ival.prov,
                                     hardware=hardware)
        return str(ival.value())
    if isinstance(value, MVUnspecified):
        return "?"
    return str(value)


def _emit_intrinsic_call(interp: "Interpreter", bus, name: str,
                         args: list[MemoryValue],
                         result: MemoryValue) -> None:
    ctx = {}
    arg0 = args[0] if args else None
    prov = None
    if isinstance(arg0, MVPointer):
        prov = arg0.ptr.prov
    elif isinstance(arg0, MVInteger):
        prov = arg0.ival.prov
    if prov is not None:
        if prov.kind is ProvKind.ALLOC:
            ctx["alloc"] = prov.ident
        elif prov.is_symbolic:
            ctx["iota"] = prov.ident
    rendered = [_trace_render(interp, a) for a in args]
    bus.emit("intrinsic.call", name=name, args=rendered,
             result=_trace_render(interp, result), **ctx,
             what=f"{name}({', '.join(rendered)}) = "
                  f"{_trace_render(interp, result)}")


# ---------------------------------------------------------------------------
# Intrinsics plumbing
# ---------------------------------------------------------------------------


def _value_capability(interp: "Interpreter",
                      value: MemoryValue) -> tuple[Capability, Provenance,
                                                   CType]:
    """Extract the capability view of any capability-carrying argument
    (the S4.5 polymorphism)."""
    if isinstance(value, MVPointer):
        return value.ptr.cap, value.ptr.prov, value.ctype
    if isinstance(value, MVInteger):
        ival = value.ival
        if ival.cap is not None:
            return ival.cap, ival.prov, value.ctype
        # A plain integer used as a capability: NULL-derived.
        addr = ival.value() & interp.arch.address_mask
        return interp.arch.null_capability(addr), Provenance.empty(), \
            value.ctype
    raise CTypeError(f"intrinsic needs a capability argument, got "
                     f"{value.ctype}")


def _rebuild(interp: "Interpreter", ctype: CType, cap: Capability,
             prov: Provenance) -> MemoryValue:
    """Package an intrinsic's capability result at the argument's type
    (the SAME_AS_ARG0 return-type derivation)."""
    if isinstance(ctype, Pointer):
        return MVPointer(ctype, PointerValue(prov, cap))
    if isinstance(ctype, Integer) and ctype.kind.is_capability_carrying:
        return MVInteger(ctype, IntegerValue.of_cap(cap, ctype.is_signed,
                                                    prov))
    # Plain-integer argument: results stay plain.
    return MVInteger(ctype, IntegerValue.of_int(
        interp.layout.wrap(ctype.kind, cap.address)
        if isinstance(ctype, Integer) else cap.address))


def _int_result(ctype: CType, value, interp: "Interpreter") -> MemoryValue:
    if value is UNSPECIFIED:
        return MVUnspecified(ctype)
    if isinstance(value, bool):
        return MVInteger(ctype, IntegerValue.of_int(int(value)))
    assert isinstance(ctype, Integer)
    return MVInteger(ctype, IntegerValue.of_int(
        interp.layout.wrap(ctype.kind, value)))


def _intrinsic(interp: "Interpreter", name: str, args: list[MemoryValue],
               line: int) -> MemoryValue:
    sig = SIGNATURES[name]
    if len(args) != len(sig.params):
        raise CTypeError(f"{name} expects {len(sig.params)} arguments")
    intr = interp.intrinsics
    if name == "cheri_representable_length":
        return _int_result(SIZE_T, intr.representable_length(
            _plain_int(args[0], name)), interp)
    if name == "cheri_representable_alignment_mask":
        return _int_result(SIZE_T, intr.representable_alignment_mask(
            _plain_int(args[0], name)), interp)

    cap, prov, arg_type = _value_capability(interp, args[0])

    getters = {
        "cheri_address_get": (intr.address_get, PTRADDR),
        "cheri_base_get": (intr.base_get, PTRADDR),
        "cheri_length_get": (intr.length_get, SIZE_T),
        "cheri_offset_get": (intr.offset_get, SIZE_T),
        "cheri_tag_get": (intr.tag_get, BOOL),
        "cheri_perms_get": (intr.perms_get, SIZE_T),
        "cheri_type_get": (intr.type_get, Integer(IKind.LONG)),
        "cheri_is_sealed": (intr.is_sealed, BOOL),
        "cheri_is_sentry": (intr.is_sentry, BOOL),
        "cheri_is_valid": (intr.is_valid, BOOL),
    }
    if name in getters:
        fn, ret = getters[name]
        return _int_result(ret, fn(cap), interp)

    if name == "cheri_top_get":
        return _int_result(PTRADDR, intr.top_get(cap), interp)
    if name in ("cheri_seal", "cheri_unseal"):
        authority, _aprov, _atype = _value_capability(interp, args[1])
        fn = intr.seal if name == "cheri_seal" else intr.unseal
        return _rebuild(interp, arg_type, fn(cap, authority), prov)
    if name == "cheri_sentry_create":
        return _rebuild(interp, arg_type, intr.sentry_create(cap), prov)

    if name in ("cheri_is_equal_exact", "cheri_is_subset"):
        cap2, _prov2, _t2 = _value_capability(interp, args[1])
        fn = (intr.is_equal_exact if name == "cheri_is_equal_exact"
              else intr.is_subset)
        return _int_result(BOOL, fn(cap, cap2), interp)

    mutators = {
        "cheri_address_set": intr.address_set,
        "cheri_offset_set": intr.offset_set,
        "cheri_perms_and": intr.perms_and,
        "cheri_bounds_set": intr.bounds_set,
        "cheri_bounds_set_exact": intr.bounds_set_exact,
    }
    if name in mutators:
        operand = _plain_int(args[1], name)
        new_cap = mutators[name](cap, operand)
        return _rebuild(interp, arg_type, new_cap, prov)
    if name == "cheri_tag_clear":
        return _rebuild(interp, arg_type, intr.tag_clear(cap), prov)
    raise CTypeError(f"unhandled intrinsic {name}")


def _plain_int(value: MemoryValue, name: str) -> int:
    if isinstance(value, MVInteger):
        return value.ival.value()
    if isinstance(value, MVUnspecified):
        raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                 f"unspecified argument to {name}")
    raise CTypeError(f"{name} expects an integer argument")


# ---------------------------------------------------------------------------
# libc
# ---------------------------------------------------------------------------


def _need_ptr(value: MemoryValue, name: str) -> PointerValue:
    if isinstance(value, MVPointer):
        return value.ptr
    if isinstance(value, MVInteger) and value.ival.cap is not None:
        return PointerValue(value.ival.prov, value.ival.cap)
    raise CTypeError(f"{name} expects a pointer argument, got {value.ctype}")


def _bi_malloc(interp, args, line):
    size = _plain_int(args[0], "malloc")
    ptr = interp.model.allocate_region(size)
    return MVPointer(Pointer(VOID), ptr)


def _bi_calloc(interp, args, line):
    count = _plain_int(args[0], "calloc")
    size = _plain_int(args[1], "calloc")
    total = count * size
    ptr = interp.model.allocate_region(total)
    if total:
        interp.model.memset(ptr, 0, total)
    return MVPointer(Pointer(VOID), ptr)


def _bi_free(interp, args, line):
    interp.model.free(_need_ptr(args[0], "free"))
    return None


def _bi_realloc(interp, args, line):
    old = args[0]
    size = _plain_int(args[1], "realloc")
    if isinstance(old, MVPointer) and old.ptr.is_null():
        return MVPointer(Pointer(VOID),
                         interp.model.allocate_region(size, name="realloc"))
    new_ptr = interp.model.realloc(_need_ptr(old, "realloc"), size)
    return MVPointer(Pointer(VOID), new_ptr)


def _bi_memcpy(interp, args, line):
    dest = _need_ptr(args[0], "memcpy")
    src = _need_ptr(args[1], "memcpy")
    n = _plain_int(args[2], "memcpy")
    interp.model.memcpy(dest, src, n)
    return MVPointer(Pointer(VOID), dest)


def _bi_memset(interp, args, line):
    dest = _need_ptr(args[0], "memset")
    byte = _plain_int(args[1], "memset")
    n = _plain_int(args[2], "memset")
    interp.model.memset(dest, byte, n)
    return MVPointer(Pointer(VOID), dest)


def _bi_memcmp(interp, args, line):
    a = _need_ptr(args[0], "memcmp")
    b = _need_ptr(args[1], "memcmp")
    n = _plain_int(args[2], "memcmp")
    return MVInteger(INT, IntegerValue.of_int(interp.model.memcmp(a, b, n)))


def _read_cstring(interp, ptr: PointerValue, name: str) -> str:
    from repro.ctypes.types import UCHAR
    out = []
    cursor = ptr
    for _ in range(1 << 16):
        value = interp.model.load(UCHAR, cursor)
        if isinstance(value, MVUnspecified):
            raise UndefinedBehaviour(UB.READ_UNINITIALISED,
                                     f"{name} over uninitialised bytes")
        byte = value.ival.value()
        if byte == 0:
            return "".join(out)
        out.append(chr(byte))
        cursor = interp.model.array_shift(cursor, UCHAR, 1)
    raise CTypeError(f"unterminated string passed to {name}")


def _bi_strlen(interp, args, line):
    text = _read_cstring(interp, _need_ptr(args[0], "strlen"), "strlen")
    return MVInteger(SIZE_T, IntegerValue.of_int(len(text)))


def _bi_strcmp(interp, args, line):
    a = _read_cstring(interp, _need_ptr(args[0], "strcmp"), "strcmp")
    b = _read_cstring(interp, _need_ptr(args[1], "strcmp"), "strcmp")
    result = 0 if a == b else (-1 if a < b else 1)
    return MVInteger(INT, IntegerValue.of_int(result))


def _bi_strncmp(interp, args, line):
    a = _read_cstring(interp, _need_ptr(args[0], "strncmp"), "strncmp")
    b = _read_cstring(interp, _need_ptr(args[1], "strncmp"), "strncmp")
    n = _plain_int(args[2], "strncmp")
    a, b = a[:n], b[:n]
    result = 0 if a == b else (-1 if a < b else 1)
    return MVInteger(INT, IntegerValue.of_int(result))


def _bi_strcpy(interp, args, line):
    from repro.ctypes.types import UCHAR
    dest = _need_ptr(args[0], "strcpy")
    text = _read_cstring(interp, _need_ptr(args[1], "strcpy"), "strcpy")
    cursor = dest
    for ch in text + "\x00":
        interp.model.store(UCHAR, cursor,
                           MVInteger(UCHAR, IntegerValue.of_int(ord(ch))))
        cursor = interp.model.array_shift(cursor, UCHAR, 1)
    return MVPointer(Pointer(VOID), dest)


def _format_value(interp, spec: str, value: MemoryValue) -> str:
    if isinstance(value, MVUnspecified):
        return "?"
    conv = spec[-1]
    if conv == "p":
        if isinstance(value, MVPointer) or \
                (isinstance(value, MVInteger) and value.ival.cap is not None):
            return _trace_render(interp, value)
        return hex(_plain_int(value, "printf"))
    if conv == "s":
        return _read_cstring(interp, _need_ptr(value, "printf"), "printf")
    if conv == "c":
        return chr(_plain_int(value, "printf") & 0xFF)
    num = _plain_int(value, "printf")
    if conv in "dis":
        return str(num)
    if conv == "u":
        return str(num & ((1 << 64) - 1)) if num < 0 else str(num)
    if conv == "x":
        return format(num & ((1 << 64) - 1), "x")
    if conv == "X":
        return format(num & ((1 << 64) - 1), "X")
    if conv == "o":
        return format(num & ((1 << 64) - 1), "o")
    raise CTypeError(f"unsupported printf conversion %{conv}")


def _do_printf(interp, fmt: str, values: list[MemoryValue]) -> str:
    out = []
    i = 0
    argi = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i < len(fmt) and fmt[i] == "%":
            out.append("%")
            i += 1
            continue
        spec = "%"
        while i < len(fmt) and fmt[i] in "0123456789.#-+ lzhjt":
            spec += fmt[i]
            i += 1
        if i >= len(fmt):
            raise CTypeError("dangling % in printf format")
        spec += fmt[i]
        i += 1
        if argi >= len(values):
            raise CTypeError("printf: not enough arguments")
        out.append(_format_value(interp, spec, values[argi]))
        argi += 1
    return "".join(out)


def _bi_strcat(interp, args, line):
    from repro.ctypes.types import UCHAR
    dest = _need_ptr(args[0], "strcat")
    head = _read_cstring(interp, dest, "strcat")
    tail = _read_cstring(interp, _need_ptr(args[1], "strcat"), "strcat")
    cursor = interp.model.array_shift(dest, UCHAR, len(head))
    for ch in tail + "\x00":
        interp.model.store(UCHAR, cursor,
                           MVInteger(UCHAR, IntegerValue.of_int(ord(ch))))
        cursor = interp.model.array_shift(cursor, UCHAR, 1)
    return MVPointer(Pointer(VOID), dest)


def _bi_strncpy(interp, args, line):
    from repro.ctypes.types import UCHAR
    dest = _need_ptr(args[0], "strncpy")
    text = _read_cstring(interp, _need_ptr(args[1], "strncpy"), "strncpy")
    n = _plain_int(args[2], "strncpy")
    cursor = dest
    for i in range(n):
        byte = ord(text[i]) if i < len(text) else 0
        interp.model.store(UCHAR, cursor,
                           MVInteger(UCHAR, IntegerValue.of_int(byte)))
        cursor = interp.model.array_shift(cursor, UCHAR, 1)
    return MVPointer(Pointer(VOID), dest)


def _bi_strchr(interp, args, line):
    from repro.ctypes.types import CHAR, UCHAR
    base = _need_ptr(args[0], "strchr")
    wanted = _plain_int(args[1], "strchr") & 0xFF
    cursor = base
    for _ in range(1 << 16):
        value = interp.model.load(UCHAR, cursor)
        byte = _plain_int(value, "strchr")
        if byte == wanted:
            return MVPointer(Pointer(CHAR), cursor)
        if byte == 0:
            return MVPointer(Pointer(CHAR), interp.model.null_pointer())
        cursor = interp.model.array_shift(cursor, UCHAR, 1)
    raise CTypeError("unterminated string passed to strchr")


def _bi_memchr(interp, args, line):
    from repro.ctypes.types import UCHAR, VOID as _VOID
    base = _need_ptr(args[0], "memchr")
    wanted = _plain_int(args[1], "memchr") & 0xFF
    n = _plain_int(args[2], "memchr")
    cursor = base
    for i in range(n):
        value = interp.model.load(UCHAR, cursor)
        if _plain_int(value, "memchr") == wanted:
            return MVPointer(Pointer(_VOID), cursor)
        if i + 1 < n:
            cursor = interp.model.array_shift(cursor, UCHAR, 1)
    return MVPointer(Pointer(_VOID), interp.model.null_pointer())


def _bi_printf(interp, args, line):
    fmt = _read_cstring(interp, _need_ptr(args[0], "printf"), "printf")
    text = _do_printf(interp, fmt, args[1:])
    interp.out.write(text)
    return MVInteger(INT, IntegerValue.of_int(len(text)))


def _bi_fprintf(interp, args, line):
    fmt = _read_cstring(interp, _need_ptr(args[1], "fprintf"), "fprintf")
    text = _do_printf(interp, fmt, args[2:])
    interp.out.write(text)
    return MVInteger(INT, IntegerValue.of_int(len(text)))


def _bi_puts(interp, args, line):
    text = _read_cstring(interp, _need_ptr(args[0], "puts"), "puts")
    interp.out.write(text + "\n")
    return MVInteger(INT, IntegerValue.of_int(len(text) + 1))


def _bi_putchar(interp, args, line):
    ch = _plain_int(args[0], "putchar")
    interp.out.write(chr(ch & 0xFF))
    return MVInteger(INT, IntegerValue.of_int(ch))


def _bi_assert(interp, args, line):
    if not interp.truthy(args[0]):
        raise AssertionFailure(f"line {line}")
    return None


def _bi_abort(interp, args, line):
    from repro.core.interp import AbortSignal
    raise AbortSignal("abort() called")


def _bi_exit(interp, args, line):
    from repro.core.interp import ExitSignal
    raise ExitSignal(_plain_int(args[0], "exit") & 0xFF)


def _bi_sptr(interp, args, line):
    """The appendix's capprint.h helper: format a capability as a
    string (printed with the PTR_FMT macro, which expands to "s")."""
    value = args[0]
    if isinstance(value, MVUnspecified):
        text = "<unspecified>"
    else:
        cap, prov, _t = _value_capability(interp, value)
        hardware = interp.model.hardware
        text = format_capability(cap, None if hardware else prov,
                                 hardware=hardware)
    from repro.ctypes.types import CHAR
    ptr = interp.model.allocate_string(text.encode("latin-1"),
                                       name="sptr")
    return MVPointer(Pointer(CHAR), ptr)


def _bi_sealcap_get(interp, args, line):
    """The CheriBSD-style sealing root: a capability with Seal/Unseal
    permission whose address range spans the software object types."""
    from repro.capability.otype import OType
    from repro.capability.permissions import Permission, PermissionSet
    root = interp.arch.root_capability()
    auth = root.with_perms_masked(PermissionSet.of(
        Permission.GLOBAL, Permission.SEAL, Permission.UNSEAL))
    auth, _ = auth.set_bounds(OType.FIRST_USER,
                              (1 << interp.arch.otype_width)
                              - OType.FIRST_USER)
    return MVPointer(Pointer(VOID), PointerValue(Provenance.empty(), auth))


def _bi_print_cap(interp, args, line):
    """``print_cap(label, value)``: the Appendix-A trace line."""
    label = _read_cstring(interp, _need_ptr(args[0], "print_cap"),
                          "print_cap")
    value = args[1]
    if isinstance(value, MVUnspecified):
        interp.out.write(f"{label} <unspecified>\n")
        return None
    cap, prov, _t = _value_capability(interp, value)
    hardware = interp.model.hardware
    text = format_capability(cap, None if hardware else prov,
                             hardware=hardware)
    interp.out.write(f"{label} {text}\n")
    return None


def _bi_print_int(interp, args, line):
    """``print_int(label, n)``: labelled decimal trace line."""
    label = _read_cstring(interp, _need_ptr(args[0], "print_int"),
                          "print_int")
    if isinstance(args[1], MVUnspecified):
        interp.out.write(f"{label} ?\n")
        return None
    interp.out.write(f"{label} {_plain_int(args[1], 'print_int')}\n")
    return None


_HANDLERS = {
    "malloc": _bi_malloc,
    "calloc": _bi_calloc,
    "free": _bi_free,
    "realloc": _bi_realloc,
    "memcpy": _bi_memcpy,
    "memmove": _bi_memcpy,
    "memset": _bi_memset,
    "memcmp": _bi_memcmp,
    "strlen": _bi_strlen,
    "strcmp": _bi_strcmp,
    "strncmp": _bi_strncmp,
    "strcpy": _bi_strcpy,
    "strcat": _bi_strcat,
    "strncpy": _bi_strncpy,
    "strchr": _bi_strchr,
    "memchr": _bi_memchr,
    "printf": _bi_printf,
    "fprintf": _bi_fprintf,
    "puts": _bi_puts,
    "putchar": _bi_putchar,
    "assert": _bi_assert,
    "abort": _bi_abort,
    "exit": _bi_exit,
    "sptr": _bi_sptr,
    "cheri_sealcap_get": _bi_sealcap_get,
    "print_cap": _bi_print_cap,
    "print_int": _bi_print_int,
}
