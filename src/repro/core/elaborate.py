"""Elaboration: typed AST -> Core IR.

The repo's analogue of Cerberus's C-to-Core elaboration (the paper,
S2.2).  Every implicit step of C evaluation becomes an explicit op in
the emitted Core: integer-rank conversions (``ConvertTo``), lvalue
decay (``LoadFrom`` / ``LoadIdent``), short-circuit and sequence-point
ordering (jump structure over a flat op list), and the S4.4
capability-derivation step (inside ``BinOp``/``UnaryArith``/``IncDec``,
which call :func:`repro.memory.derivation.derive` explicitly).

Two properties the rest of the stack depends on:

* **Elaboration is total** over parser output.  Programs the AST walker
  only rejects *when execution reaches the offending node* (calling an
  unknown function, an initialiser list outside a declaration, ``++``
  on a struct, ...) elaborate to a ``RaiseOp`` at the same execution
  point, so both evaluators agree on every outcome -- including which
  of two errors wins when a program contains both.
  :class:`ElaborationError` exists for *malformed* ASTs that the parser
  can never produce.

* **Charge matching.**  The AST walker counts one step per
  ``eval``/``exec_stmt`` call, pre-order.  Elaboration emits exactly
  one charged op per AST node at the same pre-order position (interior
  nodes get a standalone ``Charge``; leaf ops fold the charge in), so
  step budgets, cut-off points, deadline polls, and traced event step
  numbers are identical across evaluators -- the differential gate
  checks reports byte-for-byte.
"""

from __future__ import annotations

from repro.core.cast import (
    AlignofType, Assign, Binary, Block, Break, Call, Cast, Comma,
    Conditional, Continue, DeclStmt, Empty, Expr, ExprStmt, For, FuncDef,
    Ident, If, Index, InitList, IntLit, Member, OffsetofExpr, Program,
    Return, SizeofExpr, SizeofType, Stmt, StrLit, Switch, Unary, VaArg,
    While,
)
from repro.core.coreir import (
    AddrFunc, AddrOf, BinOp, BuildArray, BuildStruct, BuildUnion, Charge,
    ConvertTo, CoreFunc, CoreProgram, DeclAlloc, GlobalStore, Halt, IncDec,
    InitStore, Invoke, Jump, JumpIfFalse, JumpIfTrue, LoadForAssign,
    LoadFrom, LoadIdent, LvArrow, LvDeref, LvDot, LvError, LvIdent,
    LvIndex, LvString, NotOp, Op, PopScope, PopScopes, PopValue, PushInt,
    PushScope, PushString, PushStrArray, PushZero, RaiseOp, ResolveCall,
    ResolveTarget, Ret, SizeofOf, StaticBind, StaticCheck, StoreCompound,
    StoreValue, SwitchDispatch, TypeInfo, UnaryArith, VaArgOp, VaCopy,
    VaStart, finalize_func,
)
from repro.core.interp import (
    BreakSignal, CHAR_CONST, ContinueSignal, _array_of_const,
)
from repro.ctypes.types import ArrayT, INT, StructT, UnionT, Void
from repro.errors import CTypeError


class ElaborationError(CTypeError):
    """A structurally malformed AST reached the elaborator.  Parser
    output never triggers this (elaboration is total over it); it is a
    front-end rejection, cached by :class:`repro.perf.CompileCache`
    exactly like syntax and type errors."""


class _Label:
    """A forward-reference jump target, patched to a pc at finish."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: int | None = None


class _LoopCtx:
    """Targets for break/continue with the static scope depth each
    unwinds to (``PopScopes`` replaces the AST walker's signal
    exceptions)."""

    __slots__ = ("break_label", "break_depth", "continue_label",
                 "continue_depth")

    def __init__(self, break_label, break_depth, continue_label,
                 continue_depth) -> None:
        self.break_label = break_label
        self.break_depth = break_depth
        self.continue_label = continue_label
        self.continue_depth = continue_depth


class _FuncElaborator:
    """Emit the flat op list for one function body (or the globals
    initialisation pseudo-function)."""

    def __init__(self, funcnames: frozenset | set, func_name: str,
                 fdef: FuncDef | None) -> None:
        self.funcnames = funcnames
        self.func_name = func_name
        self.fdef = fdef
        self.ops: list[Op] = []
        self.depth = 0                # lexical scope depth inside the body
        self.loops: list[_LoopCtx] = []
        self._fixups: list[tuple] = []
        self._switch_patches: list[SwitchDispatch] = []

    # -- emission machinery -------------------------------------------

    def emit(self, op: Op) -> Op:
        self.ops.append(op)
        return op

    def here(self) -> int:
        return len(self.ops)

    def mark(self, label: _Label) -> None:
        label.pc = len(self.ops)

    def jump(self, cls, label: _Label, line: int = 0) -> Op:
        op = cls(-1, line)
        self._fixups.append((op, label))
        return self.emit(op)

    def finish(self) -> CoreFunc:
        for op, label in self._fixups:
            op.target = label.pc
        is_main = self.func_name == "main"
        self.emit(Ret("falloff", None, is_main))
        return finalize_func(CoreFunc(self.func_name, self.fdef, self.ops))

    # -- statements ---------------------------------------------------

    def stmt(self, node: Stmt) -> None:
        self.emit(Charge(type(node).__name__, node.line))
        if isinstance(node, Empty):
            return
        if isinstance(node, ExprStmt):
            self.expr(node.expr)
            self.emit(PopValue())
            return
        if isinstance(node, DeclStmt):
            for decl in node.decls:
                self.declaration(decl, static=node.static)
            return
        if isinstance(node, Block):
            self.emit(PushScope())
            self.depth += 1
            for sub in node.stmts:
                self.stmt(sub)
            self.depth -= 1
            self.emit(PopScope())
            return
        if isinstance(node, If):
            after = _Label()
            self.expr(node.cond)
            if node.other is None:
                self.jump(JumpIfFalse, after, node.line)
                self.stmt(node.then)
            else:
                other = _Label()
                self.jump(JumpIfFalse, other, node.line)
                self.stmt(node.then)
                self.jump(Jump, after, node.line)
                self.mark(other)
                self.stmt(node.other)
            self.mark(after)
            return
        if isinstance(node, While):
            self._while(node)
            return
        if isinstance(node, For):
            self._for(node)
            return
        if isinstance(node, Switch):
            self._switch(node)
            return
        if isinstance(node, Return):
            if node.value is not None:
                self.expr(node.value)
                ret_ctype = None if self.fdef is None or \
                    isinstance(self.fdef.ret, Void) else self.fdef.ret
                self.emit(Ret("value", ret_ctype,
                              self.func_name == "main", node.line))
            else:
                self.emit(Ret("void", None, self.func_name == "main",
                              node.line))
            return
        if isinstance(node, Break):
            if not self.loops:
                # Outside any loop the AST walker's BreakSignal escapes
                # uncaught; replicate the crash, not new semantics.
                self.emit(RaiseOp(BreakSignal, (), node.line))
                return
            ctx = self.loops[-1]
            self._unwind_to(ctx.break_depth, node.line)
            self.jump(Jump, ctx.break_label, node.line)
            return
        if isinstance(node, Continue):
            for ctx in reversed(self.loops):
                if ctx.continue_label is not None:
                    self._unwind_to(ctx.continue_depth, node.line)
                    self.jump(Jump, ctx.continue_label, node.line)
                    return
            self.emit(RaiseOp(ContinueSignal, (), node.line))
            return
        self.emit(RaiseOp(
            CTypeError, (f"unhandled statement {type(node).__name__}",),
            node.line))

    def _unwind_to(self, target_depth: int, line: int) -> None:
        count = self.depth - target_depth
        if count:
            self.emit(PopScopes(count, line))

    def _while(self, node: While) -> None:
        cond = _Label()
        end = _Label()
        if node.do_while:
            body = _Label()
            self.mark(body)
            self.loops.append(_LoopCtx(end, self.depth, cond, self.depth))
            self.stmt(node.body)
            self.loops.pop()
            self.mark(cond)
            self.expr(node.cond)
            self.jump(JumpIfTrue, body, node.line)
        else:
            self.mark(cond)
            self.expr(node.cond)
            self.jump(JumpIfFalse, end, node.line)
            self.loops.append(_LoopCtx(end, self.depth, cond, self.depth))
            self.stmt(node.body)
            self.loops.pop()
            self.jump(Jump, cond, node.line)
        self.mark(end)

    def _for(self, node: For) -> None:
        cond = _Label()
        step = _Label()
        end = _Label()
        self.emit(PushScope())
        self.depth += 1
        if node.init is not None:
            self.stmt(node.init)
        self.mark(cond)
        if node.cond is not None:
            self.expr(node.cond)
            self.jump(JumpIfFalse, end, node.line)
        self.loops.append(_LoopCtx(end, self.depth, step, self.depth))
        self.stmt(node.body)
        self.loops.pop()
        self.mark(step)
        if node.step is not None:
            self.expr(node.step)
            self.emit(PopValue())
        self.jump(Jump, cond, node.line)
        self.mark(end)
        self.depth -= 1
        self.emit(PopScope())

    def _switch(self, node: Switch) -> None:
        exit_ = _Label()
        self.expr(node.cond)
        dispatch = SwitchDispatch(
            tuple((c.value, c.index) for c in node.cases), node.line)
        self.emit(dispatch)
        stmt_labels = [_Label() for _ in node.stmts]
        # Break unwinds the switch scope too (the AST walker's finally).
        self.loops.append(_LoopCtx(exit_, self.depth, None, 0))
        self.depth += 1
        for label, sub in zip(stmt_labels, node.stmts):
            self.mark(label)
            self.stmt(sub)
        self.depth -= 1
        self.loops.pop()
        self.emit(PopScope())
        self.mark(exit_)
        self._fixups.append((_SwitchEnd(dispatch), exit_))
        dispatch.stmt_targets = stmt_labels
        self._switch_patches.append(dispatch)

    # -- declarations and initialisers --------------------------------

    def declaration(self, decl, *, static: bool) -> None:
        if static:
            key = (self.func_name, decl.name)
            check = StaticCheck(key, decl, decl.line)
            self.emit(check)
            if decl.init is None:
                self.emit(PushZero(decl.ctype, decl.line))
            else:
                self.initializer(decl.init, decl.ctype)
            self.emit(InitStore())
            bind = _Label()
            self.mark(bind)
            self.emit(StaticBind(key, decl.name, decl.line))
            self._fixups.append((_StaticEnd(check), bind))
            return
        readonly = decl.ctype.const or _array_of_const(decl.ctype)
        self.emit(DeclAlloc(decl, readonly, decl.init is not None,
                            decl.line))
        if decl.init is not None:
            self.initializer(decl.init, decl.ctype)
            self.emit(InitStore())

    def initializer(self, init: Expr, ctype) -> None:
        """Emit ops leaving the (already converted) initialiser value on
        the operand stack -- the Core form of ``eval_initializer``."""
        if isinstance(init, InitList):
            self._init_list(init, ctype)
            return
        if isinstance(init, StrLit) and isinstance(ctype, ArrayT):
            self.emit(PushStrArray(ctype, init.value, init.line))
            return
        self.expr(init)
        self.emit(ConvertTo(ctype, False, init.line))

    def _init_list(self, init: InitList, ctype) -> None:
        if isinstance(ctype, ArrayT):
            length = ctype.length if ctype.length is not None \
                else len(init.items)
            given = min(length, len(init.items))
            for i in range(given):
                self.initializer(init.items[i], ctype.elem)
            self.emit(BuildArray(ctype, length, given, init.line))
            return
        if isinstance(ctype, UnionT):
            fields = ctype.fields or ()
            if not init.items or not fields:
                self.emit(BuildUnion(ctype, "", init.line))
                return
            first = fields[0]
            self.initializer(init.items[0], first.ctype)
            self.emit(BuildUnion(ctype, first.name, init.line))
            return
        if isinstance(ctype, StructT):
            fields = ctype.fields or ()
            given = min(len(fields), len(init.items))
            for i in range(given):
                self.initializer(init.items[i], fields[i].ctype)
            self.emit(BuildStruct(ctype, given, init.line))
            return
        if len(init.items) == 1:
            self.initializer(init.items[0], ctype)
            return
        self.emit(RaiseOp(
            CTypeError, (f"brace initialiser for scalar type {ctype}",),
            init.line))

    # -- expressions --------------------------------------------------

    def expr(self, node: Expr) -> None:
        """Rvalue elaboration: exactly one charged op for this node
        (before its sub-evaluations), matching the walker's ``eval``."""
        if isinstance(node, IntLit):
            self.emit(PushInt(node.ctype or INT, node.value, node.line))
            return
        if isinstance(node, StrLit):
            self.emit(PushString(node.value, node.line))
            return
        if isinstance(node, Ident):
            self.emit(LoadIdent(node, node.line))
            return
        self.emit(Charge(type(node).__name__, node.line))
        if isinstance(node, Unary):
            self._unary(node)
            return
        if isinstance(node, Binary):
            self._binary(node)
            return
        if isinstance(node, Assign):
            self.lvalue(node.target)
            if node.op:
                self.emit(LoadForAssign())
                self.expr(node.value)
                self.emit(StoreCompound(node.op, node.line))
            else:
                self.expr(node.value)
                self.emit(StoreValue(node.line))
            return
        if isinstance(node, Conditional):
            other = _Label()
            after = _Label()
            self.expr(node.cond)
            self.jump(JumpIfFalse, other, node.line)
            self.expr(node.then)
            self.jump(Jump, after, node.line)
            self.mark(other)
            self.expr(node.other)
            self.mark(after)
            return
        if isinstance(node, Cast):
            self.expr(node.operand)
            self.emit(ConvertTo(node.ctype, True, node.line))
            return
        if isinstance(node, Comma):
            self.expr(node.lhs)
            self.emit(PopValue())
            self.expr(node.rhs)
            return
        if isinstance(node, Call):
            self._call(node)
            return
        if isinstance(node, Index):
            self.expr(node.base)
            self.expr(node.index)
            self.emit(LvIndex(node.line))
            self.emit(LoadFrom())
            return
        if isinstance(node, Member):
            self._member_lvalue(node)
            self.emit(LoadFrom())
            return
        if isinstance(node, SizeofType):
            self.ops[-1] = TypeInfo("sizeof", node.ctype, "", node.line)
            return
        if isinstance(node, SizeofExpr):
            self._sizeof_expr(node)
            return
        if isinstance(node, AlignofType):
            self.ops[-1] = TypeInfo("alignof", node.ctype, "", node.line)
            return
        if isinstance(node, OffsetofExpr):
            self.ops[-1] = TypeInfo("offsetof", node.ctype, node.member,
                                    node.line)
            return
        if isinstance(node, VaArg):
            self.lvalue(node.ap)
            self.emit(VaArgOp(node.ctype, node.line))
            return
        if isinstance(node, InitList):
            self.emit(RaiseOp(
                CTypeError, ("initialiser list outside a declaration",),
                node.line))
            return
        self.emit(RaiseOp(
            CTypeError, (f"unhandled expression {type(node).__name__}",),
            node.line))

    def lvalue(self, node: Expr) -> None:
        """Lvalue elaboration (``lval`` in the walker): leaves a
        ``(ctype, pointer)`` pair; charges only for sub-*evaluations*,
        never for the lvalue node itself."""
        if isinstance(node, Ident):
            self.emit(LvIdent(node, node.line))
            return
        if isinstance(node, Unary) and node.op == "*":
            self.expr(node.operand)
            self.emit(LvDeref(node.line))
            return
        if isinstance(node, Index):
            self.expr(node.base)
            self.expr(node.index)
            self.emit(LvIndex(node.line))
            return
        if isinstance(node, Member):
            self._member_lvalue(node)
            return
        if isinstance(node, StrLit):
            self.emit(LvString(node.value, node.line))
            return
        if isinstance(node, Cast):
            self.emit(LvError("cast expressions are not lvalues",
                              node.line))
            return
        self.emit(LvError(
            f"expression is not an lvalue: {type(node).__name__} "
            f"(line {node.line})", node.line))

    def _member_lvalue(self, node: Member) -> None:
        if node.arrow:
            self.expr(node.base)
            self.emit(LvArrow(node.name, node.line))
        else:
            self.lvalue(node.base)
            self.emit(LvDot(node.name, node.line))

    def _unary(self, node: Unary) -> None:
        op = node.op
        if op == "&":
            if isinstance(node.operand, Ident) and \
                    node.operand.name in self.funcnames:
                self.emit(AddrFunc(node.operand, node.line))
                return
            self.lvalue(node.operand)
            self.emit(AddrOf())
            return
        if op == "*":
            self.expr(node.operand)
            self.emit(LvDeref(node.line))
            self.emit(LoadFrom())
            return
        if op in ("++", "--"):
            self.lvalue(node.operand)
            self.emit(IncDec(op, node.postfix, node.line))
            return
        self.expr(node.operand)
        if op == "!":
            self.emit(NotOp())
        else:
            self.emit(UnaryArith(op, node.line))

    def _binary(self, node: Binary) -> None:
        op = node.op
        if op in ("&&", "||"):
            shortcut = _Label()
            after = _Label()
            jump_cls = JumpIfFalse if op == "&&" else JumpIfTrue
            self.expr(node.lhs)
            self.jump(jump_cls, shortcut, node.line)
            self.expr(node.rhs)
            self.jump(jump_cls, shortcut, node.line)
            self.emit(PushInt(INT, 1 if op == "&&" else 0, node.line,
                              charge=False))
            self.jump(Jump, after, node.line)
            self.mark(shortcut)
            self.emit(PushInt(INT, 0 if op == "&&" else 1, node.line,
                              charge=False))
            self.mark(after)
            return
        self.expr(node.lhs)
        self.expr(node.rhs)
        self.emit(BinOp(op, node.line))

    def _call(self, node: Call) -> None:
        if isinstance(node.func, Ident):
            name = node.func.name
            if name in ("va_start", "va_end", "va_copy"):
                self._va_builtin(name, node)
                return
            self.emit(ResolveCall(node, node.line))
        else:
            self.expr(node.func)
            self.emit(ResolveTarget(node.line))
        for arg in node.args:
            self.expr(arg)
        self.emit(Invoke(len(node.args), node.line))

    def _va_builtin(self, name: str, node: Call) -> None:
        if name == "va_end":
            # va_end evaluates no arguments and yields 0.
            self.emit(PushInt(INT, 0, node.line, charge=False))
            return
        if name == "va_start":
            if len(node.args) != 2:
                self.emit(RaiseOp(CTypeError,
                                  ("va_start expects (ap, last)",),
                                  node.line))
                return
            # The second argument (`last`) is never evaluated.
            self.lvalue(node.args[0])
            self.emit(VaStart(node.line))
            return
        if len(node.args) != 2:
            self.emit(RaiseOp(CTypeError, ("va_copy expects (dst, src)",),
                              node.line))
            return
        self.lvalue(node.args[0])
        self.expr(node.args[1])
        self.emit(VaCopy(node.line))

    def _sizeof_expr(self, node: SizeofExpr) -> None:
        """Mirror ``type_of``'s static descent; a node it cannot type
        statically becomes an evaluated leaf (the walker's fallback of
        evaluating the operand and taking its ``.ctype``)."""
        steps: list[tuple] = []
        leaf = node.operand
        while True:
            if isinstance(leaf, IntLit):
                leaf_desc = ("static", leaf.ctype or INT)
                break
            if isinstance(leaf, StrLit):
                leaf_desc = ("static",
                             ArrayT(elem=CHAR_CONST,
                                    length=len(leaf.value) + 1))
                break
            if isinstance(leaf, Ident):
                leaf_desc = ("ident", leaf.name)
                break
            if isinstance(leaf, Cast):
                leaf_desc = ("static", leaf.ctype)
                break
            if isinstance(leaf, Unary) and leaf.op == "*":
                steps.append(("deref",))
                leaf = leaf.operand
                continue
            if isinstance(leaf, Unary) and leaf.op == "&":
                steps.append(("addr",))
                leaf = leaf.operand
                continue
            if isinstance(leaf, Index):
                steps.append(("index",))
                leaf = leaf.base
                continue
            if isinstance(leaf, Member):
                steps.append(("member", leaf.name, leaf.arrow))
                leaf = leaf.base
                continue
            leaf_desc = ("eval",)
            break
        steps.reverse()
        if leaf_desc[0] == "eval":
            self.expr(leaf)
        self.emit(SizeofOf(leaf_desc, tuple(steps), node.line))


class _SwitchEnd:
    """Fixup shim: patches a SwitchDispatch's ``end`` field when the
    shared label-fixup pass assigns targets."""

    __slots__ = ("dispatch",)

    def __init__(self, dispatch: SwitchDispatch) -> None:
        self.dispatch = dispatch

    @property
    def target(self):
        return self.dispatch.end

    @target.setter
    def target(self, pc):
        self.dispatch.end = pc


class _StaticEnd:
    """Fixup shim for a StaticCheck's already-initialised jump."""

    __slots__ = ("check",)

    def __init__(self, check: StaticCheck) -> None:
        self.check = check

    @property
    def target(self):
        return self.check.bind_target

    @target.setter
    def target(self, pc):
        self.check.bind_target = pc


def _resolve_switches(func_el: _FuncElaborator) -> None:
    for dispatch in func_el._switch_patches:
        dispatch.stmt_targets = tuple(
            label.pc for label in dispatch.stmt_targets)


def _registered_functions(program: Program) -> dict[str, FuncDef]:
    """The same prototype-vs-definition dedup the interpreter performs
    at setup (a definition always wins over a prototype)."""
    functions: dict[str, FuncDef] = {}
    for fdef in program.functions:
        if fdef.body is None and fdef.name in functions:
            continue
        if fdef.body is not None or fdef.name not in functions:
            functions[fdef.name] = fdef
    return functions


def elaborate_program(program: Program) -> CoreProgram:
    """Elaborate a typed AST ``Program`` into a :class:`CoreProgram`.

    Total over parser output: programs that fail at runtime under the
    AST walker elaborate to Core that fails identically at the same
    execution point.
    """
    if not isinstance(program, Program):
        raise ElaborationError(
            f"cannot elaborate {type(program).__name__}: expected a typed "
            f"AST Program")
    functions = _registered_functions(program)
    funcnames = frozenset(functions)
    core_funcs: dict[str, CoreFunc] = {}
    for name, fdef in functions.items():
        if fdef.body is None:
            core_funcs[name] = CoreFunc(name, fdef, [])
            continue
        el = _FuncElaborator(funcnames, name, fdef)
        for sub in fdef.body.stmts:
            el.stmt(sub)
        func = el.finish()
        _resolve_switches(el)
        core_funcs[name] = func
    gel = _FuncElaborator(funcnames, "<globals>", None)
    for gdecl in program.globals:
        decl = gdecl.decl
        if decl.init is None:
            gel.emit(PushZero(decl.ctype, decl.line))
        else:
            gel.initializer(decl.init, decl.ctype)
        gel.emit(GlobalStore(decl.name, decl.line))
    gel.emit(Halt())
    for op, label in gel._fixups:
        op.target = label.pc
    _resolve_switches(gel)
    globals_init = finalize_func(
        CoreFunc("<globals>", None, gel.ops))
    return CoreProgram(program, core_funcs, globals_init)
