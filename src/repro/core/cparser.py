"""Recursive-descent parser for the CHERI C subset.

Covers the language the paper's 94-test validation suite needs:
declarations with full C declarator syntax (pointers, arrays, function
pointers), struct/union definitions, typedefs, const, static, the full
expression grammar with C precedence, and the statement forms.  The
standard headers are built in: ``stdint.h``/``stddef.h`` typedefs,
``limits.h``/``stdint.h`` limit macros (target-dependent, hence the
parser takes a :class:`~repro.ctypes.layout.TargetLayout`), and
``cheriintrin.h`` intrinsics (known to the interpreter).
"""

from __future__ import annotations

from dataclasses import replace

from repro.ctypes.layout import TargetLayout
from repro.ctypes.types import (
    ArrayT, BOOL, CHAR, CType, Field, FuncT, IKind, INT, Integer, INTPTR,
    LLONG, LONG, Pointer, PTRADDR, PTRDIFF_T, SCHAR, SHORT, SIZE_T, StructT,
    UCHAR, UINT, UINTPTR, ULLONG, ULONG, UnionT, USHORT, VOID, Void,
)
from repro.core.cast import (
    AlignofType, Assign, Binary, Block, Break, Call, Cast, Comma,
    Conditional, Continue, Declarator, DeclStmt, Empty, Expr, ExprStmt, For,
    FuncDef, GlobalDecl, Ident, If, Index, InitList, IntLit, Member,
    OffsetofExpr, Param, Program, Return, SizeofExpr, SizeofType, Stmt,
    StrLit, Switch, SwitchCase, Unary, VaArg, While,
)
from repro.core.clexer import Token, tokenize
from repro.errors import CSyntaxError

#: Built-in typedef names available without any #include.
BUILTIN_TYPEDEFS: dict[str, CType] = {
    "size_t": SIZE_T,
    "ptrdiff_t": PTRDIFF_T,
    "intptr_t": INTPTR,
    "uintptr_t": UINTPTR,
    "ptraddr_t": PTRADDR,
    "vaddr_t": PTRADDR,
    "bool": BOOL,
    "int8_t": SCHAR, "uint8_t": UCHAR,
    "int16_t": SHORT, "uint16_t": USHORT,
    "int32_t": INT, "uint32_t": UINT,
    "int64_t": LLONG, "uint64_t": ULLONG,
    # va_list is an index into the callee's variadic-argument vector.
    "va_list": LONG,
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

#: Binary operator precedence (higher binds tighter).
PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token], layout: TargetLayout) -> None:
        self.toks = tokens
        self.pos = 0
        self.layout = layout
        self.typedefs: dict[str, CType] = dict(BUILTIN_TYPEDEFS)
        self.tags: dict[str, StructT] = {}
        self.constants = _limit_constants(layout)

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.toks) - 1)
        return self.toks[idx]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.text != text:
            raise CSyntaxError(f"expected {text!r}, found {tok.text!r}",
                               tok.line, tok.col)
        return self.next()

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.next()
            return True
        return False

    def error(self, message: str) -> CSyntaxError:
        tok = self.peek()
        return CSyntaxError(message + f" (at {tok.text!r})",
                            tok.line, tok.col)

    # -- type recognition ---------------------------------------------------

    TYPE_KEYWORDS = frozenset({
        "void", "char", "short", "int", "long", "signed", "unsigned",
        "_Bool", "const", "volatile", "struct", "union", "float", "double",
    })

    def at_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        if tok.kind == "kw" and tok.text in self.TYPE_KEYWORDS:
            return True
        return tok.kind == "id" and tok.text in self.typedefs

    def at_declaration(self) -> bool:
        tok = self.peek()
        if tok.is_kw("static", "typedef", "extern"):
            return True
        return self.at_type()

    # -- declaration specifiers ------------------------------------------

    def parse_specifiers(self) -> tuple[CType, bool, bool]:
        """Returns (base type, is_static, is_typedef)."""
        is_static = is_typedef = False
        const = False
        words: list[str] = []
        base: CType | None = None
        while True:
            tok = self.peek()
            if tok.is_kw("static", "extern"):
                self.next()
                is_static = True
            elif tok.is_kw("typedef"):
                self.next()
                is_typedef = True
            elif tok.is_kw("const"):
                self.next()
                const = True
            elif tok.is_kw("volatile", "inline", "restrict"):
                self.next()
            elif tok.is_kw("struct", "union"):
                base = self.parse_struct_union()
            elif tok.is_kw("enum"):
                base = self.parse_enum()
            elif tok.is_kw("float", "double"):
                raise self.error("floating-point types are not supported")
            elif tok.is_kw("void", "char", "short", "int", "long",
                           "signed", "unsigned", "_Bool"):
                words.append(self.next().text)
            elif (tok.kind == "id" and tok.text in self.typedefs
                  and base is None and not words):
                base = self.typedefs[self.next().text]
            else:
                break
        if base is None:
            base = _base_from_words(words, self)
        if const:
            base = base.qualified_const()
        return base, is_static, is_typedef

    def parse_struct_union(self) -> StructT:
        kw = self.next().text            # struct | union
        is_union = kw == "union"
        tag = ""
        if self.peek().kind == "id":
            tag = self.next().text
        if not self.accept("{"):
            key = ("union " if is_union else "struct ") + tag
            existing = self.tags.get(key)
            if existing is not None:
                return existing
            forward = (UnionT(tag=tag, fields=None) if is_union
                       else StructT(tag=tag, fields=None))
            self.tags[key] = forward
            return forward
        fields: list[Field] = []
        while not self.accept("}"):
            base, _static, _td = self.parse_specifiers()
            while True:
                name, ctype = self.parse_declarator(base)
                fields.append(Field(name, ctype))
                if not self.accept(","):
                    break
            self.expect(";")
        if not tag:
            tag = f"__anon{len(self.tags)}"
        cls = UnionT if is_union else StructT
        result = cls(tag=tag, fields=tuple(fields))
        self.tags[("union " if is_union else "struct ") + tag] = result
        return result

    def parse_enum(self) -> CType:
        """Enumerations: each enumerator becomes an int constant."""
        self.expect("enum")
        if self.peek().kind == "id":
            self.next()   # tag (no separate enum-type identity needed)
        if self.accept("{"):
            value = 0
            while not self.accept("}"):
                name_tok = self.next()
                if name_tok.kind != "id":
                    raise self.error("expected an enumerator name")
                if self.accept("="):
                    value = self.parse_constant_expression()
                self.constants[name_tok.text] = (
                    lambda v: lambda line: IntLit(value=v, ctype=INT,
                                                  line=line))(value)
                value += 1
                if not self.accept(","):
                    self.expect("}")
                    break
        return INT

    # -- declarators ---------------------------------------------------------

    def parse_declarator(self, base: CType) -> tuple[str, CType]:
        """Full C declarator syntax (pointers, arrays, function pointers).

        Also records, in ``self._last_params``, the parameter list of the
        function suffix directly attached to the declared name -- what a
        function *definition* needs for its parameter names.
        """
        self._last_params = None
        name, ctype = self._declarator(base)
        return name, ctype

    def _declarator(self, base: CType) -> tuple[str, CType]:
        if self.accept("*"):
            ptr: CType = Pointer(base)
            while self.peek().is_kw("const", "volatile", "restrict"):
                if self.next().text == "const":
                    ptr = ptr.qualified_const()
            return self._declarator(ptr)
        return self._direct_declarator(base)

    def _direct_declarator(self, base: CType) -> tuple[str, CType]:
        tok = self.peek()
        if tok.is_punct("(") and self.peek(1).is_punct("*", "("):
            # Parenthesised inner declarator: parse the suffixes that
            # follow the closing paren first (they bind to the base),
            # then re-parse the inner declarator against that type.
            self.next()
            inner_start = self.pos
            self._skip_balanced_parens()
            applied = self._parse_suffixes(base, attach_params=False)
            end_pos = self.pos
            self.pos = inner_start
            name, ctype = self._declarator(applied)
            self.expect(")")
            self.pos = end_pos
            return name, ctype
        name = ""
        if tok.kind == "id":
            name = self.next().text
        ctype = self._parse_suffixes(base, attach_params=True)
        return name, ctype

    def _skip_balanced_parens(self) -> None:
        depth = 1
        while depth:
            t = self.next()
            if t.kind == "eof":
                raise self.error("unbalanced parentheses in declarator")
            if t.is_punct("("):
                depth += 1
            elif t.is_punct(")"):
                depth -= 1

    def _parse_suffixes(self, base: CType, *, attach_params: bool) -> CType:
        suffixes: list[tuple[str, object]] = []
        first_func_params: list[Param] | None = None
        while True:
            if self.accept("["):
                if self.accept("]"):
                    suffixes.append(("array", None))
                else:
                    size = self.parse_constant_expression()
                    self.expect("]")
                    suffixes.append(("array", size))
            elif self.peek().is_punct("("):
                self.next()
                params, variadic = self._param_list()
                if first_func_params is None:
                    first_func_params = params
                suffixes.append(("func", (params, variadic)))
            else:
                break
        ctype = base
        for kind, payload in reversed(suffixes):
            if kind == "array":
                ctype = ArrayT(elem=ctype, length=payload)  # type: ignore[arg-type]
            else:
                params, variadic = payload  # type: ignore[misc]
                ctype = FuncT(ret=ctype,
                              params=tuple(p.ctype for p in params),
                              variadic=variadic)
        if attach_params and first_func_params is not None:
            self._last_params = first_func_params
        return ctype

    def _param_list(self) -> tuple[list[Param], bool]:
        params: list[Param] = []
        variadic = False
        if self.accept(")"):
            return params, variadic
        if self.peek().is_kw("void") and self.peek(1).is_punct(")"):
            self.next(), self.next()
            return params, variadic
        while True:
            if self.accept("..."):
                variadic = True
                break
            base, _static, _td = self.parse_specifiers()
            name, ctype = self.parse_declarator(base)
            # Array parameters decay to pointers; function params too.
            if isinstance(ctype, ArrayT):
                ctype = Pointer(ctype.elem)
            elif isinstance(ctype, FuncT):
                ctype = Pointer(ctype)
            params.append(Param(name, ctype))
            if not self.accept(","):
                break
        self.expect(")")
        return params, variadic

    def parse_type_name(self) -> CType:
        base, _static, _td = self.parse_specifiers()
        name, ctype = self.parse_abstract_declarator(base)
        if name:
            raise self.error("type name must not declare an identifier")
        return ctype

    def parse_abstract_declarator(self, base: CType) -> tuple[str, CType]:
        return self.parse_declarator(base)

    # -- constant expressions (array sizes) ----------------------------------

    def parse_constant_expression(self) -> int:
        expr = self.parse_conditional()
        value = _const_eval(expr, self.layout)
        if value is None:
            raise self.error("expected an integer constant expression")
        return value

    # -- expressions ----------------------------------------------------

    def parse_expression(self) -> Expr:
        expr = self.parse_assignment()
        while self.peek().is_punct(","):
            line = self.next().line
            rhs = self.parse_assignment()
            expr = Comma(lhs=expr, rhs=rhs, line=line)
        return expr

    def parse_assignment(self) -> Expr:
        lhs = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            op = "" if tok.text == "=" else tok.text[:-1]
            return Assign(op=op, target=lhs, value=rhs, line=tok.line)
        return lhs

    def parse_conditional(self) -> Expr:
        cond = self.parse_binary(1)
        if self.peek().is_punct("?"):
            line = self.next().line
            then = self.parse_expression()
            self.expect(":")
            other = self.parse_conditional()
            return Conditional(cond=cond, then=then, other=other, line=line)
        return cond

    def parse_binary(self, min_prec: int) -> Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = PRECEDENCE.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            lhs = Binary(op=tok.text, lhs=lhs, rhs=rhs, line=tok.line)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.is_punct("++", "--"):
            self.next()
            operand = self.parse_unary()
            return Unary(op=tok.text, operand=operand, line=tok.line)
        if tok.is_punct("-", "+", "~", "!", "&", "*"):
            self.next()
            operand = self.parse_cast_expr_or_unary()
            return Unary(op=tok.text, operand=operand, line=tok.line)
        if tok.is_kw("sizeof"):
            self.next()
            if self.peek().is_punct("(") and self.at_type(1):
                self.expect("(")
                ctype = self.parse_type_name()
                self.expect(")")
                return SizeofType(ctype=ctype, line=tok.line)
            operand = self.parse_unary()
            return SizeofExpr(operand=operand, line=tok.line)
        if tok.is_kw("_Alignof"):
            self.next()
            self.expect("(")
            ctype = self.parse_type_name()
            self.expect(")")
            return AlignofType(ctype=ctype, line=tok.line)
        return self.parse_cast_expr()

    def parse_cast_expr(self) -> Expr:
        tok = self.peek()
        if tok.is_punct("(") and self.at_type(1):
            self.next()
            ctype = self.parse_type_name()
            self.expect(")")
            if self.peek().is_punct("{"):
                raise self.error("compound literals are not supported")
            operand = self.parse_cast_expr_or_unary()
            return Cast(ctype=ctype, operand=operand, line=tok.line)
        return self.parse_postfix()

    def parse_cast_expr_or_unary(self) -> Expr:
        tok = self.peek()
        if tok.is_punct("-", "+", "~", "!", "&", "*", "++", "--") or \
                tok.is_kw("sizeof", "_Alignof"):
            return self.parse_unary()
        return self.parse_cast_expr()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.is_punct("["):
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expr = Index(base=expr, index=index, line=tok.line)
            elif tok.is_punct("("):
                self.next()
                args: list[Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = Call(func=expr, args=tuple(args), line=tok.line)
            elif tok.is_punct("."):
                self.next()
                name = self.next().text
                expr = Member(base=expr, name=name, arrow=False,
                              line=tok.line)
            elif tok.is_punct("->"):
                self.next()
                name = self.next().text
                expr = Member(base=expr, name=name, arrow=True,
                              line=tok.line)
            elif tok.is_punct("++", "--"):
                self.next()
                expr = Unary(op=tok.text, operand=expr, postfix=True,
                             line=tok.line)
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "num":
            self.next()
            ctype = _literal_type(tok, self.layout)
            return IntLit(value=tok.value, ctype=ctype,   # type: ignore[arg-type]
                          line=tok.line)
        if tok.kind == "char":
            self.next()
            return IntLit(value=tok.value, ctype=INT,     # type: ignore[arg-type]
                          line=tok.line)
        if tok.kind == "str":
            self.next()
            return StrLit(value=tok.value, line=tok.line)  # type: ignore[arg-type]
        if tok.kind == "id":
            if tok.text == "va_arg" and self.peek(1).is_punct("("):
                self.next(), self.next()
                ap = self.parse_assignment()
                self.expect(",")
                ctype = self.parse_type_name()
                self.expect(")")
                return VaArg(ap=ap, ctype=ctype, line=tok.line)
            if tok.text == "offsetof" and self.peek(1).is_punct("("):
                self.next(), self.next()
                ctype = self.parse_type_name()
                self.expect(",")
                member = self.next().text
                self.expect(")")
                return OffsetofExpr(ctype=ctype, member=member,
                                    line=tok.line)
            if tok.text in self.constants:
                self.next()
                return self.constants[tok.text](tok.line)
            self.next()
            return Ident(name=tok.text, line=tok.line)
        if tok.is_punct("("):
            self.next()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise self.error("expected an expression")

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_punct(";"):
            self.next()
            return Empty(line=tok.line)
        if tok.is_kw("if"):
            self.next()
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            then = self.parse_statement()
            other = self.parse_statement() if self.accept("else") else None
            return If(cond=cond, then=then, other=other, line=tok.line)
        if tok.is_kw("while"):
            self.next()
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            body = self.parse_statement()
            return While(cond=cond, body=body, line=tok.line)
        if tok.is_kw("do"):
            self.next()
            body = self.parse_statement()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return While(cond=cond, body=body, do_while=True, line=tok.line)
        if tok.is_kw("for"):
            return self.parse_for()
        if tok.is_kw("return"):
            self.next()
            value = None
            if not self.peek().is_punct(";"):
                value = self.parse_expression()
            self.expect(";")
            return Return(value=value, line=tok.line)
        if tok.is_kw("switch"):
            return self.parse_switch()
        if tok.is_kw("break"):
            self.next(), self.expect(";")
            return Break(line=tok.line)
        if tok.is_kw("continue"):
            self.next(), self.expect(";")
            return Continue(line=tok.line)
        if self.at_declaration():
            return self.parse_declaration_stmt()
        expr = self.parse_expression()
        self.expect(";")
        return ExprStmt(expr=expr, line=tok.line)

    def parse_for(self) -> Stmt:
        tok = self.expect("for")
        self.expect("(")
        init: Stmt | None = None
        if not self.accept(";"):
            if self.at_declaration():
                init = self.parse_declaration_stmt()
            else:
                expr = self.parse_expression()
                self.expect(";")
                init = ExprStmt(expr=expr, line=tok.line)
        cond = None
        if not self.peek().is_punct(";"):
            cond = self.parse_expression()
        self.expect(";")
        step = None
        if not self.peek().is_punct(")"):
            step = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return For(init=init, cond=cond, step=step, body=body, line=tok.line)

    def parse_switch(self) -> Stmt:
        tok = self.expect("switch")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect("{")
        stmts: list[Stmt] = []
        cases: list[SwitchCase] = []
        while not self.accept("}"):
            if self.peek().is_kw("case"):
                self.next()
                value = self.parse_constant_expression()
                self.expect(":")
                cases.append(SwitchCase(value, len(stmts)))
                continue
            if self.peek().is_kw("default"):
                self.next()
                self.expect(":")
                cases.append(SwitchCase(None, len(stmts)))
                continue
            stmts.append(self.parse_statement())
        return Switch(cond=cond, stmts=tuple(stmts), cases=tuple(cases),
                      line=tok.line)

    def parse_block(self) -> Block:
        tok = self.expect("{")
        stmts: list[Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_statement())
        return Block(stmts=tuple(stmts), line=tok.line)

    def parse_declaration_stmt(self) -> Stmt:
        line = self.peek().line
        base, is_static, is_typedef = self.parse_specifiers()
        if is_typedef:
            while True:
                name, ctype = self.parse_declarator(base)
                self.typedefs[name] = ctype
                if not self.accept(","):
                    break
            self.expect(";")
            return Empty(line=line)
        if self.peek().is_punct(";"):
            # A bare struct/union definition.
            self.next()
            return Empty(line=line)
        decls: list[Declarator] = []
        while True:
            dline = self.peek().line
            name, ctype = self.parse_declarator(base)
            init = None
            if self.accept("="):
                init = self.parse_initializer()
            if init is not None and isinstance(ctype, ArrayT) \
                    and ctype.length is None:
                ctype = _complete_array(ctype, init)
            decls.append(Declarator(name, ctype, init, dline))
            if not self.accept(","):
                break
        self.expect(";")
        return DeclStmt(decls=tuple(decls), static=is_static, line=line)

    def parse_initializer(self) -> Expr:
        if self.peek().is_punct("{"):
            tok = self.next()
            items: list[Expr] = []
            if not self.accept("}"):
                while True:
                    items.append(self.parse_initializer())
                    if not self.accept(","):
                        break
                    if self.peek().is_punct("}"):
                        break
                self.expect("}")
            return InitList(items=tuple(items), line=tok.line)
        return self.parse_assignment()

    # -- top level ------------------------------------------------------

    def parse_program(self) -> Program:
        functions: list[FuncDef] = []
        globals_: list[GlobalDecl] = []
        while self.peek().kind != "eof":
            line = self.peek().line
            base, is_static, is_typedef = self.parse_specifiers()
            if is_typedef:
                while True:
                    name, ctype = self.parse_declarator(base)
                    self.typedefs[name] = ctype
                    if not self.accept(","):
                        break
                self.expect(";")
                continue
            if self.peek().is_punct(";"):
                self.next()   # bare struct definition
                continue
            name, ctype = self.parse_declarator(base)
            if isinstance(ctype, FuncT) and self.peek().is_punct("{"):
                # _last_params was recorded by the declarator; grab it
                # before the body's declarations overwrite it.
                params = self._last_params or []
                body = self.parse_block()
                functions.append(FuncDef(
                    name=name, ret=ctype.ret, params=tuple(params),
                    variadic=ctype.variadic, body=body, line=line))
                continue
            if isinstance(ctype, FuncT):
                self.expect(";")
                functions.append(FuncDef(
                    name=name, ret=ctype.ret,
                    params=tuple(self._last_params or []),
                    variadic=ctype.variadic, body=None, line=line))
                continue
            init = None
            if self.accept("="):
                init = self.parse_initializer()
            if init is not None and isinstance(ctype, ArrayT) \
                    and ctype.length is None:
                ctype = _complete_array(ctype, init)
            globals_.append(GlobalDecl(
                decl=Declarator(name, ctype, init, line),
                static=is_static, line=line))
            while self.accept(","):
                dline = self.peek().line
                name, ctype = self.parse_declarator(base)
                init = None
                if self.accept("="):
                    init = self.parse_initializer()
                globals_.append(GlobalDecl(
                    decl=Declarator(name, ctype, init, dline),
                    static=is_static, line=dline))
            self.expect(";")
        return Program(functions=tuple(functions), globals=tuple(globals_))

    _last_params: list[Param] | None = None


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _base_from_words(words: list[str], parser: Parser) -> CType:
    """Map a multiset of type keywords to a canonical type."""
    if not words:
        raise parser.error("expected a type")
    ws = sorted(words)
    table = {
        ("void",): VOID,
        ("_Bool",): BOOL,
        ("char",): CHAR,
        ("char", "signed"): SCHAR,
        ("char", "unsigned"): UCHAR,
        ("short",): SHORT, ("int", "short"): SHORT,
        ("short", "signed"): SHORT, ("int", "short", "signed"): SHORT,
        ("short", "unsigned"): USHORT, ("int", "short", "unsigned"): USHORT,
        ("int",): INT, ("signed",): INT, ("int", "signed"): INT,
        ("unsigned",): UINT, ("int", "unsigned"): UINT,
        ("long",): LONG, ("int", "long"): LONG,
        ("long", "signed"): LONG, ("int", "long", "signed"): LONG,
        ("long", "unsigned"): ULONG, ("int", "long", "unsigned"): ULONG,
        ("long", "long"): LLONG, ("int", "long", "long"): LLONG,
        ("long", "long", "signed"): LLONG,
        ("int", "long", "long", "signed"): LLONG,
        ("long", "long", "unsigned"): ULLONG,
        ("int", "long", "long", "unsigned"): ULLONG,
    }
    ctype = table.get(tuple(ws))
    if ctype is None:
        raise parser.error(f"unsupported type {' '.join(words)!r}")
    return ctype


def _literal_type(tok: Token, layout: TargetLayout) -> CType:
    """ISO C literal typing from value, base, and suffix (6.4.4.1)."""
    unsigned = "u" in tok.suffix
    longish = tok.suffix.count("l")
    if unsigned:
        candidates = {0: [UINT, ULONG, ULLONG], 1: [ULONG, ULLONG],
                      2: [ULLONG]}[longish]
    elif tok.base != 10:
        candidates = {0: [INT, UINT, LONG, ULONG, LLONG, ULLONG],
                      1: [LONG, ULONG, LLONG, ULLONG],
                      2: [LLONG, ULLONG]}[longish]
    else:
        candidates = {0: [INT, LONG, LLONG], 1: [LONG, LLONG],
                      2: [LLONG]}[longish]
    value = tok.value
    for cand in candidates:
        if layout.in_range(cand.kind, value):  # type: ignore[union-attr]
            return cand
    return candidates[-1]


def _limit_constants(layout: TargetLayout):
    """The ``limits.h``/``stdint.h`` macros, resolved for this target."""
    def lit(kind: IKind, value: int):
        ctype = Integer(kind)
        return lambda line: IntLit(value=value, ctype=ctype, line=line)

    def null(line: int):
        return Cast(ctype=Pointer(VOID), operand=IntLit(value=0, ctype=INT),
                    line=line)

    consts = {
        "NULL": null,
        "true": lit(IKind.INT, 1),
        "false": lit(IKind.INT, 0),
        "CHAR_BIT": lit(IKind.INT, 8),
        "SCHAR_MAX": lit(IKind.INT, 127),
        "SCHAR_MIN": lit(IKind.INT, -128),
        "UCHAR_MAX": lit(IKind.INT, 255),
        "CHAR_MAX": lit(IKind.INT, 127),
        "CHAR_MIN": lit(IKind.INT, -128),
        "SHRT_MAX": lit(IKind.INT, layout.int_max(IKind.SHORT)),
        "SHRT_MIN": lit(IKind.INT, layout.int_min(IKind.SHORT)),
        "USHRT_MAX": lit(IKind.INT, layout.int_max(IKind.USHORT)),
        "INT_MAX": lit(IKind.INT, layout.int_max(IKind.INT)),
        "INT_MIN": lit(IKind.INT, layout.int_min(IKind.INT)),
        "UINT_MAX": lit(IKind.UINT, layout.int_max(IKind.UINT)),
        "LONG_MAX": lit(IKind.LONG, layout.int_max(IKind.LONG)),
        "LONG_MIN": lit(IKind.LONG, layout.int_min(IKind.LONG)),
        "ULONG_MAX": lit(IKind.ULONG, layout.int_max(IKind.ULONG)),
        "LLONG_MAX": lit(IKind.LLONG, layout.int_max(IKind.LLONG)),
        "LLONG_MIN": lit(IKind.LLONG, layout.int_min(IKind.LLONG)),
        "ULLONG_MAX": lit(IKind.ULLONG, layout.int_max(IKind.ULLONG)),
        "SIZE_MAX": lit(IKind.SIZE, layout.int_max(IKind.SIZE)),
        "INTPTR_MAX": lit(IKind.INTPTR, layout.int_max(IKind.INTPTR)),
        "INTPTR_MIN": lit(IKind.INTPTR, layout.int_min(IKind.INTPTR)),
        "UINTPTR_MAX": lit(IKind.UINTPTR, layout.int_max(IKind.UINTPTR)),
        "PTRADDR_MAX": lit(IKind.PTRADDR, layout.int_max(IKind.PTRADDR)),
    }
    # cheriintrin.h permission constants, at this target's bit positions.
    for i, perm in enumerate(layout.arch.perm_order):
        consts[f"CHERI_PERM_{perm.name}"] = lit(IKind.SIZE, 1 << i)
    return consts


def _const_eval(expr: Expr, layout: TargetLayout) -> int | None:
    """Fold integer constant expressions (array sizes and friends)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, SizeofType):
        return layout.sizeof(expr.ctype)
    if isinstance(expr, AlignofType):
        return layout.alignof(expr.ctype)
    if isinstance(expr, Unary) and not expr.postfix:
        v = _const_eval(expr.operand, layout)
        if v is None:
            return None
        return {"-": -v, "+": v, "~": ~v, "!": int(not v)}.get(expr.op)
    if isinstance(expr, Binary):
        lv = _const_eval(expr.lhs, layout)
        rv = _const_eval(expr.rhs, layout)
        if lv is None or rv is None:
            return None
        try:
            return {
                "+": lv + rv, "-": lv - rv, "*": lv * rv,
                "/": lv // rv if rv else None,
                "%": lv % rv if rv else None,
                "<<": lv << rv, ">>": lv >> rv,
                "&": lv & rv, "|": lv | rv, "^": lv ^ rv,
                "==": int(lv == rv), "!=": int(lv != rv),
                "<": int(lv < rv), ">": int(lv > rv),
                "<=": int(lv <= rv), ">=": int(lv >= rv),
                "&&": int(bool(lv) and bool(rv)),
                "||": int(bool(lv) or bool(rv)),
            }.get(expr.op)
        except (ValueError, ZeroDivisionError):
            return None
    return None


def _complete_array(ctype: ArrayT, init: Expr) -> ArrayT:
    if isinstance(init, InitList):
        return replace(ctype, length=len(init.items))
    if isinstance(init, StrLit):
        return replace(ctype, length=len(init.value) + 1)
    return ctype


def parse_program(source: str, layout: TargetLayout) -> Program:
    """Parse a translation unit for the given target."""
    return Parser(tokenize(source), layout).parse_program()
