"""AST-level mutation of corpus seeds (the guided half of the fuzzer).

Blind generation draws every program from the same weighted grammar, so
campaigns keep re-discovering the shallow behaviours near the grammar's
centre of mass.  Guided campaigns instead *mutate* coverage-advancing
seeds: the statement IR (:class:`~repro.fuzz.generator.FuzzProgram`)
makes splice/insert/perturb well-typed by construction, exactly the way
the shrinker's deletions are.

Beyond structural mutations (splice with a donor seed, duplicate, swap,
drop, prologue resize, integer-slot perturbation), the mutator extends
the grammar toward the shapes the CRuby-on-CHERI porting study
(PAPERS.md, Liu et al.) reports as what actually bites real ports --
pointer tagging in low bits, pointer packing, and int<->pointer round
trips through unions.  These templates live *here* rather than in the
blind generator so the coverage axis in ``bench_engine.py`` measures
guidance against an honest baseline: guided campaigns reach them, blind
ones cannot.

Every choice is drawn from one :class:`random.Random` owned by the
caller, so a campaign's candidate stream is a pure function of
``(seed, index, corpus snapshot)`` -- the property shard determinism
rests on.
"""

from __future__ import annotations

import random

from repro.fuzz.generator import FuzzProgram, FuzzStmt, MASKS, \
    ProgramGenerator

#: Hard cap on mutated statement count: splicing may grow programs (the
#: point -- deeper runs reach higher Core op ids), but unboundedly long
#: candidates would dominate campaign time.
MAX_STMTS = 24

#: The CRuby-porting shapes, as ready-made statements over the fixed
#: prologue (``w`` is the ``union upack`` local, ``u`` the uintptr_t
#: mirror).  Slots keep them shrinkable/perturbable like any other
#: statement.
_TEMPLATES = (
    # int<->pointer round trip through a union: pointer out as bits...
    FuzzStmt("union-pack", "w.q = p; u = w.bits;"),
    # ...and bits back in as a pointer (tag survival is the question).
    FuzzStmt("union-unpack",
             "w.bits = u; p = w.q; acc += (int)cheri_tag_get(p);"),
    # Low-bit pointer tagging (Ruby's fixnum/flag discipline).
    FuzzStmt("ptr-tag-set", "u = (uintptr_t)p; u = u | {0}; p = (int *)u;",
             (1,)),
    FuzzStmt("ptr-tag-strip",
             "u = u & ~(uintptr_t){0}; p = (int *)u;", (1,)),
    # Pointer packing: arithmetic on the in-union representation.
    FuzzStmt("union-bits-arith",
             "w.q = p; w.bits = w.bits + {0}; p = w.q;", (4,)),
    # Byte-level view of the packed representation.
    FuzzStmt("union-byte", "w.q = p; acc += (int)w.bytes[{0}];", (1,)),
    # Heap-reuse probes (the allocator-policy axis): free then same-size
    # malloc -- a reusing allocator returns the old address, observable
    # through uintptr_t equality without a dangling dereference...
    FuzzStmt("reuse-probe",
             "{{ int *r = (int *)malloc({0}); uintptr_t r1 = (uintptr_t)r; "
             "free(r); int *r2 = (int *)malloc({0}); "
             "acc += (int)(r1 == (uintptr_t)r2); free(r2); }}", (8,)),
    # ...and the dangling-read shape (UB on the abstract machine; on
    # hardware, untagged-vs-aliased is exactly the policy divergence).
    FuzzStmt("dangling-read",
             "if (!freed) {{ free(h); freed = 1; }} acc += h[{0}] & 7;",
             (0,)),
)


def _pick_donor(rng: random.Random, program: FuzzProgram,
                pool) -> FuzzProgram:
    if pool:
        return pool[rng.randrange(len(pool))]
    return program


def _splice(rng: random.Random, program: FuzzProgram,
            pool) -> FuzzProgram:
    """Prefix of this program + suffix of a donor (AFL's splice)."""
    donor = _pick_donor(rng, program, pool)
    cut_a = rng.randint(0, len(program.stmts))
    cut_b = rng.randint(0, len(donor.stmts))
    stmts = (program.stmts[:cut_a] + donor.stmts[cut_b:])[:MAX_STMTS]
    return FuzzProgram(arr_len=program.arr_len,
                       heap_len=program.heap_len, stmts=stmts)


def _perturb_slot(rng: random.Random, program: FuzzProgram,
                  pool) -> FuzzProgram:
    """Nudge one integer literal (the literal/arith/cast perturbation)."""
    slotted = [i for i, s in enumerate(program.stmts) if s.slots]
    if not slotted:
        return program
    index = rng.choice(slotted)
    stmt = program.stmts[index]
    slot = rng.randrange(len(stmt.slots))
    value = stmt.slots[slot]
    choice = rng.randrange(6)
    if choice == 0:
        value = value + rng.choice([-4, -1, 1, 4])
    elif choice == 1:
        value = -value
    elif choice == 2:
        value = value * 2
    elif choice == 3:
        value = rng.choice([0, 1, program.arr_len, program.arr_len + 1])
    elif choice == 4:
        value = rng.choice(MASKS)
    else:
        value = rng.choice([1, 2, 3, 7, 8, 15])
    return program.with_stmt(index, stmt.with_slot(slot, value))


def _insert_template(rng: random.Random, program: FuzzProgram,
                     pool) -> FuzzProgram:
    """Insert one CRuby-shape template statement."""
    stmt = rng.choice(_TEMPLATES)
    at = rng.randint(0, len(program.stmts))
    stmts = (program.stmts[:at] + (stmt,) + program.stmts[at:])[:MAX_STMTS]
    return FuzzProgram(arr_len=program.arr_len,
                       heap_len=program.heap_len, stmts=stmts)


def _insert_fresh(rng: random.Random, program: FuzzProgram,
                  pool) -> FuzzProgram:
    """Insert one freshly generated grammar statement."""
    gen = ProgramGenerator(rng)
    catalogue = gen._catalogue()
    builders = [b for weight, b in catalogue for _ in range(weight)]
    stmt = rng.choice(builders)(program.arr_len, program.heap_len)
    at = rng.randint(0, len(program.stmts))
    stmts = (program.stmts[:at] + (stmt,) + program.stmts[at:])[:MAX_STMTS]
    return FuzzProgram(arr_len=program.arr_len,
                       heap_len=program.heap_len, stmts=stmts)


def _duplicate(rng: random.Random, program: FuzzProgram,
               pool) -> FuzzProgram:
    if not program.stmts or len(program.stmts) >= MAX_STMTS:
        return program
    index = rng.randrange(len(program.stmts))
    stmts = (program.stmts[:index + 1] + program.stmts[index:])
    return FuzzProgram(arr_len=program.arr_len,
                       heap_len=program.heap_len, stmts=stmts[:MAX_STMTS])


def _swap(rng: random.Random, program: FuzzProgram, pool) -> FuzzProgram:
    if len(program.stmts) < 2:
        return program
    i = rng.randrange(len(program.stmts))
    j = rng.randrange(len(program.stmts))
    stmts = list(program.stmts)
    stmts[i], stmts[j] = stmts[j], stmts[i]
    return FuzzProgram(arr_len=program.arr_len,
                       heap_len=program.heap_len, stmts=tuple(stmts))


def _drop(rng: random.Random, program: FuzzProgram, pool) -> FuzzProgram:
    if len(program.stmts) <= 1:
        return program
    index = rng.randrange(len(program.stmts))
    return program.without_stmt(index)


def _resize(rng: random.Random, program: FuzzProgram,
            pool) -> FuzzProgram:
    """Nudge a prologue length (bounds edges move under every index)."""
    if rng.random() < 0.5:
        arr = min(16, max(2, program.arr_len + rng.choice([-1, 1])))
        return FuzzProgram(arr_len=arr, heap_len=program.heap_len,
                           stmts=program.stmts)
    heap = min(16, max(2, program.heap_len + rng.choice([-1, 1])))
    return FuzzProgram(arr_len=program.arr_len, heap_len=heap,
                       stmts=program.stmts)


#: (weight, mutator) -- splice and the CRuby templates carry the most
#: weight: growth and grammar extension are where guidance pays.
_MUTATORS = (
    (6, _splice),
    (5, _perturb_slot),
    (5, _insert_template),
    (4, _insert_fresh),
    (2, _duplicate),
    (2, _swap),
    (2, _drop),
    (2, _resize),
)


def mutate(program: FuzzProgram, rng: random.Random,
           pool=()) -> FuzzProgram:
    """Derive one candidate from a seed program.

    Applies 1-3 weighted mutations; ``pool`` is the corpus snapshot's
    program list (splice donors).  Pure in ``rng``: the same seed state
    and arguments produce the same candidate on every platform.
    """
    weighted = [m for weight, m in _MUTATORS for _ in range(weight)]
    for _ in range(rng.randint(1, 3)):
        program = rng.choice(weighted)(rng, program, pool)
    if not program.stmts:
        return _insert_fresh(rng, program, pool)
    return program
