"""The coverage signal: what one program made the semantics *do*.

AFL-style guided fuzzing needs a cheap, deterministic fingerprint of a
run that grows when a candidate exercises new behaviour.  This module
extracts one from the obs event trace of a single reference run:

* the set of **Core op ids** reached (``function:index``, the stable
  attribution PR 5's elaborator stamps on every op and the Core
  evaluator threads through ``Event.core_op``) -- positional coverage,
  the closest analogue of AFL's edge map;
* the set of **UB kinds** the checker flagged (from ``check.ub`` events
  and the outcome record) -- semantic coverage of the UB catalogue;
* the set of **event-kind signatures** (the kind, refined by its
  salient payload: the UB entry, trap, ghost transition, cutoff reason,
  or intrinsic name) -- behavioural coverage across the 32-kind
  taxonomy.

The signal is computed from **one traced run of the global reference
with the Core evaluator pinned**, regardless of which evaluator the
campaign itself runs.  The AST walker emits the same events but cannot
attribute them to Core ops (``core_op`` is ``None`` there), so pinning
the evaluator is what makes coverage a pure function of the program:
two step-identical campaigns -- serial or pooled, ``--evaluator ast``
or ``compiled`` -- observe identical coverage sets.  The same traced
run also yields the explainer's signature (the campaign's dedup key)
and the reference outcome, so guidance costs exactly one extra
reference execution per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import EventBus, TraceRecorder, explaining_signature
from repro.obs.events import Event
from repro.robust.budget import DEFAULT_FUZZ_BUDGET

#: Payload keys that refine an event kind into a semantic signature, in
#: the order the explainer itself considers them salient.
_SALIENT_KEYS = ("ub", "trap", "ghost", "reason", "limit")

#: Kinds whose ``name`` payload is a bounded vocabulary worth covering
#: (intrinsics come from a fixed catalogue; variable names do not).
_NAMED_KINDS = frozenset({"intrinsic.call"})


@dataclass(frozen=True)
class Coverage:
    """The coverage fingerprint of one run (three frozensets).

    ``ops`` are ``function:index`` Core op ids, ``ub`` are UB catalogue
    entries, ``events`` are refined event-kind signatures.  Frozen and
    hashable so coverage values can live in corpus entries, travel
    through the worker pool, and be unioned without copies.
    """

    ops: frozenset = frozenset()
    ub: frozenset = frozenset()
    events: frozenset = frozenset()

    def keys(self) -> frozenset:
        """The flat, namespaced key set used for corpus-worthiness
        judgements and merge arithmetic (``op:``/``ub:``/``ev:``)."""
        return frozenset(
            [f"op:{o}" for o in self.ops]
            + [f"ub:{u}" for u in self.ub]
            + [f"ev:{e}" for e in self.events])

    def union(self, other: "Coverage") -> "Coverage":
        return Coverage(ops=self.ops | other.ops,
                        ub=self.ub | other.ub,
                        events=self.events | other.events)

    def to_dict(self) -> dict:
        """JSON form with deterministic (sorted) ordering."""
        return {"ops": sorted(self.ops),
                "ub": sorted(self.ub),
                "events": sorted(self.events)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Coverage":
        return cls(ops=frozenset(payload.get("ops", ())),
                   ub=frozenset(payload.get("ub", ())),
                   events=frozenset(payload.get("events", ())))


def _event_signature(event: dict) -> str:
    kind = event.get("kind", "")
    for key in _SALIENT_KEYS:
        value = event.get(key)
        if value:
            return f"{kind}:{value}"
    if kind in _NAMED_KINDS and event.get("name"):
        return f"{kind}:{event['name']}"
    return kind


def coverage_from_events(events, outcome=None) -> Coverage:
    """Distill a :class:`Coverage` from an event trace.

    ``events`` may be live :class:`Event` objects or JSONL dicts.  The
    optional ``outcome`` contributes its UB kind for UB raised outside
    the memory model (signed overflow in the interpreter reaches the
    trace only through the outcome record).
    """
    ops, ub, kinds = set(), set(), set()
    for event in events:
        if isinstance(event, Event):
            event = event.to_dict()
        core_op = event.get("core_op")
        if core_op:
            ops.add(core_op)
        value = event.get("ub")
        if value:
            ub.add(value)
        kinds.add(_event_signature(event))
    if outcome is not None and getattr(outcome, "ub", None):
        ub.add(outcome.ub.value)
    return Coverage(ops=frozenset(ops), ub=frozenset(ub),
                    events=frozenset(kinds))


@dataclass(frozen=True)
class CoverageProbe:
    """Everything one traced reference run yields for the campaign:
    the coverage fingerprint, the explainer's signature (the distinct
    -bug dedup key), and the reference outcome (``None`` on a crash)."""

    coverage: Coverage
    signature: tuple | None
    outcome: object


def coverage_of(program, impl=None,
                budget=DEFAULT_FUZZ_BUDGET) -> CoverageProbe:
    """Run ``program`` once on the (global) reference with tracing and
    the Core evaluator pinned, and distill the coverage probe.

    The evaluator pin is the determinism contract (see module
    docstring): callers must *not* thread the campaign's ``--evaluator``
    choice through here.  A crashing reference still yields the
    coverage of every event up to the crash.
    """
    from repro.fuzz.generator import FuzzProgram
    from repro.impls.registry import CERBERUS

    source = program.render() if isinstance(program, FuzzProgram) \
        else program
    if impl is None:
        impl = CERBERUS
    bus = EventBus()
    recorder = TraceRecorder()
    recorder.attach(bus)
    try:
        outcome = impl.run(source, bus=bus, budget=budget,
                           evaluator="core")
    except Exception:                        # noqa: BLE001 - fuzz boundary
        outcome = None
    events = recorder.events()
    return CoverageProbe(
        coverage=coverage_from_events(events, outcome),
        signature=explaining_signature(events),
        outcome=outcome)
