"""AST-level minimisation of divergent or crashing fuzz programs.

Classic greedy delta debugging over the fuzz statement IR: repeatedly
try to (1) delete whole statements, (2) move integer slots toward zero,
and (3) shrink the prologue array/heap lengths, keeping a candidate only
when the caller's predicate still holds (the failure signature is
preserved).  Runs to a fixpoint or until the evaluation budget is spent.
All candidate orders are deterministic, so a given (program, predicate)
pair always shrinks to the same result.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.fuzz.generator import FuzzProgram

Predicate = Callable[[FuzzProgram], bool]

#: Default cap on predicate evaluations per shrink (each evaluation is a
#: handful of interpreter runs, so this bounds shrink latency).
DEFAULT_MAX_EVALS = 300


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _slot_candidates(value: int) -> list[int]:
    """Simpler replacement values to try, most aggressive first."""
    candidates = []
    for cand in (0, 1, value // 2, value - 1):
        if cand != value and cand not in candidates:
            candidates.append(cand)
    return candidates


def _drop_statements(program: FuzzProgram, predicate: Predicate,
                     budget: _Budget) -> tuple[FuzzProgram, bool]:
    changed = False
    index = 0
    while index < len(program.stmts):
        if not budget.take():
            return program, changed
        candidate = program.without_stmt(index)
        if predicate(candidate):
            program = candidate
            changed = True
        else:
            index += 1
    return program, changed


def _simplify_slots(program: FuzzProgram, predicate: Predicate,
                    budget: _Budget) -> tuple[FuzzProgram, bool]:
    changed = False
    for index, stmt in enumerate(program.stmts):
        for slot_index, value in enumerate(stmt.slots):
            for cand in _slot_candidates(value):
                if not budget.take():
                    return program, changed
                new_stmt = program.stmts[index].with_slot(slot_index, cand)
                candidate = program.with_stmt(index, new_stmt)
                if predicate(candidate):
                    program = candidate
                    changed = True
                    break
    return program, changed


def _shrink_lengths(program: FuzzProgram, predicate: Predicate,
                    budget: _Budget) -> tuple[FuzzProgram, bool]:
    changed = False
    for attr in ("arr_len", "heap_len"):
        while getattr(program, attr) > 2:
            if not budget.take():
                return program, changed
            candidate = replace(program,
                                **{attr: getattr(program, attr) - 1})
            if not predicate(candidate):
                break
            program = candidate
            changed = True
    return program, changed


def shrink(program: FuzzProgram, predicate: Predicate,
           max_evals: int = DEFAULT_MAX_EVALS) -> FuzzProgram:
    """Minimise ``program`` while ``predicate`` keeps holding.

    The input program must satisfy the predicate; the result always
    does.  ``max_evals`` bounds the number of predicate evaluations.
    """
    if not predicate(program):
        raise ValueError("shrink: the input program must satisfy the "
                         "predicate")
    budget = _Budget(max_evals)
    while True:
        program, dropped = _drop_statements(program, predicate, budget)
        program, simplified = _simplify_slots(program, predicate, budget)
        program, shrunk = _shrink_lengths(program, predicate, budget)
        if not (dropped or simplified or shrunk):
            return program
