"""The fuzzing loop: generate, classify, aggregate, shrink, record.

``run_fuzz`` is the engine behind ``repro fuzz --seed N --iterations K
--time-budget S``.  Divergences are aggregated into groups keyed by
(implementation, cause, outcome-kind pair); the first program seen for
each group is kept as its representative and minimized by the shrinker
once the generation loop finishes, so **every reported divergence
carries a minimized program and a cause tag**.  Findings (unexplained
divergences, interpreter crashes, frontend rejections) additionally
flip the report's ``ok`` bit and are written to the regression corpus
when a corpus directory is given.
"""

from __future__ import annotations

import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import OutcomeKind
from repro.fuzz.corpus import CorpusCase, save_case
from repro.fuzz.generator import FuzzProgram, ProgramGenerator
from repro.fuzz.oracle import (
    Cause,
    Divergence,
    FUZZ_TARGETS,
    FuzzTarget,
    evaluate_program,
)
from repro.core.coreeval import set_default_evaluator
from repro.fuzz.shrinker import shrink
from repro.perf.cache import set_cache_enabled
from repro.perf.pool import TaskFailure, parallel_map
from repro.robust.budget import DEFAULT_FUZZ_BUDGET

#: Default iteration count when neither --iterations nor --time-budget
#: is given.
DEFAULT_ITERATIONS = 100


def iteration_seed(seed: int, index: int) -> str:
    """The stable seed for iteration ``index`` of campaign ``seed``.

    A string, not ``hash((seed, index))``: :class:`random.Random` seeds
    strings through SHA-512, so the derivation is independent of
    ``PYTHONHASHSEED`` and identical on every platform.  Deriving per
    iteration (instead of drawing from one sequential stream) makes
    iteration ``i`` reproducible in isolation -- reordering, skipping,
    or fanning iterations across workers cannot change what any
    iteration generates.
    """
    return f"{seed}:{index}"


def program_for(seed: int, index: int,
                heap_reuse: bool = False) -> FuzzProgram:
    """Generate the program of iteration ``index`` in isolation."""
    rng = random.Random(iteration_seed(seed, index))
    return ProgramGenerator(rng, heap_reuse=heap_reuse).generate()


def _evaluate_iteration(task):
    """Worker body: generate and classify one iteration's program.

    Top-level and argument-picklable so the worker pool can ship it;
    the serial path runs the identical function in-process.
    """
    seed, index, targets, use_cache, budget, evaluator, heap_reuse = task
    if targets is None:
        # The default target set is module state in every worker;
        # shipping None instead keeps the per-task pickle payload from
        # carrying the whole implementation registry.
        targets = FUZZ_TARGETS
    if use_cache is not None:
        # Worker processes apply the campaign's cache switch locally
        # (the parent's global switch does not travel under spawn).
        set_cache_enabled(use_cache)
    if evaluator is not None:
        # Same per-worker application as the cache switch: the oracle
        # runs every target through Implementation.run internally, so
        # the campaign's evaluator choice is installed as the worker's
        # process default for the duration of the task.
        set_default_evaluator(evaluator)
    program = program_for(seed, index, heap_reuse)
    return program, evaluate_program(program, targets, budget=budget)


def _kind_token(described: str) -> str:
    """The outcome-kind part of an ``Outcome.describe()`` string."""
    return described.split()[0].rstrip(":") if described else ""


def _group_key(div: Divergence) -> tuple[str, str, str, str]:
    return (div.impl_name, div.cause.value,
            _kind_token(div.reference), _kind_token(div.observed))


@dataclass
class DivergenceGroup:
    """All divergences sharing (implementation, cause, kind pair)."""

    impl_name: str
    cause: Cause
    reference_kind: str
    observed_kind: str
    count: int = 0
    first_iteration: int = 0
    example: FuzzProgram | None = None
    example_divergence: Divergence | None = None
    minimized_source: str | None = None
    minimized_outcomes: dict = field(default_factory=dict)

    @property
    def is_finding(self) -> bool:
        return self.cause.is_finding

    def describe(self) -> str:
        return (f"{self.impl_name:32s} {self.cause.value:20s} "
                f"{self.reference_kind:>5s} -> {self.observed_kind:<6s} "
                f"x{self.count}")


@dataclass
class FuzzReport:
    """The result of one fuzzing run."""

    seed: int
    iterations: int = 0
    elapsed: float = 0.0
    reference_counts: dict[str, int] = field(default_factory=dict)
    groups: list[DivergenceGroup] = field(default_factory=list)
    corpus_paths: list[pathlib.Path] = field(default_factory=list)
    trace_paths: list[pathlib.Path] = field(default_factory=list)
    #: Iteration indices whose pool worker died twice (retry exhausted);
    #: their programs were never classified (see docs/ROBUSTNESS.md).
    quarantined: list[int] = field(default_factory=list)

    @property
    def findings(self) -> list[DivergenceGroup]:
        return [g for g in self.groups if g.is_finding]

    @property
    def divergence_total(self) -> int:
        return sum(g.count for g in self.groups)

    @property
    def ok(self) -> bool:
        """True when every divergence has a known cause and nothing
        crashed -- the acceptance bar for a clean fuzz run."""
        return not self.findings

    def sorted_groups(self) -> list[DivergenceGroup]:
        return sorted(self.groups,
                      key=lambda g: (not g.is_finding, -g.count,
                                     g.impl_name, g.cause.value))


def _reference_label(verdict) -> str:
    outcome = verdict.reference
    if outcome is None:
        return "crash"
    if outcome.kind is OutcomeKind.EXIT:
        return "exit"
    return outcome.describe()


def _preserves_group(group: DivergenceGroup,
                     targets: tuple[FuzzTarget, ...],
                     signature: tuple | None = None,
                     budget=None):
    """Predicate: does a candidate still exhibit this group's failure?

    With ``signature`` set, the candidate must additionally preserve
    the reference trace's explaining signature -- the "same explaining
    event" shrink mode: minimisation may not swap the semantic cause
    (e.g. trade a bounds violation for a tag violation) even when the
    observable outcome pair stays the same.
    """
    subset = tuple(t for t in targets if t.impl.name == group.impl_name)

    def predicate(candidate: FuzzProgram) -> bool:
        verdict = evaluate_program(candidate, subset,
                                   attach_evidence=False, budget=budget)
        if not any(_group_key(d) == (group.impl_name, group.cause.value,
                                     group.reference_kind,
                                     group.observed_kind)
                   for d in verdict.divergences):
            return False
        if signature is not None:
            from repro.fuzz.evidence import reference_signature
            return reference_signature(candidate) == signature
        return True

    return predicate


def run_fuzz(seed: int = 0,
             iterations: int | None = None,
             time_budget: float | None = None,
             targets: tuple[FuzzTarget, ...] = FUZZ_TARGETS,
             shrink_budget: int = 200,
             corpus_dir: pathlib.Path | str | None = None,
             save_known: bool = False,
             trace_dir: pathlib.Path | str | None = None,
             preserve_explanation: bool = False,
             progress: Callable[[int, "FuzzReport"], None] | None = None,
             jobs: int = 1,
             use_cache: bool | None = None,
             budget=DEFAULT_FUZZ_BUDGET,
             fault_plan=None,
             task_timeout: float | None = None,
             bus=None,
             evaluator: str | None = None,
             heap_reuse: bool = False,
             ) -> FuzzReport:
    """Run the differential fuzzing loop.

    Stops after ``iterations`` programs or ``time_budget`` seconds,
    whichever comes first (defaults to :data:`DEFAULT_ITERATIONS` when
    neither is given).  Every divergence group's representative program
    is minimized before the report is returned.

    Each iteration draws from its own derived seed
    (:func:`iteration_seed`), so ``jobs > 1`` fans candidate evaluation
    across worker processes with results merged in iteration order --
    a parallel run with a fixed ``iterations`` count is bit-identical
    to the serial one.  A fixed-count campaign is fanned out in **one**
    pool pass (the pool batches many iterations per task to amortise
    IPC); under a ``time_budget`` the loop instead evaluates in chunks
    of ``4 * jobs`` and may overshoot the budget by up to one chunk
    (and the iteration count then depends on timing, exactly as it
    does serially).

    Every run is governed by ``budget`` (default
    :data:`~repro.robust.DEFAULT_FUZZ_BUDGET`, whose axes are all
    deterministic): a nonterminating or allocation-bombing candidate
    classifies as ``resource_exhausted`` instead of hanging the
    campaign.  Pass ``budget=None`` for ungoverned runs.  Iterations
    whose pool worker dies twice are recorded in
    ``report.quarantined`` (and counted under the ``quarantined``
    reference label) rather than aborting the campaign;
    ``fault_plan``/``task_timeout``/``bus`` feed the hardened pool
    (test-only / backstop / observability).

    ``trace_dir`` persists a full reference JSONL trace of every
    finding group's minimized reproducer.  ``preserve_explanation``
    makes shrinking of findings additionally preserve the reference
    trace's explaining signature (see :func:`_preserves_group`).

    ``evaluator`` (``ast``/``core``/``None`` = process default) selects
    the execution strategy for the whole campaign: it travels inside
    each task for the workers and is installed as the parent's default
    for the shrinking/trace phases, so classification, minimisation,
    and evidence capture all run under the same strategy.

    ``heap_reuse`` switches on the generator's free-then-malloc and
    dangling-read statement shapes (``repro fuzz --allocator ...``);
    off by default so the stock program stream is unchanged.
    """
    if iterations is None and time_budget is None:
        iterations = DEFAULT_ITERATIONS
    if evaluator is not None:
        set_default_evaluator(evaluator)
    report = FuzzReport(seed=seed)
    groups: dict[tuple, DivergenceGroup] = {}
    started = time.monotonic()

    index = 0

    def consume(item) -> None:
        nonlocal index
        if isinstance(item, TaskFailure):
            report.quarantined.append(index)
            report.reference_counts["quarantined"] = \
                report.reference_counts.get("quarantined", 0) + 1
            index += 1
            if progress is not None:
                progress(index, report)
            return
        program, verdict = item
        label = _reference_label(verdict)
        report.reference_counts[label] = \
            report.reference_counts.get(label, 0) + 1
        for div in verdict.divergences:
            key = _group_key(div)
            group = groups.get(key)
            if group is None:
                group = DivergenceGroup(
                    impl_name=div.impl_name, cause=div.cause,
                    reference_kind=key[2], observed_kind=key[3],
                    first_iteration=index, example=program,
                    example_divergence=div)
                groups[key] = group
            group.count += 1
        index += 1
        if progress is not None:
            progress(index, report)

    task_targets = None if targets is FUZZ_TARGETS else targets

    if iterations is not None and time_budget is None:
        # Fixed-count campaign: one pool pass over every iteration.
        # The pool's chunk grouping batches many iterations per task,
        # amortising submit/result IPC and executor startup -- chunked
        # per-round pools here used to cost more than they bought.
        tasks = [(seed, i, task_targets, use_cache, budget, evaluator,
                  heap_reuse)
                 for i in range(iterations)]
        for item in parallel_map(_evaluate_iteration, tasks, jobs=jobs,
                                 task_timeout=task_timeout,
                                 fault_plan=fault_plan, bus=bus):
            consume(item)
    else:
        while True:
            if iterations is not None and index >= iterations:
                break
            if time_budget is not None and \
                    time.monotonic() - started >= time_budget:
                break
            chunk = 1 if jobs <= 1 else 4 * jobs
            if iterations is not None:
                chunk = min(chunk, iterations - index)
            tasks = [(seed, index + k, task_targets, use_cache, budget,
                      evaluator, heap_reuse)
                     for k in range(chunk)]
            for item in parallel_map(_evaluate_iteration, tasks,
                                     jobs=jobs,
                                     task_timeout=task_timeout,
                                     fault_plan=fault_plan, bus=bus):
                consume(item)

    report.iterations = index
    report.groups = list(groups.values())

    # Minimize every group's representative (cause-tagged evidence).
    for group in report.groups:
        if group.example is None:
            continue
        signature = None
        if preserve_explanation and group.is_finding:
            from repro.fuzz.evidence import reference_signature
            signature = reference_signature(group.example)
        predicate = _preserves_group(group, targets, signature, budget)
        try:
            minimized = shrink(group.example, predicate,
                               max_evals=shrink_budget)
        except ValueError:
            # The representative stopped reproducing under the
            # single-target subset (e.g. a crash consumed the example);
            # fall back to the unminimized program.
            minimized = group.example
        group.minimized_source = minimized.render()
        group.minimized_outcomes = dict(
            evaluate_program(minimized, targets, attach_evidence=False,
                             budget=budget).outcomes)

    if trace_dir is not None:
        import json as _json

        from repro.fuzz.corpus import atomic_write_text
        from repro.fuzz.evidence import capture_trace
        directory = pathlib.Path(trace_dir)
        for group in report.findings:
            if group.minimized_source is None:
                continue
            _outcome, recorder = capture_trace(group.minimized_source)
            stem = f"{group.impl_name}-{group.cause.value}".replace(
                ":", "_").replace("/", "_")
            path = directory / f"{stem}.jsonl"
            # Same publication discipline as the corpus stores: a
            # killed run leaves whole artefacts or none, never torn.
            atomic_write_text(path, "".join(
                _json.dumps(event) + "\n" for event in recorder.dicts()))
            atomic_write_text(directory / f"{stem}.c",
                              group.minimized_source)
            report.trace_paths.append(path)

    if corpus_dir is not None:
        from repro.fuzz.evidence import reference_signature
        for group in report.sorted_groups():
            if not (group.is_finding or save_known):
                continue
            if group.minimized_source is None:
                continue
            explaining = reference_signature(group.minimized_source)
            case = CorpusCase.from_outcomes(
                cause=group.cause.value, source=group.minimized_source,
                outcomes=group.minimized_outcomes, seed=seed,
                note=(f"{group.impl_name}: {group.reference_kind} -> "
                      f"{group.observed_kind}, seen x{group.count} "
                      f"(seed {seed})"),
                explaining=explaining)
            report.corpus_paths.append(save_case(corpus_dir, case))

    report.elapsed = time.monotonic() - started
    return report
