"""Trace evidence for fuzz findings.

When the oracle flags a finding (an unexplained divergence or a crash),
a plain outcome pair -- "reference exited 0, target trapped" -- says
*that* the implementations disagree but not *why*.  This module re-runs
the global reference with the event-trace subsystem attached and
extracts the reference trace's explaining event (the last UB verdict,
ghost excursion, or notable capability transition), which the driver
attaches to the finding and ``repro fuzz --trace-dir`` persists as a
full JSONL trace.

It also provides the shrinker's "same explaining event" predicate
ingredient: :func:`reference_signature` fingerprints *why* the reference
behaved as it did, so minimisation can be required to preserve the
semantic explanation, not just the observable outcome pair.
"""

from __future__ import annotations

from repro.errors import Outcome
from repro.fuzz.generator import FuzzProgram
from repro.impls.config import Implementation
from repro.impls.registry import CERBERUS
from repro.obs import (
    EventBus,
    TraceRecorder,
    explaining_signature,
    final_event,
)


def capture_trace(source: str,
                  impl: Implementation = CERBERUS,
                  ) -> tuple[Outcome | None, TraceRecorder]:
    """Run ``impl`` on ``source`` with tracing attached.

    Returns ``(outcome, recorder)``; the outcome is ``None`` when the
    run crashed (the recorder still holds every event up to the crash).
    """
    bus = EventBus()
    recorder = TraceRecorder()
    recorder.attach(bus)
    try:
        outcome = impl.run(source, bus=bus)
    except Exception:                        # noqa: BLE001 - fuzz boundary
        outcome = None
    return outcome, recorder


def _render(program: FuzzProgram | str) -> str:
    return program.render() if isinstance(program, FuzzProgram) else program


def reference_evidence(program: FuzzProgram | str) -> dict | None:
    """The reference trace's explaining event for one program (a JSONL
    dict, or ``None`` when the trace is empty)."""
    _outcome, recorder = capture_trace(_render(program))
    return final_event(recorder.events())


def reference_signature(program: FuzzProgram | str) -> tuple | None:
    """The reference trace's explaining signature: a comparable
    fingerprint of why the reference behaved as it did."""
    _outcome, recorder = capture_trace(_render(program))
    return explaining_signature(recorder.events())
