"""Differential fuzzing of the CHERI C implementations (S7's oracle loop).

The paper's S7 observes that an *executable* semantics can serve as a
test oracle for randomly generated programs, removing the need to curate
intended results by hand.  This package industrialises that loop for the
whole implementation registry:

* :mod:`repro.fuzz.generator` -- a seeded, reproducible generator of
  well-typed programs in the supported C subset, weighted toward the
  provenance- and representability-sensitive shapes of S5/Table 1;
* :mod:`repro.fuzz.oracle` -- the differential oracle: every generated
  program runs on every registered implementation plus the strict and
  permissive memory-model modes, and each divergence from the reference
  outcome is either explained by a *known cause* (address-map-dependent
  masking, capability format, bounds-setting mode, UB licence, memory
  -model mode) or flagged as a finding;
* :mod:`repro.fuzz.shrinker` -- AST-level minimisation of any divergent
  or crashing program while preserving the failure signature;
* :mod:`repro.fuzz.evidence` -- trace evidence for findings: the
  reference's explaining event (attached to every finding) and the
  "same explaining event" shrink predicate ingredient;
* :mod:`repro.fuzz.corpus` -- the ``tests/corpus/`` regression corpus
  (minimized cases with recorded per-implementation outcomes, replayed
  by pytest) and the campaign corpus stores (coverage-advancing seeds,
  distinct-bug finding records, merge and minimise);
* :mod:`repro.fuzz.driver` -- the blind iteration loop behind
  ``repro fuzz --seed N --iterations K --time-budget S``;
* :mod:`repro.fuzz.coverage` -- the coverage signal (Core op ids, UB
  kinds, event signatures) distilled from one traced reference run;
* :mod:`repro.fuzz.mutate` -- AST-level mutation of corpus seeds
  (splice, perturbation, and the CRuby-porting pointer-tagging /
  union-round-trip templates);
* :mod:`repro.fuzz.campaign` -- the coverage-guided campaign engine
  behind ``repro fuzz --guided --corpus-dir DIR --shard i/n --resume``:
  resumable, deterministically shardable, distinct-bug deduplicated.
"""

from repro.fuzz.campaign import (
    CampaignError,
    CampaignReport,
    derive_candidate,
    parse_shard,
    run_campaign,
    take_snapshot,
)
from repro.fuzz.corpus import (
    CorpusCase,
    FindingRecord,
    SeedEntry,
    atomic_write_text,
    load_case,
    load_corpus,
    load_findings,
    load_seed_corpus,
    merge_corpus_dirs,
    minimise_corpus,
    save_case,
    save_seed,
)
from repro.fuzz.coverage import Coverage, coverage_from_events, coverage_of
from repro.fuzz.driver import (
    FuzzReport,
    iteration_seed,
    program_for,
    run_fuzz,
)
from repro.fuzz.mutate import mutate
from repro.fuzz.evidence import (
    capture_trace,
    reference_evidence,
    reference_signature,
)
from repro.fuzz.generator import FuzzProgram, FuzzStmt, ProgramGenerator
from repro.fuzz.oracle import (
    Cause,
    Divergence,
    FUZZ_TARGETS,
    ProgramVerdict,
    evaluate_program,
    outcome_signature,
)
from repro.fuzz.shrinker import shrink

__all__ = [
    "CampaignError",
    "CampaignReport",
    "Cause",
    "CorpusCase",
    "Coverage",
    "Divergence",
    "FUZZ_TARGETS",
    "FindingRecord",
    "FuzzProgram",
    "FuzzReport",
    "FuzzStmt",
    "ProgramGenerator",
    "ProgramVerdict",
    "SeedEntry",
    "atomic_write_text",
    "capture_trace",
    "coverage_from_events",
    "coverage_of",
    "derive_candidate",
    "evaluate_program",
    "iteration_seed",
    "load_case",
    "load_corpus",
    "load_findings",
    "load_seed_corpus",
    "merge_corpus_dirs",
    "minimise_corpus",
    "mutate",
    "outcome_signature",
    "parse_shard",
    "program_for",
    "reference_evidence",
    "reference_signature",
    "run_campaign",
    "run_fuzz",
    "save_case",
    "save_seed",
    "shrink",
    "take_snapshot",
]
