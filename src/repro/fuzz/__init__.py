"""Differential fuzzing of the CHERI C implementations (S7's oracle loop).

The paper's S7 observes that an *executable* semantics can serve as a
test oracle for randomly generated programs, removing the need to curate
intended results by hand.  This package industrialises that loop for the
whole implementation registry:

* :mod:`repro.fuzz.generator` -- a seeded, reproducible generator of
  well-typed programs in the supported C subset, weighted toward the
  provenance- and representability-sensitive shapes of S5/Table 1;
* :mod:`repro.fuzz.oracle` -- the differential oracle: every generated
  program runs on every registered implementation plus the strict and
  permissive memory-model modes, and each divergence from the reference
  outcome is either explained by a *known cause* (address-map-dependent
  masking, capability format, bounds-setting mode, UB licence, memory
  -model mode) or flagged as a finding;
* :mod:`repro.fuzz.shrinker` -- AST-level minimisation of any divergent
  or crashing program while preserving the failure signature;
* :mod:`repro.fuzz.evidence` -- trace evidence for findings: the
  reference's explaining event (attached to every finding) and the
  "same explaining event" shrink predicate ingredient;
* :mod:`repro.fuzz.corpus` -- the ``tests/corpus/`` regression corpus:
  minimized cases with their recorded per-implementation outcomes,
  replayed by pytest on every run;
* :mod:`repro.fuzz.driver` -- the iteration loop behind
  ``repro fuzz --seed N --iterations K --time-budget S``.
"""

from repro.fuzz.corpus import CorpusCase, load_case, load_corpus, save_case
from repro.fuzz.driver import (
    FuzzReport,
    iteration_seed,
    program_for,
    run_fuzz,
)
from repro.fuzz.evidence import (
    capture_trace,
    reference_evidence,
    reference_signature,
)
from repro.fuzz.generator import FuzzProgram, FuzzStmt, ProgramGenerator
from repro.fuzz.oracle import (
    Cause,
    Divergence,
    FUZZ_TARGETS,
    ProgramVerdict,
    evaluate_program,
    outcome_signature,
)
from repro.fuzz.shrinker import shrink

__all__ = [
    "Cause",
    "CorpusCase",
    "Divergence",
    "FUZZ_TARGETS",
    "FuzzProgram",
    "FuzzReport",
    "FuzzStmt",
    "ProgramGenerator",
    "ProgramVerdict",
    "capture_trace",
    "evaluate_program",
    "iteration_seed",
    "load_case",
    "load_corpus",
    "outcome_signature",
    "program_for",
    "reference_evidence",
    "reference_signature",
    "run_fuzz",
    "save_case",
    "shrink",
]
