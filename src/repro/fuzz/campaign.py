"""Coverage-guided fuzz campaigns: resumable, shardable, deduplicated.

``run_campaign`` is the engine behind ``repro fuzz --guided --corpus-dir
DIR [--shard i/n] [--resume]``.  It differs from the blind loop
(:func:`repro.fuzz.driver.run_fuzz`) in three ways:

* **Guidance.**  Every candidate's traced reference run yields a
  :class:`~repro.fuzz.coverage.Coverage` fingerprint; candidates whose
  fingerprint contains keys the corpus snapshot lacks are admitted as
  seeds, and once the corpus is non-empty most candidates are
  *mutations* of stored seeds (rarity-weighted scheduling, AFL-style)
  rather than fresh draws from the blind grammar.

* **Dedup.**  Findings are keyed by the explainer's explaining
  signature (``repro.obs.explain.explaining_signature`` of the
  reference trace): one ``findings/<digest>.json`` per *distinct bug*,
  accumulating every witness program, instead of one report per
  duplicate discovery.

* **Sharding and resume.**  Candidate ``k`` is a pure function of
  ``(campaign seed, k, corpus snapshot)``; the snapshot is loaded once
  per invocation and **never updated mid-run**.  Shard ``i/n``
  evaluates exactly the global indices ``k % n == i`` of the same
  window, so ``--shard 0/2`` + ``--shard 1/2`` over one seed partition
  the unsharded campaign's work and their corpora merge byte-for-byte
  into what the unsharded run writes (every on-disk payload is a pure
  function of program + campaign seed; nothing records run order).
  ``state.json`` carries the window cursor, so ``--resume`` continues
  where a previous invocation -- or a killed one -- left off.
  Guidance still compounds across invocations: each new invocation
  snapshots the seeds every earlier window admitted.

The trade-off is honest: within one invocation, two shards of a window
mutate the *same* snapshot (determinism), so guidance sharpens only at
invocation boundaries.  Run campaigns as rounds of windows (the bench
coverage axis does exactly this) to get both properties at once.
"""

from __future__ import annotations

import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.coreeval import set_default_evaluator
from repro.fuzz.corpus import (
    FindingRecord,
    SeedEntry,
    atomic_write_text,
    load_findings,
    load_seed_corpus,
    record_witness,
    save_seed,
)
from repro.fuzz.coverage import Coverage, coverage_of
from repro.fuzz.driver import DEFAULT_ITERATIONS, iteration_seed
from repro.fuzz.generator import FuzzProgram, ProgramGenerator
from repro.fuzz.mutate import mutate
from repro.fuzz.oracle import FUZZ_TARGETS, evaluate_program
from repro.perf.cache import set_cache_enabled
from repro.perf.pool import TaskFailure, parallel_map
from repro.robust.budget import DEFAULT_FUZZ_BUDGET

#: ``state.json`` format version (bump on incompatible change).
STATE_VERSION = 1

#: Fraction of candidates drawn fresh from the blind grammar even when
#: the corpus is non-empty (AFL's havoc/import balance): pure mutation
#: of early seeds would trap the campaign in their neighbourhood.
FRESH_FRACTION = 0.2


class CampaignError(RuntimeError):
    """A campaign invocation that cannot proceed (bad shard spec,
    seed/state mismatch, un-resumed prior state)."""


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"i/n"`` into ``(i, n)`` with ``0 <= i < n``."""
    try:
        index_text, _, total_text = text.partition("/")
        shard = (int(index_text), int(total_text))
    except ValueError:
        raise CampaignError(f"shard must look like i/n, got {text!r}") \
            from None
    if not 0 <= shard[0] < shard[1]:
        raise CampaignError(
            f"shard index must satisfy 0 <= i < n, got {text!r}")
    return shard


# ---------------------------------------------------------------------------
# Campaign state (the resume cursor)

def state_path(directory: pathlib.Path | str) -> pathlib.Path:
    return pathlib.Path(directory) / "state.json"


def load_state(directory: pathlib.Path | str) -> dict | None:
    """The campaign state, or ``None`` when absent or damaged."""
    try:
        payload = json.loads(
            state_path(directory).read_text(encoding="utf-8"))
        if payload.get("version") != STATE_VERSION:
            return None
        return {"version": STATE_VERSION,
                "seed": int(payload["seed"]),
                "shard": (int(payload["shard"][0]),
                          int(payload["shard"][1])),
                "next_index": int(payload["next_index"])}
    except Exception:                        # noqa: BLE001 - reader contract
        return None


def save_state(directory: pathlib.Path | str, seed: int,
               shard: tuple[int, int], next_index: int) -> pathlib.Path:
    payload = {"version": STATE_VERSION, "seed": seed,
               "shard": [shard[0], shard[1]], "next_index": next_index}
    return atomic_write_text(state_path(directory),
                             json.dumps(payload, indent=2,
                                        sort_keys=False) + "\n")


def merge_states(dest: pathlib.Path | str, sources) -> None:
    """Fold shard cursors into the canonical unsharded cursor.

    Shards of one campaign window agree on seed and ``next_index``;
    the merged state claims the full ``[0, 1]`` shard so the merged
    directory is resumable as (and byte-identical to) an unsharded
    campaign."""
    states = [s for s in (load_state(src) for src in sources)
              if s is not None]
    if not states:
        return
    seeds = {s["seed"] for s in states}
    if len(seeds) != 1:
        raise CampaignError(
            "cannot merge corpora from different campaign seeds: "
            f"{sorted(seeds)}")
    save_state(dest, seeds.pop(), (0, 1),
               max(s["next_index"] for s in states))


# ---------------------------------------------------------------------------
# The corpus snapshot and candidate derivation

@dataclass(frozen=True)
class Snapshot:
    """A campaign invocation's frozen view of its corpus.

    Loaded once at invocation start; mid-run admissions do not feed
    back (the shard-determinism contract).  ``weights`` are the
    rarity-weighted scheduler's per-entry draw weights; ``baseline``
    is the union of stored coverage keys that admission is judged
    against."""

    entries: tuple = ()
    weights: tuple = ()
    baseline: frozenset = frozenset()

    @property
    def pool(self) -> tuple:
        return tuple(entry.program for entry in self.entries)


def _scheduler_weights(entries) -> tuple:
    """Rarity-weighted scheduling: a seed holding keys few other seeds
    hold is mutated more often.  Key iteration is sorted so the float
    sum -- and therefore every ``rng.choices`` draw -- is identical on
    every platform and hash seed."""
    counts: dict[str, int] = {}
    for entry in entries:
        for key in entry.coverage.keys():
            counts[key] = counts.get(key, 0) + 1
    weights = []
    for entry in entries:
        rarity = sum(1.0 / counts[key]
                     for key in sorted(entry.coverage.keys()))
        weights.append(1.0 + rarity)
    return tuple(weights)


def take_snapshot(directory: pathlib.Path | str) -> Snapshot:
    entries = tuple(load_seed_corpus(directory))
    baseline = frozenset().union(
        *(entry.coverage.keys() for entry in entries)) \
        if entries else frozenset()
    return Snapshot(entries=entries,
                    weights=_scheduler_weights(entries),
                    baseline=baseline)


def derive_candidate(seed: int, index: int,
                     snapshot: Snapshot) -> tuple[FuzzProgram, str]:
    """Candidate ``index`` of campaign ``seed`` over ``snapshot``.

    Pure: the same arguments produce the same program on every shard,
    platform, and worker count.  With an empty snapshot this is
    *exactly* the blind generator's program for the same (seed, index)
    -- byte-identical, so a guided campaign's first window is an honest
    blind baseline.  Returns ``(program, "fresh" | "mutant")``.
    """
    rng = random.Random(iteration_seed(seed, index))
    if not snapshot.entries:
        return ProgramGenerator(rng).generate(), "fresh"
    if rng.random() < FRESH_FRACTION:
        return ProgramGenerator(rng).generate(), "fresh"
    entry = rng.choices(snapshot.entries,
                        weights=snapshot.weights, k=1)[0]
    return mutate(entry.program, rng, pool=snapshot.pool), "mutant"


# ---------------------------------------------------------------------------
# Candidate evaluation (worker body)

@dataclass(frozen=True)
class CandidateResult:
    """What one candidate evaluation ships back from a worker."""

    coverage: Coverage
    signature: tuple | None
    label: str
    divergences: tuple = ()


def _candidate_label(outcome, classify: bool) -> str:
    from repro.errors import OutcomeKind
    if not classify:
        return "unclassified"
    if outcome is None:
        return "crash"
    if outcome.kind is OutcomeKind.EXIT:
        return "exit"
    return outcome.describe()


def _evaluate_candidate(task):
    """Worker body: probe coverage and (optionally) classify one
    candidate.  Top-level and argument-picklable for the pool; the
    serial path runs the identical function in-process."""
    program_dict, targets, use_cache, budget, evaluator, classify = task
    if targets is None:
        targets = FUZZ_TARGETS
    if use_cache is not None:
        set_cache_enabled(use_cache)
    if evaluator is not None:
        set_default_evaluator(evaluator)
    program = FuzzProgram.from_dict(program_dict)
    # One traced reference run yields coverage, the dedup signature,
    # and the reference outcome -- evaluator pinned inside coverage_of,
    # never the campaign's choice (the determinism contract).
    probe = coverage_of(program, budget=budget)
    divergences: tuple = ()
    if classify:
        verdict = evaluate_program(program, targets,
                                   attach_evidence=False, budget=budget)
        divergences = tuple(verdict.divergences)
    return CandidateResult(
        coverage=probe.coverage, signature=probe.signature,
        label=_candidate_label(probe.outcome, classify),
        divergences=divergences)


def _witness_payload(program: FuzzProgram, divergences) -> dict:
    """The finding witness for one program: a pure function of the
    program and the (deterministic) oracle verdict, so every shard
    that rediscovers it writes identical bytes."""
    observations = sorted(
        ({"impl": d.impl_name, "cause": d.cause.value,
          "reference": d.reference, "observed": d.observed}
         for d in divergences if d.is_finding),
        key=lambda o: (o["impl"], o["cause"], o["observed"]))
    return {"source": program.render(),
            "program": program.to_dict(),
            "observations": observations}


# ---------------------------------------------------------------------------
# The campaign loop

@dataclass
class CampaignReport:
    """The result of one guided-campaign invocation."""

    seed: int
    shard: tuple[int, int]
    corpus_dir: pathlib.Path
    start_index: int = 0
    next_index: int = 0
    processed: int = 0
    elapsed: float = 0.0
    derived: dict[str, int] = field(default_factory=dict)
    reference_counts: dict[str, int] = field(default_factory=dict)
    #: Seed entry names admitted by this invocation (corpus growth).
    new_seeds: list[str] = field(default_factory=list)
    corpus_size: int = 0
    #: Finding digests first recorded by this invocation.
    new_bugs: list[str] = field(default_factory=list)
    new_witnesses: int = 0
    #: Finding divergences encountered this invocation (pre-dedup).
    finding_hits: int = 0
    #: Every distinct bug on disk after this invocation.
    findings: list[FindingRecord] = field(default_factory=list)
    covered: Coverage = field(default_factory=Coverage)
    #: Coverage keys this invocation reached beyond its snapshot.
    new_keys: int = 0
    quarantined: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when this invocation hit no finding-class divergence
        (known-cause divergences are expected and fine)."""
        return self.finding_hits == 0


def run_campaign(seed: int = 0,
                 iterations: int | None = None,
                 time_budget: float | None = None,
                 corpus_dir: pathlib.Path | str = None,
                 shard: tuple[int, int] = (0, 1),
                 resume: bool = False,
                 targets=FUZZ_TARGETS,
                 jobs: int = 1,
                 use_cache: bool | None = None,
                 budget=DEFAULT_FUZZ_BUDGET,
                 evaluator: str | None = None,
                 classify: bool = True,
                 fault_plan=None,
                 task_timeout: float | None = None,
                 bus=None,
                 progress: Callable[[int, "CampaignReport"], None]
                 | None = None,
                 ) -> CampaignReport:
    """Run one window of a coverage-guided campaign.

    The window is ``[start, start + iterations)`` global candidate
    indices, where ``start`` is 0 or -- under ``resume`` -- the stored
    cursor; this shard evaluates the indices congruent to its shard
    index.  Under a ``time_budget`` the window instead grows in chunks
    until the budget elapses (the cursor then lands on a chunk
    boundary, so every shard that ran the same chunks agrees on it).

    ``classify=False`` skips the differential oracle (coverage probe
    only) -- the bench coverage axis uses it to measure guidance
    without paying for the full target grid.  Everything else
    (``jobs``, ``use_cache``, ``budget``, ``evaluator``, fault
    injection) matches :func:`repro.fuzz.driver.run_fuzz`.
    """
    if corpus_dir is None:
        raise CampaignError("a guided campaign requires a corpus "
                            "directory (--corpus-dir)")
    if not 0 <= shard[0] < shard[1]:
        raise CampaignError(f"shard index must satisfy 0 <= i < n, "
                            f"got {shard[0]}/{shard[1]}")
    if iterations is None and time_budget is None:
        iterations = DEFAULT_ITERATIONS
    if evaluator is not None:
        set_default_evaluator(evaluator)
    corpus_dir = pathlib.Path(corpus_dir)

    state = load_state(corpus_dir)
    if state is not None:
        if state["seed"] != seed:
            raise CampaignError(
                f"corpus at {corpus_dir} belongs to campaign seed "
                f"{state['seed']}, not {seed}")
        if not resume and state["next_index"] > 0:
            raise CampaignError(
                f"corpus at {corpus_dir} has prior campaign state "
                f"(cursor {state['next_index']}); pass resume=True / "
                "--resume to continue it, or use a fresh directory")
    start = state["next_index"] if (resume and state is not None) else 0

    snapshot = take_snapshot(corpus_dir)
    report = CampaignReport(seed=seed, shard=shard,
                            corpus_dir=corpus_dir, start_index=start)
    started = time.monotonic()
    task_targets = None if targets is FUZZ_TARGETS else targets
    seen_new_seeds: set[str] = set()

    def consume(index: int, program: FuzzProgram, item) -> None:
        if isinstance(item, TaskFailure):
            report.quarantined.append(index)
            report.reference_counts["quarantined"] = \
                report.reference_counts.get("quarantined", 0) + 1
        else:
            result = item
            report.covered = report.covered.union(result.coverage)
            report.reference_counts[result.label] = \
                report.reference_counts.get(result.label, 0) + 1
            if result.coverage.keys() - snapshot.baseline:
                entry = SeedEntry.from_program(program, seed,
                                               result.coverage)
                save_seed(corpus_dir, entry)
                if entry.name not in seen_new_seeds:
                    seen_new_seeds.add(entry.name)
                    report.new_seeds.append(entry.name)
            findings = [d for d in result.divergences if d.is_finding]
            if findings:
                report.finding_hits += len(findings)
                _, new_bug, new_witness = record_witness(
                    corpus_dir, result.signature,
                    _witness_payload(program, findings))
                if new_bug:
                    from repro.fuzz.corpus import signature_digest
                    report.new_bugs.append(
                        signature_digest(result.signature))
                report.new_witnesses += int(new_witness)
        report.processed += 1
        if progress is not None:
            progress(report.processed, report)

    def process_window(begin: int, end: int) -> None:
        indices = [k for k in range(begin, end)
                   if k % shard[1] == shard[0]]
        if not indices:
            return
        programs = {k: derive_candidate(seed, k, snapshot)
                    for k in indices}
        for k in indices:
            origin = programs[k][1]
            report.derived[origin] = report.derived.get(origin, 0) + 1
        tasks = [(programs[k][0].to_dict(), task_targets, use_cache,
                  budget, evaluator, classify) for k in indices]
        for k, item in zip(indices,
                           parallel_map(_evaluate_candidate, tasks,
                                        jobs=jobs,
                                        task_timeout=task_timeout,
                                        fault_plan=fault_plan, bus=bus)):
            consume(k, programs[k][0], item)

    cursor = start
    if time_budget is None:
        # Fixed-count window: one pool pass over this shard's indices.
        process_window(start, start + iterations)
        cursor = start + iterations
    else:
        # Chunked window: the cursor only ever lands on chunk
        # boundaries, so shards that ran the same wall-clock agree on
        # it (and a shorter shard merely stops at an earlier boundary).
        chunk = 4 * max(jobs, 1) * shard[1]
        while True:
            if iterations is not None and cursor - start >= iterations:
                break
            if time.monotonic() - started >= time_budget:
                break
            end = cursor + chunk
            if iterations is not None:
                end = min(end, start + iterations)
            process_window(cursor, end)
            cursor = end

    save_state(corpus_dir, seed, shard, cursor)
    report.next_index = cursor
    report.new_keys = len(report.covered.keys() - snapshot.baseline)
    report.corpus_size = len(load_seed_corpus(corpus_dir))
    report.findings = load_findings(corpus_dir)
    report.elapsed = time.monotonic() - started
    return report
