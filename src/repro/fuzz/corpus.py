"""The regression corpus: minimized fuzz cases replayed by pytest.

Each corpus entry is one JSON file under ``tests/corpus/`` recording a
minimized program, the divergence cause that made it interesting, and
the expected outcome (``Outcome.describe()`` form) on every registered
implementation it was classified against.  The pytest replayer
(``tests/test_corpus_replay.py``) re-runs every file on every recorded
implementation and fails if any outcome shifts -- so semantics changes
that would silently alter fuzz classifications fail loudly, the same
way the golden reports guard the S5 numbers.

File names embed a content hash, making saves idempotent and collisions
impossible across fuzz runs.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from repro.impls.registry import by_name


@dataclass
class CorpusCase:
    """One minimized regression program plus its recorded classification."""

    name: str
    cause: str
    source: str
    expectations: dict[str, str] = field(default_factory=dict)
    seed: int | None = None
    note: str = ""

    @classmethod
    def from_outcomes(cls, cause: str, source: str, outcomes,
                      seed: int | None = None, note: str = "") -> "CorpusCase":
        """Build a case from ``{impl_name: Outcome}`` as recorded by the
        oracle (insertion order preserved, no set iteration)."""
        expectations = {name: outcome.describe()
                        for name, outcome in outcomes.items()}
        digest = hashlib.sha256(source.encode()).hexdigest()[:10]
        return cls(name=f"{cause}-{digest}", cause=cause, source=source,
                   expectations=expectations, seed=seed, note=note)

    def replay(self) -> list[tuple[str, str, str]]:
        """Re-run on every recorded implementation.

        Returns ``(impl_name, expected, observed)`` mismatch triples;
        empty means the recorded classification still holds.
        """
        mismatches = []
        for impl_name in sorted(self.expectations):
            expected = self.expectations[impl_name]
            observed = by_name(impl_name).run(self.source).describe()
            if observed != expected:
                mismatches.append((impl_name, expected, observed))
        return mismatches


def save_case(directory: pathlib.Path | str, case: CorpusCase) -> pathlib.Path:
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    payload = {
        "name": case.name,
        "cause": case.cause,
        "seed": case.seed,
        "note": case.note,
        "source": case.source,
        "expectations": dict(sorted(case.expectations.items())),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def load_case(path: pathlib.Path | str) -> CorpusCase:
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return CorpusCase(
        name=payload["name"],
        cause=payload["cause"],
        source=payload["source"],
        expectations=dict(payload["expectations"]),
        seed=payload.get("seed"),
        note=payload.get("note", ""),
    )


def load_corpus(directory: pathlib.Path | str) -> list[CorpusCase]:
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(path) for path in sorted(directory.glob("*.json"))]
