"""Corpora: the pytest regression corpus and the campaign seed corpus.

Two kinds of persistent state live here, both JSON-on-disk with
deterministic ordering and **atomic, fsynced writes** (write to a temp
file in the destination directory, ``os.fsync``, ``os.replace`` --
the :mod:`repro.perf.disk` publication pattern), so a killed campaign
can never leave a truncated file that poisons ``--resume``:

* **Regression cases** (:class:`CorpusCase`): minimized fuzz findings
  under ``tests/corpus/``, each recording a program, the divergence
  cause, the expected outcome on every implementation it was classified
  against, and (since the guided-campaign work) the reference trace's
  *explaining signature* -- so the replayer pins not just *what* every
  implementation does but *why* the reference behaved as it did.

* **Campaign corpora**: a guided campaign directory holds
  ``seeds/<name>.json`` (coverage-advancing programs: the statement IR,
  its render, and the coverage fingerprint that earned admission),
  ``findings/<digest>.json`` (one file per *distinct bug*, keyed by the
  explainer's explaining signature, holding every witness program), and
  ``state.json`` (the scheduler's resume cursor).  Entry file names are
  content addresses (sha256 of the rendered source), and no payload
  records run order or shard identity -- which is what makes shard
  corpora merge byte-for-byte into the unsharded campaign's corpus.

Readers of campaign state treat every damaged file as absent (the
:class:`~repro.perf.disk.DiskCache` reader contract): a corrupt seed is
skipped, a corrupt finding re-discovered.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field

from repro.fuzz.coverage import Coverage
from repro.fuzz.generator import FuzzProgram
from repro.impls.registry import by_name


def atomic_write_text(path: pathlib.Path | str, text: str) -> pathlib.Path:
    """Publish ``text`` at ``path`` via temp file + fsync + atomic
    rename.  A reader (or a resumed campaign) sees either the complete
    file or no file, never a torn one."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _dump(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


# ---------------------------------------------------------------------------
# Regression cases (tests/corpus/)

@dataclass
class CorpusCase:
    """One minimized regression program plus its recorded classification."""

    name: str
    cause: str
    source: str
    expectations: dict[str, str] = field(default_factory=dict)
    seed: int | None = None
    note: str = ""
    #: The reference trace's explaining signature (the distinct-bug
    #: dedup key), as a plain list for JSON; ``None`` on legacy entries.
    explaining: list | None = None

    @classmethod
    def from_outcomes(cls, cause: str, source: str, outcomes,
                      seed: int | None = None, note: str = "",
                      explaining=None) -> "CorpusCase":
        """Build a case from ``{impl_name: Outcome}`` as recorded by the
        oracle (insertion order preserved, no set iteration)."""
        expectations = {name: outcome.describe()
                        for name, outcome in outcomes.items()}
        digest = hashlib.sha256(source.encode()).hexdigest()[:10]
        return cls(name=f"{cause}-{digest}", cause=cause, source=source,
                   expectations=expectations, seed=seed, note=note,
                   explaining=list(explaining) if explaining is not None
                   else None)

    def replay(self) -> list[tuple[str, str, str]]:
        """Re-run on every recorded implementation.

        Returns ``(impl_name, expected, observed)`` mismatch triples;
        empty means the recorded classification still holds.
        """
        mismatches = []
        for impl_name in sorted(self.expectations):
            expected = self.expectations[impl_name]
            observed = by_name(impl_name).run(self.source).describe()
            if observed != expected:
                mismatches.append((impl_name, expected, observed))
        return mismatches


def save_case(directory: pathlib.Path | str, case: CorpusCase) -> pathlib.Path:
    directory = pathlib.Path(directory)
    path = directory / f"{case.name}.json"
    payload = {
        "name": case.name,
        "cause": case.cause,
        "seed": case.seed,
        "note": case.note,
        "source": case.source,
        "expectations": dict(sorted(case.expectations.items())),
    }
    if case.explaining is not None:
        payload["explaining"] = case.explaining
    atomic_write_text(path, _dump(payload))
    return path


def load_case(path: pathlib.Path | str) -> CorpusCase:
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return CorpusCase(
        name=payload["name"],
        cause=payload["cause"],
        source=payload["source"],
        expectations=dict(payload["expectations"]),
        seed=payload.get("seed"),
        note=payload.get("note", ""),
        explaining=payload.get("explaining"),
    )


def load_corpus(directory: pathlib.Path | str) -> list[CorpusCase]:
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(path) for path in sorted(directory.glob("*.json"))]


# ---------------------------------------------------------------------------
# Campaign seed corpus (DIR/seeds/)

def source_digest(source: str) -> str:
    """The content address of one program (12 hex chars of sha256)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class SeedEntry:
    """One coverage-advancing program in a campaign corpus.

    Deliberately carries nothing run-order- or shard-dependent: the
    name is a content address and the payload is a pure function of
    ``(program, campaign seed)``, so every shard that discovers this
    program writes byte-identical bytes (idempotent publication)."""

    name: str
    seed: int
    program: FuzzProgram
    source: str
    coverage: Coverage

    @classmethod
    def from_program(cls, program: FuzzProgram, seed: int,
                     coverage: Coverage) -> "SeedEntry":
        source = program.render()
        return cls(name=f"seed-{source_digest(source)}", seed=seed,
                   program=program, source=source, coverage=coverage)

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "source": self.source,
            "program": self.program.to_dict(),
            "coverage": self.coverage.to_dict(),
        }


def seeds_dir(directory: pathlib.Path | str) -> pathlib.Path:
    return pathlib.Path(directory) / "seeds"


def save_seed(directory: pathlib.Path | str,
              entry: SeedEntry) -> pathlib.Path:
    path = seeds_dir(directory) / f"{entry.name}.json"
    atomic_write_text(path, _dump(entry.to_payload()))
    return path


def load_seed(path: pathlib.Path | str) -> SeedEntry | None:
    """One seed entry, or ``None`` on *any* failure -- a corrupt or
    truncated file reads as absent, never as a crash."""
    try:
        payload = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8"))
        program = FuzzProgram.from_dict(payload["program"])
        return SeedEntry(
            name=payload["name"],
            seed=int(payload["seed"]),
            program=program,
            source=payload["source"],
            coverage=Coverage.from_dict(payload.get("coverage", {})))
    except Exception:                        # noqa: BLE001 - reader contract
        return None


def load_seed_corpus(directory: pathlib.Path | str) -> list[SeedEntry]:
    """Every readable seed entry, in deterministic (file name) order."""
    root = seeds_dir(directory)
    if not root.is_dir():
        return []
    entries = (load_seed(path) for path in sorted(root.glob("*.json")))
    return [entry for entry in entries if entry is not None]


# ---------------------------------------------------------------------------
# Distinct-bug findings (DIR/findings/)

def signature_digest(signature) -> str:
    """The content address of one explaining signature."""
    payload = json.dumps(
        list(signature) if signature is not None else None,
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass
class FindingRecord:
    """One *distinct bug*: an explaining signature plus every witness.

    ``witnesses`` maps the witness program's source digest to its
    payload (source, IR, and the oracle observations that flagged it).
    Witness payloads are pure functions of the program, so merging
    shard findings is a plain union."""

    signature: list | None
    digest: str
    witnesses: dict = field(default_factory=dict)

    @classmethod
    def fresh(cls, signature) -> "FindingRecord":
        return cls(signature=list(signature) if signature is not None
                   else None,
                   digest=signature_digest(signature))

    def to_payload(self) -> dict:
        return {
            "signature": self.signature,
            "digest": self.digest,
            "witnesses": {key: self.witnesses[key]
                          for key in sorted(self.witnesses)},
        }


def findings_dir(directory: pathlib.Path | str) -> pathlib.Path:
    return pathlib.Path(directory) / "findings"


def save_finding(directory: pathlib.Path | str,
                 record: FindingRecord) -> pathlib.Path:
    path = findings_dir(directory) / f"{record.digest}.json"
    atomic_write_text(path, _dump(record.to_payload()))
    return path


def load_finding(path: pathlib.Path | str) -> FindingRecord | None:
    try:
        payload = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8"))
        return FindingRecord(signature=payload["signature"],
                             digest=payload["digest"],
                             witnesses=dict(payload["witnesses"]))
    except Exception:                        # noqa: BLE001 - reader contract
        return None


def load_findings(directory: pathlib.Path | str) -> list[FindingRecord]:
    root = findings_dir(directory)
    if not root.is_dir():
        return []
    records = (load_finding(path) for path in sorted(root.glob("*.json")))
    return [record for record in records if record is not None]


def record_witness(directory: pathlib.Path | str, signature,
                   witness: dict) -> tuple[FindingRecord, bool, bool]:
    """Fold one witness into the finding keyed by ``signature``.

    Read-modify-write against the published file (atomic publication,
    so a concurrent or killed writer can only lose the *update*, never
    corrupt the record).  Returns ``(record, new_bug, new_witness)``.
    """
    digest = signature_digest(signature)
    path = findings_dir(directory) / f"{digest}.json"
    record = load_finding(path)
    new_bug = record is None
    if record is None:
        record = FindingRecord.fresh(signature)
    key = source_digest(witness["source"])
    new_witness = key not in record.witnesses
    record.witnesses[key] = witness
    save_finding(directory, record)
    return record, new_bug, new_witness


# ---------------------------------------------------------------------------
# Merge and minimise

def merge_corpus_dirs(dest: pathlib.Path | str,
                      sources) -> dict:
    """Union shard corpora into ``dest``.

    Seeds are re-published through the normal writer (idempotent:
    identical names carry identical payloads), findings are unioned
    witness-by-witness, and the resume cursors -- which every shard of
    one campaign window agrees on -- are canonicalised to the unsharded
    ``[0, 1]`` shard, so a merged corpus is byte-for-byte the corpus
    the unsharded campaign would have written.
    """
    from repro.fuzz.campaign import merge_states  # cycle: state lives there

    dest = pathlib.Path(dest)
    stats = {"seeds": 0, "bugs": 0, "witnesses": 0}
    states = []
    for source in sources:
        source = pathlib.Path(source)
        for entry in load_seed_corpus(source):
            path = seeds_dir(dest) / f"{entry.name}.json"
            if not path.exists():
                stats["seeds"] += 1
            save_seed(dest, entry)
        for record in load_findings(source):
            for witness in record.witnesses.values():
                _, new_bug, new_witness = record_witness(
                    dest, record.signature, witness)
                stats["bugs"] += int(new_bug)
                stats["witnesses"] += int(new_witness)
        states.append(source)
    merge_states(dest, states)
    return stats


def minimise_corpus(directory: pathlib.Path | str,
                    ) -> tuple[list[SeedEntry], list[SeedEntry]]:
    """Greedy set-cover pruning of a seed corpus.

    Entries are visited shortest-first (then by name) and kept only
    when they contribute coverage keys no kept entry already has; the
    rest are deleted from disk.  Deterministic, and **never** run
    implicitly during a campaign -- pruning changes the snapshot later
    invocations mutate from, so it is an explicit operator action
    (``repro fuzz --minimise-corpus``).  Returns ``(kept, removed)``.
    """
    entries = sorted(load_seed_corpus(directory),
                     key=lambda e: (len(e.program.stmts), e.name))
    covered: set = set()
    kept, removed = [], []
    for entry in entries:
        keys = entry.coverage.keys()
        if keys - covered:
            covered |= keys
            kept.append(entry)
        else:
            removed.append(entry)
            try:
                (seeds_dir(directory) / f"{entry.name}.json").unlink()
            except OSError:
                pass
    return kept, removed
