"""The differential oracle: classify one program across implementations.

Every fuzz target is paired with a *matched reference*: the abstract
machine instantiated with the target's own capability format, allocator
address map, bounds-setting mode, and semantics options.  A target that
disagrees with the global reference (``cerberus``) but agrees with its
matched reference has a mechanically attributable *known cause* -- the
one configuration axis separating the matched reference from the global
one.  A target that disagrees with both, on a program the matched
reference says is defined, is an **unexplained divergence**: exactly the
kind of evidence the paper's S5 comparison surfaces by hand.

Known causes, in attribution priority order:

* ``ub-licensed`` -- the matched reference flags UB, so compiled
  implementations may do anything (the S3 licence);
* ``capability-format`` -- the target runs the CHERIoT-style 64-bit
  format (S3.10): bounds granularity and ``(u)intptr_t`` width differ;
* ``memory-model-mode`` -- the target runs a non-default point of the S3
  design space (the permissive pointer-arithmetic mode);
* ``bounds-setting-mode`` -- the target narrows sub-object bounds
  (S3.8), a stricter bounds-setting mode than the paper's default;
* ``allocator-policy`` -- the target runs a reusing heap allocator
  (``freelist``/``quarantine``): freed addresses recycle, so
  use-after-free aliasing and address-equality probes diverge from the
  never-reusing ``bump`` reference ("Picking a CHERI Allocator");
* ``address-map`` -- the behaviour depends on allocator address ranges
  (the Appendix-A ``& UINT_MAX`` / ``& INT_MAX`` masking divergences);
* ``unspecified-value`` -- the matched reference completed but its exit
  status is an S3.5 *unspecified value* (ghost state reached ``main``'s
  return), so any concrete status the target produced is consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import Outcome, OutcomeKind
from repro.fuzz.generator import FuzzProgram
from repro.impls.config import Implementation
from repro.impls.registry import (
    ALL_IMPLEMENTATIONS,
    CERBERUS,
    CERBERUS_PERMISSIVE,
    CHERIOT_ABSTRACT,
    CHERIOT_HARDWARE,
    CLANG_MORELLO_O3_SUBOBJECT,
)
from repro.memory.model import Mode


class Cause(enum.Enum):
    """Why a target's outcome may differ from the global reference."""

    UB_LICENSED = "ub-licensed"
    CAPABILITY_FORMAT = "capability-format"
    MEMORY_MODEL_MODE = "memory-model-mode"
    BOUNDS_SETTING_MODE = "bounds-setting-mode"
    ALLOCATOR_POLICY = "allocator-policy"
    ADDRESS_MAP = "address-map"
    UNSPECIFIED_VALUE = "unspecified-value"
    UNEXPLAINED = "unexplained"
    CRASH = "interpreter-crash"
    FRONTEND = "frontend-reject"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_finding(self) -> bool:
        """True for the causes that demand investigation (and shrinking)."""
        return self in (Cause.UNEXPLAINED, Cause.CRASH, Cause.FRONTEND)


#: The implementations the fuzzer compares, beyond the S5 seven: the
#: sub-object bounds mode, both CHERIoT-style machines, and the
#: permissive memory-model mode (the strict mode is ``cerberus`` itself).
FUZZ_IMPLEMENTATIONS: tuple[Implementation, ...] = (
    ALL_IMPLEMENTATIONS
    + (CLANG_MORELLO_O3_SUBOBJECT, CHERIOT_ABSTRACT, CHERIOT_HARDWARE,
       CERBERUS_PERMISSIVE)
)


def outcome_signature(outcome: Outcome) -> tuple:
    """The comparable footprint of an outcome (stdout-sensitive)."""
    status: object = None
    if outcome.kind is OutcomeKind.EXIT:
        status = "unspecified" if outcome.unspecified else outcome.exit_status
    return (outcome.kind.value,
            status,
            outcome.ub.value if outcome.ub else None,
            outcome.trap.value if outcome.trap else None,
            outcome.limit or None,
            outcome.stdout)


@dataclass(frozen=True)
class FuzzTarget:
    """One execution target plus its matched abstract-machine reference."""

    impl: Implementation
    reference: Implementation

    @classmethod
    def of(cls, impl: Implementation) -> "FuzzTarget":
        if impl.mode is Mode.ABSTRACT and impl.opt_level == 0 \
                and not impl.revocation:
            return cls(impl, impl)
        ref = replace(impl, name="ref:" + impl.name, mode=Mode.ABSTRACT,
                      opt_level=0, revocation=False)
        return cls(impl, ref)

    def known_cause(self) -> Cause:
        """The configuration axis separating this target's matched
        reference from the global one, by attribution priority."""
        # Value comparison, not identity: targets that crossed a worker
        # -process boundary carry unpickled (fresh) Architecture objects.
        if self.impl.arch != CERBERUS.arch:
            return Cause.CAPABILITY_FORMAT
        if self.impl.options != CERBERUS.options:
            return Cause.MEMORY_MODEL_MODE
        if self.impl.subobject_bounds != CERBERUS.subobject_bounds:
            return Cause.BOUNDS_SETTING_MODE
        if self.impl.allocator != CERBERUS.allocator:
            return Cause.ALLOCATOR_POLICY
        return Cause.ADDRESS_MAP


#: Default target set: every fuzz implementation except the global
#: reference itself (which anchors the comparison).
FUZZ_TARGETS: tuple[FuzzTarget, ...] = tuple(
    FuzzTarget.of(impl) for impl in FUZZ_IMPLEMENTATIONS
    if impl is not CERBERUS)


@dataclass
class Divergence:
    """One target disagreeing with the global reference on one program."""

    impl_name: str
    cause: Cause
    reference: str      # global reference outcome, Outcome.describe() form
    observed: str       # this target's outcome (or crash repr)
    detail: str = ""
    evidence: dict | None = None   # reference trace's explaining event

    @property
    def is_finding(self) -> bool:
        return self.cause.is_finding

    def describe(self) -> str:
        return (f"{self.impl_name}: reference {self.reference}, observed "
                f"{self.observed} [{self.cause}]")


@dataclass
class ProgramVerdict:
    """The differential classification of one generated program."""

    source: str
    reference: Outcome | None          # None when the reference crashed
    outcomes: dict[str, Outcome] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def findings(self) -> list[Divergence]:
        return [d for d in self.divergences if d.is_finding]

    @property
    def clean(self) -> bool:
        return not self.findings


def _safe_run(impl: Implementation, source: str,
              budget=None) -> tuple[Outcome | None, BaseException | None]:
    try:
        return impl.run(source, budget=budget), None
    except Exception as exc:                 # noqa: BLE001 - fuzz boundary
        return None, exc


def _reference_key(impl: Implementation) -> tuple:
    return (impl.arch.name, impl.address_map.name, impl.subobject_bounds,
            impl.options, impl.revocation, impl.allocator)


def allocator_fuzz_targets(policy: str) -> tuple[FuzzTarget, ...]:
    """Extra fuzz targets exercising a non-default allocator policy.

    A representative slice of the grid (the global reference's own
    configuration plus one hardware target per address-map family)
    rather than the full product -- each target costs one run per
    program.  The identity policy contributes nothing: ``bump`` targets
    are already in :data:`FUZZ_TARGETS`.
    """
    if policy == CERBERUS.allocator:
        return ()
    from repro.impls.registry import (
        CLANG_MORELLO_O0, CLANG_RISCV_O3, with_allocator,
    )
    return tuple(FuzzTarget.of(with_allocator(impl, policy))
                 for impl in (CERBERUS, CLANG_MORELLO_O0, CLANG_RISCV_O3))


def evaluate_program(
        program: FuzzProgram | str,
        targets: tuple[FuzzTarget, ...] = FUZZ_TARGETS, *,
        attach_evidence: bool = True,
        budget=None) -> ProgramVerdict:
    """Run one program everywhere and classify every divergence.

    Matched-reference runs are computed lazily (only when a target
    disagrees with the global reference) and cached per configuration,
    so agreeing programs cost one reference run plus one run per target.

    ``budget`` governs every run (see :mod:`repro.robust`): the fuzz
    driver passes its deterministic safety net so a nonterminating
    candidate classifies as ``resource_exhausted`` on every machine
    instead of hanging the campaign.

    When the verdict contains findings and ``attach_evidence`` is on,
    the reference is re-run once with tracing and the explaining event
    of its trace is attached to every finding (the semantic "why"
    behind the outcome pair; see :mod:`repro.fuzz.evidence`).
    """
    source = program.render() if isinstance(program, FuzzProgram) else program

    reference, ref_crash = _safe_run(CERBERUS, source, budget)
    verdict = ProgramVerdict(source=source, reference=reference)
    if ref_crash is not None:
        verdict.divergences.append(Divergence(
            impl_name=CERBERUS.name, cause=Cause.CRASH,
            reference="(crashed)", observed=repr(ref_crash)))
        return verdict
    verdict.outcomes[CERBERUS.name] = reference
    if reference.kind is OutcomeKind.ERROR:
        # The shared frontend rejected the program: a generator bug, not
        # a property of any implementation.
        verdict.divergences.append(Divergence(
            impl_name=CERBERUS.name, cause=Cause.FRONTEND,
            reference=reference.describe(), observed=reference.describe(),
            detail=reference.detail))
        return verdict

    ref_sig = outcome_signature(reference)
    local_cache: dict[tuple, tuple[Outcome | None, BaseException | None]] = {}

    def local_oracle(impl: Implementation):
        key = _reference_key(impl)
        if key not in local_cache:
            local_cache[key] = _safe_run(impl, source, budget)
        return local_cache[key]

    local_cache[_reference_key(CERBERUS)] = (reference, None)

    for target in targets:
        outcome, crash = _safe_run(target.impl, source, budget)
        if crash is not None:
            verdict.divergences.append(Divergence(
                impl_name=target.impl.name, cause=Cause.CRASH,
                reference=reference.describe(), observed=repr(crash)))
            continue
        verdict.outcomes[target.impl.name] = outcome
        sig = outcome_signature(outcome)
        if sig == ref_sig:
            continue

        local, local_crash = local_oracle(target.reference)
        if local_crash is not None:
            verdict.divergences.append(Divergence(
                impl_name=target.reference.name, cause=Cause.CRASH,
                reference=reference.describe(), observed=repr(local_crash)))
            continue

        cause = Cause.UNEXPLAINED
        if sig == outcome_signature(local):
            cause = target.known_cause()
            if cause is Cause.BOUNDS_SETTING_MODE:
                # The sub-object target also runs a non-reference address
                # map; attribute to the map when it alone explains the
                # behaviour (bounds narrowing irrelevant).
                plain = replace(target.reference,
                                name=target.reference.name + ":plain",
                                subobject_bounds=False)
                plain_out, plain_crash = local_oracle(plain)
                if plain_crash is None and \
                        sig == outcome_signature(plain_out):
                    cause = Cause.ADDRESS_MAP
            elif cause is Cause.ALLOCATOR_POLICY:
                # A non-bump target may also run a non-reference address
                # map; attribute to the map when the bump-policy matched
                # reference already reproduces the behaviour (heap reuse
                # irrelevant).
                bump = replace(target.reference,
                               name=target.reference.name + ":bump",
                               allocator=CERBERUS.allocator)
                bump_out, bump_crash = local_oracle(bump)
                if bump_crash is None and \
                        sig == outcome_signature(bump_out):
                    cause = Cause.ADDRESS_MAP
        elif local.kind is OutcomeKind.UNDEFINED and (
                target.impl.mode is Mode.HARDWARE
                or target.impl.opt_level > 0):
            cause = Cause.UB_LICENSED
        elif (local.kind is OutcomeKind.EXIT and local.unspecified
                and outcome.kind is OutcomeKind.EXIT
                and outcome.stdout == local.stdout):
            # The matched reference's exit status is an S3.5 unspecified
            # value; the target merely picked a concrete bit pattern.
            cause = Cause.UNSPECIFIED_VALUE

        verdict.divergences.append(Divergence(
            impl_name=target.impl.name, cause=cause,
            reference=reference.describe(), observed=outcome.describe(),
            detail=outcome.detail))

    if attach_evidence and any(d.is_finding for d in verdict.divergences):
        from repro.fuzz.evidence import reference_evidence
        evidence = reference_evidence(source)
        for div in verdict.divergences:
            if div.is_finding:
                div.evidence = evidence
    return verdict
