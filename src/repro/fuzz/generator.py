"""Seeded generator of well-typed CHERI C programs (the fuzz frontend).

Programs are built from a small statement IR rather than raw text so the
shrinker (:mod:`repro.fuzz.shrinker`) can delete and simplify statements
while keeping the program well-typed by construction.  Every program has
the same typed prologue -- a stack array, a heap allocation, a struct
holding a pointer, ``(u)intptr_t`` mirrors, and an accumulator -- and a
generated sequence of straight-line statements drawn from the Table 1
categories: pointer arithmetic, ``(u)intptr_t`` round trips and bitwise
masking, casts, struct/array sub-object access, ``malloc``/``free``
lifetimes, and equality/relational operators.  The weights favour the
provenance- and representability-sensitive shapes whose divergences are
the paper's S5 headline findings (``& UINT_MAX`` / ``& INT_MAX`` masking,
bounds setting, byte-level capability pokes).

Everything is driven by one :class:`random.Random` so a seed fully
reproduces a run; no iteration order depends on hash randomisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

#: Masks for the Appendix-A ``intptr_t`` bitwise experiments.  Whether a
#: mask is the identity depends on the implementation's allocator address
#: ranges, which is exactly the S5 divergence the fuzzer must exercise.
MASKS = (0xffffffff,        # UINT_MAX
         0x7fffffff,        # INT_MAX
         0xffffffffffff,    # 48-bit virtual-address mask
         ~0x7 & 0xffffffffffffffff,   # alignment mask
         0xffffffffffffffff)          # identity on any 64-bit address


@dataclass(frozen=True)
class FuzzStmt:
    """One generated statement: a template plus shrinkable integer slots.

    ``template`` is a ``str.format`` string whose ``{0}``/``{1}``/...
    fields are filled from ``slots``.  The shrinker may drop the whole
    statement or move a slot toward zero; both keep the program
    well-typed because templates only parameterise integer literals.
    """

    tag: str
    template: str
    slots: tuple[int, ...] = ()

    def render(self) -> str:
        return "  " + self.template.format(*self.slots)

    def with_slot(self, index: int, value: int) -> "FuzzStmt":
        slots = list(self.slots)
        slots[index] = value
        return replace(self, slots=tuple(slots))

    def to_dict(self) -> dict:
        return {"tag": self.tag, "template": self.template,
                "slots": list(self.slots)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzStmt":
        return cls(tag=payload["tag"], template=payload["template"],
                   slots=tuple(int(s) for s in payload.get("slots", ())))


@dataclass(frozen=True)
class FuzzProgram:
    """A generated program: prologue parameters plus the statement list."""

    arr_len: int
    heap_len: int
    stmts: tuple[FuzzStmt, ...]

    def render(self) -> str:
        lines = [
            "#include <stdint.h>",
            "#include <string.h>",
            "#include <stdlib.h>",
            "#include <cheriintrin.h>",
            "struct pair { int x; int *q; };",
            "union upack { int *q; uintptr_t bits; "
            "unsigned char bytes[16]; };",
            "int main(void) {",
            f"  int a[{self.arr_len}];",
            f"  for (int i = 0; i < {self.arr_len}; i++) a[i] = i + 1;",
            f"  int *h = (int *)malloc({self.heap_len} * sizeof(int));",
            f"  for (int i = 0; i < {self.heap_len}; i++) h[i] = 64 + i;",
            "  int freed = 0;",
            "  int *p = a;",
            "  struct pair s;",
            "  s.x = 1;",
            "  s.q = a;",
            "  uintptr_t u = (uintptr_t)p;",
            "  intptr_t ip = (intptr_t)p;",
            "  union upack w;",
            "  w.q = a;",
            "  int acc = 0;",
        ]
        lines.extend(stmt.render() for stmt in self.stmts)
        lines.append("  if (!freed) free(h);")
        lines.append("  return acc & 63;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def without_stmt(self, index: int) -> "FuzzProgram":
        stmts = self.stmts[:index] + self.stmts[index + 1:]
        return replace(self, stmts=stmts)

    def with_stmt(self, index: int, stmt: FuzzStmt) -> "FuzzProgram":
        stmts = list(self.stmts)
        stmts[index] = stmt
        return replace(self, stmts=tuple(stmts))

    def to_dict(self) -> dict:
        """JSON form (the corpus persists the IR, not just the render,
        so mutation can splice stored seeds structurally)."""
        return {"arr_len": self.arr_len, "heap_len": self.heap_len,
                "stmts": [s.to_dict() for s in self.stmts]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzProgram":
        return cls(arr_len=int(payload["arr_len"]),
                   heap_len=int(payload["heap_len"]),
                   stmts=tuple(FuzzStmt.from_dict(s)
                               for s in payload.get("stmts", ())))


class ProgramGenerator:
    """Weighted random programs over the supported C subset.

    ``heap_reuse`` extends the catalogue with the free-then-malloc and
    dangling-read shapes that make allocator-policy divergences
    reachable (``repro fuzz --allocator ...``).  It is off by default
    so the blind generator's byte-for-byte program stream -- which
    seeds, shards, and the bench coverage baseline all rely on -- is
    unchanged unless the axis is requested.
    """

    def __init__(self, rng: random.Random,
                 heap_reuse: bool = False) -> None:
        self.rng = rng
        self.heap_reuse = heap_reuse

    # -- statement builders -------------------------------------------------
    # Each builder returns one FuzzStmt; ``n``/``m`` are the stack-array
    # and heap lengths so index choices can straddle the bounds edge.

    def _ptr_from_array(self, n: int, m: int) -> FuzzStmt:
        off = self.rng.choice([0, 1, n - 1, n, n + 1, -1,
                               self.rng.randint(0, n)])
        return FuzzStmt("ptr-arith", "p = a + {0};", (off,))

    def _ptr_step(self, n: int, m: int) -> FuzzStmt:
        step = self.rng.choice([-2, -1, 1, 2, n])
        return FuzzStmt("ptr-arith", "p = p + {0};", (step,))

    def _deref_read(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("deref-read", "acc += *p;")

    def _deref_write(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("deref-write", "*p = {0};", (self.rng.randint(0, 9),))

    def _index(self, n: int, m: int) -> FuzzStmt:
        i = self.rng.choice([0, n - 1, n, self.rng.randint(0, n)])
        if self.rng.random() < 0.5:
            return FuzzStmt("index-read", "acc += a[{0}];", (i,))
        return FuzzStmt("index-write", "a[{0}] = {1};",
                        (i, self.rng.randint(0, 9)))

    def _intptr_roundtrip(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("intptr-roundtrip",
                        "ip = (intptr_t)p; p = (int *)ip;")

    def _uintptr_mask(self, n: int, m: int) -> FuzzStmt:
        mask = self.rng.choice(MASKS)
        return FuzzStmt("uintptr-mask",
                        "u = (uintptr_t)p; u = u & {0:#x}; p = (int *)u;",
                        (mask,))

    def _uintptr_arith(self, n: int, m: int) -> FuzzStmt:
        delta = self.rng.choice([4, 8, 4 * n, 400004])
        op = self.rng.choice(["+", "-"])
        return FuzzStmt("uintptr-arith",
                        "u = u " + op + " {0}; u = u " + op + " {0};"
                        if self.rng.random() < 0.2 else
                        "u = u " + op + " {0};",
                        (delta,))

    def _uintptr_back(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("uintptr-back", "p = (int *)u;")

    def _uintptr_refresh(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("uintptr-refresh", "u = (uintptr_t)p;")

    def _bounds_set(self, n: int, m: int) -> FuzzStmt:
        length = self.rng.choice([0, 4, 4 * n, 4 * n + 4,
                                  self.rng.randint(0, 4 * n + 8)])
        src = self.rng.choice(["a", "p"])
        return FuzzStmt("bounds-set",
                        "p = cheri_bounds_set(" + src + ", {0});", (length,))

    def _intrinsic_read(self, n: int, m: int) -> FuzzStmt:
        call = self.rng.choice([
            "acc += (int)cheri_length_get(p) & 63;",
            "acc += (int)cheri_tag_get(p);",
            "acc += (int)(cheri_base_get(p) <= cheri_address_get(p));",
        ])
        return FuzzStmt("intrinsic-read", call)

    def _subobject(self, n: int, m: int) -> FuzzStmt:
        i = self.rng.randint(0, n - 1)
        choice = self.rng.randrange(3)
        if choice == 0:
            return FuzzStmt("subobject", "s.q = &a[{0}];", (i,))
        if choice == 1:
            return FuzzStmt("subobject", "s.q = s.q + {0}; acc += *s.q;",
                            (self.rng.choice([-1, 0, 1, 2]),))
        return FuzzStmt("subobject", "acc += *s.q;")

    def _struct_int(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("struct-int", "s.x = s.x + {0}; acc += s.x;",
                        (self.rng.randint(0, 5),))

    def _heap_access(self, n: int, m: int) -> FuzzStmt:
        i = self.rng.choice([0, m - 1, m, self.rng.randint(0, m)])
        if self.rng.random() < 0.5:
            return FuzzStmt("heap-read", "acc += h[{0}];", (i,))
        return FuzzStmt("heap-write", "h[{0}] = {1};",
                        (i, self.rng.randint(0, 9)))

    def _free(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("free", "if (!freed) {{ free(h); freed = 1; }}")

    def _free_then_malloc(self, n: int, m: int) -> FuzzStmt:
        # Same padded size class, so reusing policies hand back the old
        # address: the uintptr_t equality probe observes the policy
        # without ever dereferencing a dangling pointer (defined on the
        # abstract machine too).
        return FuzzStmt(
            "free-then-malloc",
            "if (!freed) {{ uintptr_t old = (uintptr_t)h; free(h); "
            "h = (int *)malloc({0} * sizeof(int)); "
            "for (int i = 0; i < {0}; i++) h[i] = 64 + i; "
            "acc += (int)(old == (uintptr_t)h); }}", (m,))

    def _dangling_read(self, n: int, m: int) -> FuzzStmt:
        # UB on the abstract machine (use after free); on hardware the
        # untagged-vs-reused distinction is exactly the allocator axis.
        i = self.rng.randint(0, m - 1)
        return FuzzStmt(
            "dangling-read",
            "if (!freed) {{ free(h); freed = 1; }} acc += h[{0}] & 7;",
            (i,))

    def _equality(self, n: int, m: int) -> FuzzStmt:
        i = self.rng.randint(0, n)
        return FuzzStmt("equality", "if (p == a + {0}) acc += 1;", (i,))

    def _relational_same(self, n: int, m: int) -> FuzzStmt:
        i = self.rng.randint(0, n)
        return FuzzStmt("relational", "if (a < a + {0}) acc += 2;", (i,))

    def _relational_cross(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("relational-cross", "if (p < h) acc += 3;")

    def _ptr_diff(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("ptr-diff", "acc += (int)(p - a);")

    def _cast_chain(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt("cast-chain",
                        "acc += (int)(unsigned char)(u >> {0});",
                        (self.rng.choice([0, 4, 8]),))

    def _memcpy_struct(self, n: int, m: int) -> FuzzStmt:
        return FuzzStmt(
            "memcpy-struct",
            "{{ struct pair t; memcpy(&t, &s, sizeof t); "
            "if (t.q == s.q) acc += 4; }}")

    def _byte_poke(self, n: int, m: int) -> FuzzStmt:
        i = self.rng.randint(0, 7)
        return FuzzStmt(
            "byte-poke",
            "{{ unsigned char *b = (unsigned char *)&s.q; "
            "b[{0}] = b[{0}]; }}", (i,))

    #: (weight, builder) -- weights lean toward the S5-sensitive shapes.
    def _catalogue(self):
        extra = ()
        if self.heap_reuse:
            extra = ((6, self._free_then_malloc),
                     (4, self._dangling_read))
        return (
            (8, self._ptr_from_array),
            (5, self._ptr_step),
            (8, self._deref_read),
            (5, self._deref_write),
            (6, self._index),
            (6, self._intptr_roundtrip),
            (10, self._uintptr_mask),
            (7, self._uintptr_arith),
            (5, self._uintptr_back),
            (4, self._uintptr_refresh),
            (8, self._bounds_set),
            (5, self._intrinsic_read),
            (7, self._subobject),
            (3, self._struct_int),
            (6, self._heap_access),
            (4, self._free),
            (4, self._equality),
            (3, self._relational_same),
            (3, self._relational_cross),
            (4, self._ptr_diff),
            (4, self._cast_chain),
            (3, self._memcpy_struct),
            (4, self._byte_poke),
        ) + extra

    # -- program assembly ---------------------------------------------------

    def generate(self) -> FuzzProgram:
        n = self.rng.randint(2, 8)
        m = self.rng.randint(2, 6)
        catalogue = self._catalogue()
        builders = [b for weight, b in catalogue for _ in range(weight)]
        count = self.rng.randint(3, 10)
        stmts = tuple(self.rng.choice(builders)(n, m) for _ in range(count))
        return FuzzProgram(arr_len=n, heap_len=m, stmts=stmts)
