"""The suite as a bug finder (S5.2/S5.3).

The paper's suite found real bugs in Clang, GCC, and CheriBSD's
jemalloc.  Our simulated implementations are bug-free by construction,
so we seed realistic bugs of the classes the paper reports
(:mod:`repro.impls.faults`) and verify the suite detects every one --
and that it localises each to the semantically relevant categories.
"""

from __future__ import annotations

from conftest import emit_report

from repro.impls.faults import FAULTS
from repro.impls.registry import CLANG_MORELLO_O0
from repro.memory.model import Mode
from repro.testsuite.compare import run_suite


def run_all():
    baseline = run_suite(CLANG_MORELLO_O0)
    seeded = {name: run_suite(impl) for name, impl in FAULTS.items()}
    return baseline, seeded


def render(baseline, seeded) -> str:
    lines = [f"baseline ({CLANG_MORELLO_O0.name}): "
             f"{baseline.failed} failures",
             ""]
    for name, report in seeded.items():
        impl = FAULTS[name]
        caught = report.failures()
        lines.append(f"{name}: {impl.description}")
        lines.append(f"    detected by {len(caught)} suite test(s):")
        for res in caught[:6]:
            lines.append(f"      {res.case.name}: expected "
                         f"{res.expected.describe()}, got "
                         f"{res.outcome.describe()}")
        if len(caught) > 6:
            lines.append(f"      ... and {len(caught) - 6} more")
        lines.append("")
    return "\n".join(lines)


def test_suite_detects_seeded_bugs(benchmark):
    baseline, seeded = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit_report("bug_detection", render(baseline, seeded))

    # The clean implementation passes; every seeded bug is caught.
    assert baseline.failed == 0
    for name, report in seeded.items():
        assert report.failed > 0, f"suite missed the {name} bug"

    # And each bug surfaces in the semantically relevant tests.
    def failing_names(name):
        return {r.case.name for r in seeded[name].failures()}

    assert "stdlib-realloc-moves-capabilities" in \
        failing_names("realloc-drops-tag")
    assert "repr-memcpy-preserves-tag" in failing_names("memcpy-bytewise")
    assert failing_names("malloc-unpadded") & {
        "alloc-heap-disjoint", "alloc-large-padded-representable",
        "alloc-malloc-bounds-cover-request"}
    assert failing_names("const-writable") & {
        "const-object-no-write-perm", "const-write-attempt",
        "const-string-literal"}


def test_bug_detection_is_selective(benchmark):
    """Seeded bugs do not cause indiscriminate failures: each bug breaks
    a focused subset of the suite (the paper's bugs were similarly
    pinpointed to specific tests)."""

    def run():
        return {name: run_suite(impl) for name, impl in FAULTS.items()}

    seeded = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, report in seeded.items():
        assert 0 < report.failed <= 20, (name, report.failed)
