"""E7 -- memory-object-model microbenchmarks (harness health).

The paper reports no performance numbers (it is a semantics paper); these
measure the executable semantics itself so regressions in the oracle's
usability as "a test oracle for more aggressive compiler testing" (S7)
are visible.
"""

from __future__ import annotations

import pytest

from repro.capability import MORELLO
from repro.ctypes import ArrayT, IKind, INT, LONG, Pointer
from repro.impls.registry import CERBERUS_MAP
from repro.memory import (
    IntegerValue, MemoryModel, Mode, MVInteger, MVPointer,
)
from repro.memory.allocation import AllocKind


@pytest.fixture
def model():
    return MemoryModel(MORELLO, Mode.ABSTRACT, CERBERUS_MAP)


def test_bench_allocate_object(benchmark, model):
    benchmark(model.allocate_object, INT, AllocKind.STACK, "x")


def test_bench_load_store_int(benchmark, model):
    p = model.allocate_object(INT, AllocKind.STACK, "x")
    value = MVInteger(INT, IntegerValue.of_int(42))

    def op():
        model.store(INT, p, value)
        return model.load(INT, p)

    out = benchmark(op)
    assert out.ival.value() == 42


def test_bench_load_store_capability(benchmark, model):
    x = model.allocate_object(LONG, AllocKind.STACK, "x")
    slot = model.allocate_object(Pointer(LONG), AllocKind.STACK, "p")
    value = MVPointer(Pointer(LONG), x)

    def op():
        model.store(Pointer(LONG), slot, value)
        return model.load(Pointer(LONG), slot)

    out = benchmark(op)
    assert out.ptr.cap.tag


def test_bench_pointer_arith(benchmark, model):
    t = ArrayT(elem=INT, length=64)
    a = model.allocate_object(t, AllocKind.STACK, "a")
    benchmark(model.array_shift, a, INT, 63)


def test_bench_int_ptr_roundtrip(benchmark, model):
    x = model.allocate_object(INT, AllocKind.STACK, "x")

    def op():
        iv = model.ptr_to_int(x, IKind.UINTPTR)
        return model.int_to_ptr(iv, INT)

    out = benchmark(op)
    assert out.cap.tag


def test_bench_memcpy_capabilities(benchmark, model):
    t = ArrayT(elem=Pointer(INT), length=16)
    x = model.allocate_object(INT, AllocKind.STACK, "x")
    src = model.allocate_object(t, AllocKind.STACK, "src")
    dst = model.allocate_object(t, AllocKind.STACK, "dst")
    for i in range(16):
        slot = src.with_cap(src.cap.with_address(src.address + i * 16))
        model.store(Pointer(INT), slot, MVPointer(Pointer(INT), x))
    benchmark(model.memcpy, dst, src, 16 * 16)


def test_bench_interpreter_throughput(benchmark):
    """End-to-end: a small but non-trivial program through parse,
    (no) optimisation, and evaluation."""
    from repro.impls import CERBERUS
    src = """
#include <stdint.h>
int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
int main(void) {
  int a[32];
  for (int i = 0; i < 32; i++) a[i] = i;
  uintptr_t ip = (uintptr_t)a;
  int *p = (int*)(ip + 8 * sizeof(int));
  return sum(a, 32) + *p - 504;
}
"""
    out = benchmark(CERBERUS.run, src)
    assert out.ok


def test_bench_hardware_mode_overhead(benchmark):
    """Hardware mode skips provenance checks; it should not be slower."""
    from repro.impls import by_name
    src = """
int main(void) {
  int a[64];
  for (int i = 0; i < 64; i++) a[i] = i;
  int s = 0;
  for (int i = 0; i < 64; i++) s += a[i];
  return s == 2016 ? 0 : 1;
}
"""
    impl = by_name("clang-morello-O0")
    out = benchmark(impl.run, src)
    assert out.ok
