"""E6 -- representability ablation (S3.2, S3.10, S5.4).

Sweeps object sizes over both capability formats and reports:

* the exact-representability crossover (Morello: byte-exact through its
  mantissa window; the CHERIoT-style format: byte-exact up to 511 bytes,
  8-byte granules above -- the published CHERIoT property);
* alignment requirements growing with object size;
* the conservative portable envelope of [45 S4.3.5] versus the
  architectural representable window (the S3.3 option (i) vs (ii)
  trade-off): the architectural window always contains the portable one
  for in-bounds objects.
"""

from __future__ import annotations

from conftest import emit_report

from repro.capability import CHERIOT, MORELLO
from repro.capability.concentrate import CompressedBounds
from repro.memory.allocator import representable_region

SIZES = [1, 16, 100, 511, 512, 601, 4095, 4096, 16383, 16384,
         65537, (1 << 20) + 1, (1 << 26) + 5]


def sweep(arch):
    rows = []
    for size in SIZES:
        align, padded = representable_region(arch.compression, size, 1)
        _bounds, exact = CompressedBounds.encode(arch.compression,
                                                 0, size)
        rows.append((size, exact, padded, align))
    return rows


def render() -> str:
    lines = []
    for arch in (MORELLO, CHERIOT):
        lines.append(f"{arch.name} (mantissa {arch.compression.mantissa_width}"
                     f" bits, byte-exact to "
                     f"{arch.compression.max_exact_length}):")
        lines.append("      size    exact@0   padded-size   req-align")
        for size, exact, padded, align in sweep(arch):
            if size >= (1 << arch.address_width):
                continue
            lines.append(f"{size:10d}   {str(exact):>7s}   {padded:11d}"
                         f"   {align:9d}")
        lines.append("")
    return "\n".join(lines)


def test_representability_sweep(benchmark):
    rows = benchmark(sweep, MORELLO)
    emit_report("representability", render())

    by_size = {r[0]: r for r in rows}
    # Morello: byte-exact (at aligned bases) through the mantissa window.
    assert by_size[16383][1] is True
    assert by_size[16384][1] is True          # power of two stays exact
    assert by_size[65537][1] is False         # odd size above the window
    # Padding is monotone and alignment grows with size.
    assert by_size[(1 << 26) + 5][3] > by_size[65537][3] > 1

    cheriot = {r[0]: r for r in sweep(CHERIOT)}
    assert cheriot[511][1] is True            # CHERIoT's published 511 B
    assert cheriot[512][1] is True            # aligned power of two
    assert cheriot[601][1] is False           # odd size above 511
    assert cheriot[601][2] % 8 == 0           # 8-byte granules


def test_portable_envelope_inside_architectural(benchmark):
    """Option (i)'s conservative envelope never exceeds the option (ii)
    architectural window for the object's own footprint."""

    def check():
        violations = []
        for size in (8, 64, 1024, 1 << 16, 1 << 22):
            align, padded = representable_region(MORELLO.compression,
                                                 size, 16)
            base = align * 1024
            bounds, _ = CompressedBounds.encode(MORELLO.compression,
                                                base, padded)
            for addr in (base, base + padded - 1, base + padded):
                if not bounds.is_representable(base, addr):
                    violations.append((size, addr))
        return violations

    violations = benchmark(check)
    assert violations == []


def test_architectural_window_is_implementation_defined(benchmark):
    """S3.3 option (ii): the two formats genuinely differ in how far
    out-of-bounds an address may roam -- the reason the paper makes the
    region implementation-defined rather than fixed."""

    def window_sizes():
        out = {}
        for arch in (MORELLO, CHERIOT):
            bounds, _ = CompressedBounds.encode(arch.compression, 0x4000,
                                                256)
            lo, hi = bounds.representable_limits(0x4000)
            out[arch.name] = hi - lo
        return out

    sizes = benchmark(window_sizes)
    assert sizes["morello"] != sizes["cheriot"]
