"""E5 -- the S3 worked examples: per-implementation outcome matrix.

Regenerates the behaviour the paper narrates for each inline listing of
S3: where the abstract machine flags UB, where unoptimised hardware
traps, and where optimisation makes the program silently "work".
"""

from __future__ import annotations

from dataclasses import replace

from conftest import emit_report

from repro.errors import OutcomeKind
from repro.impls import ALL_IMPLEMENTATIONS, by_name
from repro.impls.registry import CLANG_MORELLO_O3

CLANG_O2 = replace(CLANG_MORELLO_O3, name="clang-morello-O2", opt_level=2)

LISTINGS = {
    "S3.1 doomed OOB write": """
void f(int *p, int i) { int *q = p + i; *q = 42; }
int main(void) { int x=0, y=0; f(&x, 1); return y; }
""",
    "S3.1 doomed write, &x escapes": """
int *g;
void f(int *p, int i) { int *q = p + i; *q = 42; }
int main(void) { int x=0, y=0; g = &x; f(&x, 1); return y; }
""",
    "S3.1 in-bounds assumption g(1)": """
void h(char *a) { a[0] = 9; }
char g(int i) { char a[1]; h(a); return a[i]; }
int main(void) { return g(1); }
""",
    "S3.2 transient OOB pointer": """
int main(void) {
  int x[2];
  int *p = &x[0];
  int *q = p + 100001;
  q = q - 100000;
  *q = 1;
  return 0;
}
""",
    "S3.3 transient intptr excursion": """
#include <stdint.h>
void f(int a, int b) {
  int x[2];
  int *p = &x[0];
  uintptr_t i = (uintptr_t)p;
  uintptr_t j = i + a;
  uintptr_t k = j - b;
  int *q = (int*)k;
  *q = 1;
}
int main(void) {
  f(100001*sizeof(int), 100000*sizeof(int));
  return 0;
}
""",
    "S3.4 union type punning": """
#include <stdint.h>
#include <assert.h>
union ptr { int *ptr; uintptr_t iptr; };
int main(void) {
  int arr[] = {42,43};
  union ptr x;
  x.ptr = arr;
  x.iptr += sizeof(int);
  assert (*x.ptr == 43);
  return 0;
}
""",
    "S3.5 identity byte write": """
int main(void) {
  int x = 0;
  int *px = &x;
  unsigned char *p = (unsigned char *)&px;
  p[0] = p[0];
  *px = 1;
  return x;
}
""",
    "S3.5 bytewise pointer copy loop": """
int main(void) {
  int x = 0;
  int *px0 = &x;
  int *px1;
  unsigned char *p0 = (unsigned char *)&px0;
  unsigned char *p1 = (unsigned char *)&px1;
  for (int i=0; i<sizeof(int*); i++)
    p1[i] = p0[i];
  *px1 = 1;
  return x;
}
""",
    "S3.7 intptr array_shift": """
#include <stdint.h>
int* array_shift(int *x, int n) {
  intptr_t ip = (intptr_t)x;
  intptr_t ip1 = sizeof(int)*n + ip;
  int *p = (int*)ip1;
  return p;
}
int main(void) { int a[3]; a[2] = 0; return *array_shift(a, 2); }
""",
}

IMPLS = (by_name("cerberus"), by_name("clang-morello-O0"), CLANG_O2,
         by_name("clang-morello-O3"), by_name("gcc-morello-O3"))


def run_matrix():
    return {title: {impl.name: impl.run(src) for impl in IMPLS}
            for title, src in LISTINGS.items()}


def render(matrix) -> str:
    width = max(len(t) for t in LISTINGS) + 2

    def cell(text: str) -> str:
        short = (text.replace("UB_CHERI_", "")
                 .replace("UB_out_of_bounds_pointer_arithmetic", "oob-arith")
                 .replace("trap: ", "trap:")
                 .replace(" violation", ""))
        return f" | {short:>18s}"

    head = " " * width + "".join(f" | {impl.name:>18s}" for impl in IMPLS)
    lines = [head, "-" * len(head)]
    for title, row in matrix.items():
        cells = "".join(cell(row[impl.name].describe()) for impl in IMPLS)
        lines.append(f"{title:<{width}s}{cells}")
    return "\n".join(lines) + "\n"


def test_paper_listings_matrix(benchmark):
    matrix = benchmark(run_matrix)
    emit_report("paper_listings", render(matrix))

    def kind(title, impl):
        return matrix[title][impl].kind

    UB, TRAP, EXIT = (OutcomeKind.UNDEFINED, OutcomeKind.TRAP,
                      OutcomeKind.EXIT)

    # S3.1: UB / trap at -O0 / gone at -O2 and -O3.
    t = "S3.1 doomed OOB write"
    assert kind(t, "cerberus") is UB
    assert kind(t, "clang-morello-O0") is TRAP
    assert kind(t, "clang-morello-O2") is EXIT
    assert kind(t, "clang-morello-O3") is EXIT

    # S3.1 escaped: the write survives -O2 but not -O3 (the paper's
    # "subtle and hard-to-predict" point).
    t = "S3.1 doomed write, &x escapes"
    assert kind(t, "clang-morello-O2") is TRAP
    assert kind(t, "clang-morello-O3") is EXIT

    # S3.1 g(1): the in-bounds assumption removes the trap at -O3.
    t = "S3.1 in-bounds assumption g(1)"
    assert kind(t, "cerberus") is UB
    assert kind(t, "clang-morello-O0") is TRAP
    assert kind(t, "clang-morello-O3") is EXIT

    # S3.2 / S3.3: transient excursions trap at -O0, collapse at -O3.
    for t in ("S3.2 transient OOB pointer",
              "S3.3 transient intptr excursion"):
        assert kind(t, "cerberus") is UB, t
        assert kind(t, "clang-morello-O0") is TRAP, t
        assert kind(t, "clang-morello-O3") is EXIT, t

    # S3.4 / S3.7: well-defined everywhere.
    for t in ("S3.4 union type punning", "S3.7 intptr array_shift"):
        for impl in IMPLS:
            assert matrix[t][impl.name].ok, (t, impl.name)

    # S3.5: UB / trap at -O0 / silent success once optimised away.
    for t in ("S3.5 identity byte write", "S3.5 bytewise pointer copy loop"):
        assert kind(t, "cerberus") is UB, t
        assert kind(t, "clang-morello-O0") is TRAP, t
        assert kind(t, "clang-morello-O3") is EXIT, t
        assert matrix[t]["clang-morello-O3"].exit_status == 1, t
