"""Trace-subsystem overhead: free when off, measured when on.

Every emission site in the instrumented semantics follows one pattern::

    bus = self.bus
    if bus is not None:
        bus.emit(...)

so a run without a bus attached pays exactly one attribute load plus one
``None`` test per site reached.  This bench bounds that cost: it
microbenchmarks the guard, counts how many guards a representative
workload executes (every event a traced run produces, plus the
interpreter's two per-step publications), and asserts the total is at
most 2% of the untraced runtime.  The tracing-*on* cost (full recording
attached) is measured end-to-end and recorded in
``benchmarks/reports/trace_overhead.txt`` -- it is allowed to be
expensive; only the off state must be free.
"""

from __future__ import annotations

import time
import timeit

from conftest import emit_report

from repro.impls import CERBERUS
from repro.obs import EventBus, TraceRecorder

#: Allocation-, derivation-, and check-heavy workload: every guard
#: family (allocator, model, interpreter, intrinsics) runs many times.
WORKLOAD = """
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <limits.h>
int main(void) {
  int total = 0;
  for (int round = 0; round < 24; round++) {
    int a[16];
    for (int i = 0; i < 16; i++) a[i] = i + round;
    int *h = malloc(8 * sizeof(int));
    memcpy(h, a, 8 * sizeof(int));
    intptr_t ip = (intptr_t)a;
    ip = ip & UINT_MAX;
    int *p = (int *)ip;
    for (int i = 0; i < 8; i++) total += p[i] + h[i];
    free(h);
  }
  return total & 1;
}
"""

#: The acceptance bound: untraced instrumentation cost vs runtime.
MAX_OFF_OVERHEAD = 0.02

#: Repetitions for wall-clock medians.
RUNS = 5


def _median_seconds(fn) -> float:
    samples = []
    for _ in range(RUNS):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _run_untraced():
    outcome = CERBERUS.run(WORKLOAD)
    assert outcome.ok, outcome.describe()
    return outcome


def _run_traced():
    bus = EventBus()
    recorder = TraceRecorder()
    recorder.attach(bus)
    outcome = CERBERUS.run(WORKLOAD, bus=bus)
    assert outcome.ok, outcome.describe()
    return recorder, bus


def _guard_cost_seconds() -> float:
    """Per-execution cost of the emission-site guard pattern, measured
    on a real model instance (attribute load + None test), loop
    overhead included -- a deliberate overestimate."""
    model = CERBERUS.fresh_model()
    assert model.bus is None
    number = 200_000
    total = timeit.timeit("bus = m.bus\nif bus is not None:\n    pass",
                          globals={"m": model}, number=number)
    return total / number


def test_trace_overhead(benchmark):
    recorder, bus = benchmark(_run_traced)
    untraced = _median_seconds(_run_untraced)
    traced = _median_seconds(_run_traced)

    # Guards executed by the untraced run: one per event a traced run
    # emits, one per site that checks but does not emit (bounded by the
    # emit count again -- dedup/no-transition sites), plus the
    # interpreter's two per-step publications.
    events = recorder.seen
    steps = bus.step
    guards = 2 * events + 2 * steps
    per_guard = _guard_cost_seconds()
    off_overhead = guards * per_guard / untraced

    lines = [
        "Trace subsystem overhead (bench_trace_overhead)",
        "",
        f"workload:             {steps} interpreter steps, "
        f"{events} events when traced",
        f"untraced runtime:     {untraced * 1e3:8.2f} ms (median of "
        f"{RUNS})",
        f"traced runtime:       {traced * 1e3:8.2f} ms (median of "
        f"{RUNS}, recorder attached)",
        f"tracing-on cost:      {traced / untraced:8.2f}x untraced",
        "",
        f"guard microbench:     {per_guard * 1e9:8.1f} ns per site "
        f"(attribute load + None test)",
        f"guards executed:      {guards} (2 x events + 2 x steps, "
        f"conservative)",
        f"tracing-off overhead: {off_overhead * 100:8.3f}% of untraced "
        f"runtime",
        f"budget:               {MAX_OFF_OVERHEAD * 100:8.3f}%",
        "",
        f"verdict: {'PASS' if off_overhead <= MAX_OFF_OVERHEAD else 'FAIL'}"
        f" -- tracing costs nothing measurable unless a bus is attached",
    ]
    emit_report("trace_overhead", "\n".join(lines) + "\n")

    assert off_overhead <= MAX_OFF_OVERHEAD, (
        f"untraced guard overhead {off_overhead * 100:.3f}% exceeds the "
        f"{MAX_OFF_OVERHEAD * 100:.0f}% budget")
