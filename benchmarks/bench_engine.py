#!/usr/bin/env python
"""Engine benchmark: serial vs cached vs parallel suite + fuzz runs.

Measures the execution engine (:mod:`repro.perf`) on its two real
workloads and appends one entry to the ``BENCH_engine.json`` trajectory
at the repository root:

* the S5 compliance comparison (``repro compare``) -- serial uncached
  baseline, cold-cache serial, and cached + parallel (``--jobs``);
* differential fuzzing throughput (``repro fuzz``) -- serial vs
  parallel candidate evaluation for a fixed seed and iteration count.

Correctness is part of the benchmark: the run **fails (exit 1) if the
parallel compliance report or the parallel fuzz groups diverge from the
serial ones**, so CI's benchmark smoke job doubles as a determinism
gate for the worker pool.

Usage::

    python benchmarks/bench_engine.py [--quick] [--jobs N]
                                      [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz.driver import run_fuzz                      # noqa: E402
from repro.impls import ALL_IMPLEMENTATIONS                 # noqa: E402
from repro.perf import clear_cache, global_cache, resolve_jobs  # noqa: E402
from repro.reporting.tables import render_compliance        # noqa: E402
from repro.testsuite.compare import compare_implementations  # noqa: E402
from repro.testsuite.suite import all_cases                 # noqa: E402

SCHEMA_VERSION = 1


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_compare(cases, jobs):
    """The three engine configurations over the compliance comparison."""
    clear_cache()
    serial, t_serial = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=False))

    clear_cache()
    cached, t_cached = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True))
    cache_stats = global_cache().stats.to_dict()

    clear_cache()
    parallel, t_parallel = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=jobs, use_cache=True))

    reports = {
        "serial": render_compliance(serial),
        "cached": render_compliance(cached),
        "parallel": render_compliance(parallel),
    }
    timings = {
        "serial_uncached_s": round(t_serial, 4),
        "cached_s": round(t_cached, 4),
        "cached_parallel_s": round(t_parallel, 4),
        "speedup_cached": round(t_serial / t_cached, 3),
        "speedup_cached_parallel": round(t_serial / t_parallel, 3),
        "compile_cache": cache_stats,
    }
    return reports, timings


def fuzz_signature(report):
    """The order-sensitive content of a fuzz report (for equality)."""
    return {
        "iterations": report.iterations,
        "reference_counts": report.reference_counts,
        "groups": [g.describe() for g in report.sorted_groups()],
        "minimized": sorted(g.minimized_source or ""
                            for g in report.groups),
    }


def bench_fuzz(seed, iterations, jobs, shrink_budget):
    clear_cache()
    serial, t_serial = timed(lambda: run_fuzz(
        seed=seed, iterations=iterations, jobs=1,
        shrink_budget=shrink_budget, use_cache=True))
    clear_cache()
    parallel, t_parallel = timed(lambda: run_fuzz(
        seed=seed, iterations=iterations, jobs=jobs,
        shrink_budget=shrink_budget, use_cache=True))
    signatures = {
        "serial": fuzz_signature(serial),
        "parallel": fuzz_signature(parallel),
    }
    timings = {
        "iterations": iterations,
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "serial_programs_per_s": round(iterations / t_serial, 3),
        "parallel_programs_per_s": round(iterations / t_parallel, 3),
        "speedup_parallel": round(t_serial / t_parallel, 3),
    }
    return signatures, timings


def append_trajectory(path: pathlib.Path, entry: dict) -> None:
    trajectory = {"schema": SCHEMA_VERSION, "benchmark": "engine",
                  "entries": []}
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    trajectory["entries"].append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n",
                    encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker count for the parallel runs "
                             "(default: all cores)")
    parser.add_argument("--output", default=str(REPO_ROOT /
                                                "BENCH_engine.json"),
                        metavar="FILE",
                        help="trajectory file to append to")
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    cases = all_cases()
    if args.quick:
        cases = cases[:30]
    fuzz_iterations = 24 if args.quick else 80
    shrink_budget = 20 if args.quick else 60

    print(f"engine benchmark: {len(cases)} suite cases x "
          f"{len(ALL_IMPLEMENTATIONS)} impls, {fuzz_iterations} fuzz "
          f"iterations, jobs={jobs} "
          f"({os.cpu_count()} cores)", flush=True)

    compare_reports, compare_timings = bench_compare(cases, jobs)
    fuzz_signatures, fuzz_timings = bench_fuzz(
        seed=0, iterations=fuzz_iterations, jobs=jobs,
        shrink_budget=shrink_budget)

    ok = True
    if compare_reports["cached"] != compare_reports["serial"]:
        print("FAIL: cached compliance report diverges from serial",
              file=sys.stderr)
        ok = False
    if compare_reports["parallel"] != compare_reports["serial"]:
        print("FAIL: parallel compliance report diverges from serial",
              file=sys.stderr)
        ok = False
    if fuzz_signatures["parallel"] != fuzz_signatures["serial"]:
        print("FAIL: parallel fuzz report diverges from serial",
              file=sys.stderr)
        ok = False

    # Throughput gate (ISSUE 4): on a real multi-core box the batched
    # parallel fuzz path must at least match serial throughput.  On a
    # single core (or with jobs=1) parallelism cannot win, so the gate
    # only applies when both the request and the hardware allow it.
    throughput_gated = jobs >= 2 and (os.cpu_count() or 1) >= 2
    if throughput_gated and fuzz_timings["speedup_parallel"] < 1.0:
        print(f"FAIL: parallel fuzz throughput regressed "
              f"({fuzz_timings['speedup_parallel']}x < 1.0x with "
              f"jobs={jobs} on {os.cpu_count()} cores)",
              file=sys.stderr)
        ok = False

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "quick": args.quick,
        "cores": os.cpu_count(),
        "jobs": jobs,
        "suite_cases": len(cases),
        "implementations": len(ALL_IMPLEMENTATIONS),
        "compare": compare_timings,
        "fuzz": fuzz_timings,
        "throughput_gate": throughput_gated,
        "deterministic": ok,
    }
    output = pathlib.Path(args.output)
    append_trajectory(output, entry)

    print(f"compliance: serial {compare_timings['serial_uncached_s']}s, "
          f"cached {compare_timings['cached_s']}s "
          f"({compare_timings['speedup_cached']}x), "
          f"cached+parallel {compare_timings['cached_parallel_s']}s "
          f"({compare_timings['speedup_cached_parallel']}x)")
    print(f"fuzz: serial {fuzz_timings['serial_programs_per_s']} "
          f"programs/s, parallel "
          f"{fuzz_timings['parallel_programs_per_s']} programs/s "
          f"({fuzz_timings['speedup_parallel']}x)")
    print(f"{'OK' if ok else 'DIVERGENCE'}: trajectory entry appended "
          f"to {output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
