#!/usr/bin/env python
"""Engine benchmark: serial vs cached vs parallel suite + fuzz runs.

Measures the execution engine (:mod:`repro.perf`) on its two real
workloads and appends one entry to the ``BENCH_engine.json`` trajectory
at the repository root:

* the S5 compliance comparison (``repro compare``) -- serial uncached
  baseline, cold-cache serial, and cached + parallel (``--jobs``);
* differential fuzzing throughput (``repro fuzz``) -- serial vs
  parallel candidate evaluation for a fixed seed and iteration count;
* the evaluator axis (``--evaluator ast``/``core``/``compiled``) --
  the recursive AST walker against the iterative Core-IR evaluator and
  the direct-threaded compiled backend, on a serial warm-cache
  compliance run (best of three) and on fuzz throughput;
* the warm-start axis (ISSUE 8) -- a cold compliance run populates the
  on-disk compile cache, every in-memory layer is dropped, and the
  re-run must perform **zero frontend compiles** (every Core program
  served from disk) while rendering a byte-identical report;
* the coverage axis (ISSUE 9) -- a guided campaign (``repro fuzz
  --guided``, run in resumed rounds so the corpus scheduler actually
  feeds mutation) against the blind generator on the same number of
  programs, measured as distinct Core ops covered per 1k programs.
  Guided must reach **>= 1.2x** the blind op coverage; below the
  minimum campaign size the gate is skipped and the entry records why
  (``coverage_gate_skipped_reason``);
* the allocator-policy axis (ISSUE 10) -- the compare grid re-run
  under the ``freelist`` and ``quarantine`` policies after a ``bump``
  warm-up.  Compile identity is policy-independent, so the warm grid
  must perform **zero additional frontend compiles** and keep the
  compile-layer hit rates: a policy axis that invalidated compile
  caches would multiply every grid's cost by the policy count.

Every phase runs against its own fresh temporary disk-cache directory,
so the numbers are honest cold/warm measurements and the benchmark
never touches ``~/.cache/repro``.

Correctness is part of the benchmark: the run **fails (exit 1) if the
parallel compliance report or the parallel fuzz groups diverge from the
serial ones, or if any evaluator renders a differing compliance or
fuzz report**, so CI's benchmark smoke job doubles as a determinism
gate for the worker pool.  The evaluator axis additionally gates
**compiled >= 2x AST on the serial warm-cache compliance run** (best of
three timings each): the compiled backend is the process default and
must deliver the speedup that justified it.  Read the compliance
number with its mechanism in mind: warm-cache repeats of a pure run
are served by the compiled backend's run memo (see
:mod:`repro.core.compile`), so the compliance axis measures the warm
steady state the suite actually runs in, while the fuzz axis (fresh
programs every iteration, metered runs, no memo hits) isolates raw
dispatch performance.

Every gate that does not apply records *why* in the trajectory entry
(``gate_skipped_reason``, e.g. ``cores<2`` for the parallel-throughput
gate on a single-core runner) so a skipped gate is distinguishable
from a passed one.

Usage::

    python benchmarks/bench_engine.py [--quick] [--jobs N]
                                      [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz.campaign import run_campaign                # noqa: E402
from repro.fuzz.coverage import Coverage, coverage_of       # noqa: E402
from repro.fuzz.driver import program_for, run_fuzz         # noqa: E402
from repro.impls import ALL_IMPLEMENTATIONS                 # noqa: E402
from repro.perf import (                                    # noqa: E402
    clear_cache,
    configure_disk_cache,
    global_cache,
    resolve_jobs,
    shutdown_workers,
)
from repro.reporting.tables import render_compliance        # noqa: E402
from repro.testsuite.compare import compare_implementations  # noqa: E402
from repro.testsuite.suite import all_cases                 # noqa: E402

SCHEMA_VERSION = 1

# The coverage-axis gate (ISSUE 9): guided must cover >= this multiple
# of the blind generator's distinct Core ops per 1k programs, judged
# only when the campaign is at least COVERAGE_MIN_PROGRAMS programs
# (smaller campaigns have not filled the corpus yet, so the comparison
# would measure noise, not the scheduler).
COVERAGE_GATE = 1.2
COVERAGE_MIN_PROGRAMS = 100


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def fresh_disk(disk_base: pathlib.Path, phase: str) -> None:
    """Point the disk layer at an empty per-phase directory, so each
    phase's cold/warm behaviour is measured, not inherited."""
    configure_disk_cache(enabled=True,
                         directory=str(disk_base / phase))


def bench_compare(cases, jobs, disk_base):
    """The three engine configurations over the compliance comparison."""
    clear_cache()
    serial, t_serial = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=False))

    fresh_disk(disk_base, "compare-cached")
    clear_cache()
    cached, t_cached = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True))
    cache_stats = global_cache().stats.to_dict()

    fresh_disk(disk_base, "compare-parallel")
    clear_cache()
    parallel, t_parallel = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=jobs, use_cache=True))

    reports = {
        "serial": render_compliance(serial),
        "cached": render_compliance(cached),
        "parallel": render_compliance(parallel),
    }
    timings = {
        "serial_uncached_s": round(t_serial, 4),
        "cached_s": round(t_cached, 4),
        "cached_parallel_s": round(t_parallel, 4),
        "speedup_cached": round(t_serial / t_cached, 3),
        "speedup_cached_parallel": round(t_serial / t_parallel, 3),
        "compile_cache": cache_stats,
    }
    return reports, timings


def fuzz_signature(report):
    """The order-sensitive content of a fuzz report (for equality)."""
    return {
        "iterations": report.iterations,
        "reference_counts": report.reference_counts,
        "groups": [g.describe() for g in report.sorted_groups()],
        "minimized": sorted(g.minimized_source or ""
                            for g in report.groups),
    }


def bench_warm_start(cases, disk_base):
    """The warm-start axis (ISSUE 8): a cold run populates the disk
    cache, the in-memory layers are dropped (simulating a fresh
    process over a shared cache directory), and the re-run must serve
    every Core program from disk -- zero frontend compiles -- while
    rendering a byte-identical compliance report."""
    fresh_disk(disk_base, "warm-start")
    clear_cache()
    cold, t_cold = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True))
    clear_cache()  # drops memory layers and stats; the disk survives
    warm, t_warm = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True))
    stats = global_cache().stats
    reports = {"cold": render_compliance(cold),
               "warm": render_compliance(warm)}
    timings = {
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "speedup_warm": round(t_cold / t_warm, 3),
        "compiles_performed": stats.compiles_performed,
        "disk_hit_rate": round(stats.disk.hit_rate, 4),
        "compile_cache": stats.to_dict(),
    }
    return reports, timings


def bench_allocator_grid(cases, disk_base):
    """The allocator-policy axis (ISSUE 10): the compare grid under
    each policy, sharing one compile-cache population.

    A ``bump`` run warms every cache layer; the ``freelist`` and
    ``quarantine`` grids then re-run over the same caches.  Because the
    allocator is a run-only axis (absent from compile/disk keys), the
    whole policy grid must be served from the already-warm compile
    layers: ``compiles_performed`` must not grow at all.
    """
    from repro.impls import with_allocator

    fresh_disk(disk_base, "allocator-grid")
    clear_cache()
    reports = {}
    timings = {}
    _, t_bump = timed(lambda: compare_implementations(
        ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True))
    timings["bump_s"] = round(t_bump, 4)
    compiles_after_bump = global_cache().stats.compiles_performed
    for policy in ("freelist", "quarantine"):
        grid = tuple(with_allocator(impl, policy)
                     for impl in ALL_IMPLEMENTATIONS)
        report, elapsed = timed(lambda: compare_implementations(
            grid, cases, jobs=1, use_cache=True))
        reports[policy] = render_compliance(report)
        timings[f"{policy}_s"] = round(elapsed, 4)
    stats = global_cache().stats
    timings["compiles_after_bump"] = compiles_after_bump
    timings["policy_grid_extra_compiles"] = \
        stats.compiles_performed - compiles_after_bump
    timings["compile_cache"] = stats.to_dict()
    return reports, timings


def bench_fuzz(seed, iterations, jobs, shrink_budget, disk_base):
    fresh_disk(disk_base, "fuzz-serial")
    clear_cache()
    serial, t_serial = timed(lambda: run_fuzz(
        seed=seed, iterations=iterations, jobs=1,
        shrink_budget=shrink_budget, use_cache=True))
    fresh_disk(disk_base, "fuzz-parallel")
    clear_cache()
    parallel, t_parallel = timed(lambda: run_fuzz(
        seed=seed, iterations=iterations, jobs=jobs,
        shrink_budget=shrink_budget, use_cache=True))
    signatures = {
        "serial": fuzz_signature(serial),
        "parallel": fuzz_signature(parallel),
    }
    timings = {
        "iterations": iterations,
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "serial_programs_per_s": round(iterations / t_serial, 3),
        "parallel_programs_per_s": round(iterations / t_parallel, 3),
        "speedup_parallel": round(t_serial / t_parallel, 3),
    }
    return signatures, timings


def bench_evaluators(cases, seed, iterations, shrink_budget, disk_base):
    """The evaluator axis: AST walker vs Core vs compiled, serial.

    Compliance timings are warm-cache best-of-three: one untimed run
    populates the compile/elaboration/threading caches (and, for the
    compiled backend, its snapshots and run memo), then three timed
    runs measure the warm run stage.  That isolates the axis under
    test -- evaluator speed in the steady state the suite actually
    runs in -- from compile-stage cost, which the cold-vs-cached
    compare numbers already capture.  The rendered compliance and fuzz
    reports must be byte-identical across all three evaluators.
    """
    def compliance(evaluator):
        fresh_disk(disk_base, f"eval-{evaluator}")
        clear_cache()
        report, _ = timed(lambda: compare_implementations(
            ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True,
            evaluator=evaluator))
        times = []
        for _ in range(3):
            report, elapsed = timed(lambda: compare_implementations(
                ALL_IMPLEMENTATIONS, cases, jobs=1, use_cache=True,
                evaluator=evaluator))
            times.append(elapsed)
        return render_compliance(report), min(times)

    def fuzz(evaluator):
        fresh_disk(disk_base, f"eval-fuzz-{evaluator}")
        clear_cache()
        report, elapsed = timed(lambda: run_fuzz(
            seed=seed, iterations=iterations, jobs=1,
            shrink_budget=shrink_budget, use_cache=True,
            evaluator=evaluator))
        return fuzz_signature(report), elapsed

    reports = {}
    timings = {}
    t_compliance = {}
    t_fuzz = {}
    for evaluator in ("ast", "core", "compiled"):
        reports[evaluator], t_compliance[evaluator] = compliance(evaluator)
        reports[f"fuzz_{evaluator}"], t_fuzz[evaluator] = fuzz(evaluator)
        timings[f"compliance_{evaluator}_s"] = \
            round(t_compliance[evaluator], 4)
        timings[f"fuzz_{evaluator}_programs_per_s"] = \
            round(iterations / t_fuzz[evaluator], 3)
    timings["speedup_core_compliance"] = \
        round(t_compliance["ast"] / t_compliance["core"], 3)
    timings["speedup_core_fuzz"] = \
        round(t_fuzz["ast"] / t_fuzz["core"], 3)
    timings["speedup_compiled_compliance"] = \
        round(t_compliance["ast"] / t_compliance["compiled"], 3)
    timings["speedup_compiled_fuzz"] = \
        round(t_fuzz["ast"] / t_fuzz["compiled"], 3)
    return reports, timings


def bench_coverage(seed, programs, rounds, disk_base):
    """The coverage axis (ISSUE 9): guided vs blind op coverage.

    The blind baseline unions :func:`coverage_of` over the first
    ``programs`` generator outputs -- exactly what ``repro fuzz``
    evaluates without guidance.  The guided run spends the same program
    budget in a campaign split into ``rounds`` resumed invocations:
    guidance only sharpens at invocation boundaries (the snapshot is
    frozen per invocation), so a single big invocation would mostly
    measure fresh draws.  Both sides count *distinct Core op ids*
    reached on the traced reference run; ``classify=False`` skips the
    differential oracle so the two sides do comparable work per
    program.
    """
    fresh_disk(disk_base, "coverage-blind")
    clear_cache()

    def blind_union():
        covered = Coverage()
        for k in range(programs):
            probe = coverage_of(program_for(seed, k))
            covered = covered.union(probe.coverage)
        return covered

    blind, t_blind = timed(blind_union)

    fresh_disk(disk_base, "coverage-guided")
    clear_cache()
    per_round = programs // rounds

    def guided_union():
        covered = Coverage()
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-corpus-") as corpus:
            for round_index in range(rounds):
                report = run_campaign(
                    seed=seed, iterations=per_round, corpus_dir=corpus,
                    jobs=1, use_cache=True, classify=False,
                    resume=round_index > 0)
                covered = covered.union(report.covered)
        return covered

    guided, t_guided = timed(guided_union)

    guided_programs = per_round * rounds
    blind_per_1k = len(blind.ops) / programs * 1000
    guided_per_1k = len(guided.ops) / max(guided_programs, 1) * 1000
    ratio = (guided_per_1k / blind_per_1k) if blind_per_1k else float("inf")
    timings = {
        "programs": programs,
        "guided_programs": guided_programs,
        "rounds": rounds,
        "blind_s": round(t_blind, 4),
        "guided_s": round(t_guided, 4),
        "blind_ops": len(blind.ops),
        "guided_ops": len(guided.ops),
        "blind_keys": len(blind.keys()),
        "guided_keys": len(guided.keys()),
        "blind_ops_per_1k": round(blind_per_1k, 1),
        "guided_ops_per_1k": round(guided_per_1k, 1),
        "guided_blind_ratio": round(ratio, 3),
    }
    return timings


def coverage_gate_skip_reason(programs: int) -> str:
    """Why the coverage gate does not apply, or ``""``."""
    if programs < COVERAGE_MIN_PROGRAMS:
        return f"programs<{COVERAGE_MIN_PROGRAMS}"
    return ""


def throughput_gate_skip_reason(jobs: int, cores: int | None) -> str:
    """Why the parallel-throughput gate does not apply, or ``""``.

    A skipped gate must be distinguishable from a passed one in the
    trajectory, so the reason is recorded verbatim (``cores<2`` on a
    single-core runner, ``jobs<2`` when parallelism was not requested).
    """
    if (cores or 1) < 2:
        return "cores<2"
    if jobs < 2:
        return "jobs<2"
    return ""


def append_trajectory(path: pathlib.Path, entry: dict) -> None:
    trajectory = {"schema": SCHEMA_VERSION, "benchmark": "engine",
                  "entries": []}
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
    trajectory["entries"].append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n",
                    encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker count for the parallel runs "
                             "(default: all cores)")
    parser.add_argument("--output", default=str(REPO_ROOT /
                                                "BENCH_engine.json"),
                        metavar="FILE",
                        help="trajectory file to append to")
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    cases = all_cases()
    if args.quick:
        cases = cases[:30]
    fuzz_iterations = 24 if args.quick else 80
    shrink_budget = 20 if args.quick else 60
    coverage_programs = 120 if args.quick else 400
    coverage_rounds = 6 if args.quick else 8

    print(f"engine benchmark: {len(cases)} suite cases x "
          f"{len(ALL_IMPLEMENTATIONS)} impls, {fuzz_iterations} fuzz "
          f"iterations, jobs={jobs} "
          f"({os.cpu_count()} cores)", flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        disk_base = pathlib.Path(tmp)
        compare_reports, compare_timings = bench_compare(
            cases, jobs, disk_base)
        warm_reports, warm_timings = bench_warm_start(cases, disk_base)
        _allocator_reports, allocator_timings = bench_allocator_grid(
            cases, disk_base)
        fuzz_signatures, fuzz_timings = bench_fuzz(
            seed=0, iterations=fuzz_iterations, jobs=jobs,
            shrink_budget=shrink_budget, disk_base=disk_base)
        evaluator_reports, evaluator_timings = bench_evaluators(
            cases, seed=0, iterations=fuzz_iterations,
            shrink_budget=shrink_budget, disk_base=disk_base)
        coverage_timings = bench_coverage(
            seed=0, programs=coverage_programs, rounds=coverage_rounds,
            disk_base=disk_base)
        shutdown_workers()  # release the warm pool before the dir goes
    configure_disk_cache(enabled=False, directory=None)

    ok = True
    if compare_reports["cached"] != compare_reports["serial"]:
        print("FAIL: cached compliance report diverges from serial",
              file=sys.stderr)
        ok = False
    if compare_reports["parallel"] != compare_reports["serial"]:
        print("FAIL: parallel compliance report diverges from serial",
              file=sys.stderr)
        ok = False
    if fuzz_signatures["parallel"] != fuzz_signatures["serial"]:
        print("FAIL: parallel fuzz report diverges from serial",
              file=sys.stderr)
        ok = False
    # Warm-start gate (ISSUE 8): applies on every runner -- a
    # warm-started process must serve every Core program from the
    # shared disk cache (zero frontend compiles) and render the same
    # report the cold run did.
    if warm_reports["warm"] != warm_reports["cold"]:
        print("FAIL: warm-started compliance report diverges from cold",
              file=sys.stderr)
        ok = False
    if warm_timings["compiles_performed"] != 0:
        print(f"FAIL: warm start performed "
              f"{warm_timings['compiles_performed']} compiles "
              f"(expected 0: every Core program should come from disk)",
              file=sys.stderr)
        ok = False
    # Allocator-grid gate (ISSUE 10): the policy axis is run-only, so
    # the freelist/quarantine grids must add zero frontend compiles
    # over the bump warm-up -- compile layers are shared across the
    # whole policy grid.
    if allocator_timings["policy_grid_extra_compiles"] != 0:
        print(f"FAIL: allocator-policy grid performed "
              f"{allocator_timings['policy_grid_extra_compiles']} extra "
              f"compiles (expected 0: compile identity is "
              f"policy-independent)", file=sys.stderr)
        ok = False
    for other in ("core", "compiled"):
        if evaluator_reports[other] != evaluator_reports["ast"]:
            print(f"FAIL: {other}-evaluator compliance report diverges "
                  f"from the AST walker's", file=sys.stderr)
            ok = False
        if evaluator_reports[f"fuzz_{other}"] != evaluator_reports["fuzz_ast"]:
            print(f"FAIL: {other}-evaluator fuzz report diverges from "
                  f"the AST walker's", file=sys.stderr)
            ok = False

    # Evaluator-cost gate (ISSUE 6): the compiled backend is the
    # process default, so it must deliver >= 2x over the AST walker on
    # the serial warm-cache compliance run (best-of-three each).  The
    # Core evaluator's timings are still reported -- it is the
    # debugging oracle, not the default -- but no longer gated.
    if evaluator_timings["speedup_compiled_compliance"] < 2.0:
        print(f"FAIL: compiled backend below the 2x compliance gate "
              f"({evaluator_timings['compliance_compiled_s']}s vs "
              f"{evaluator_timings['compliance_ast_s']}s = "
              f"{evaluator_timings['speedup_compiled_compliance']}x)",
              file=sys.stderr)
        ok = False

    # Throughput gate (ISSUE 4, tightened by ISSUE 8): with persistent
    # warm workers the batched parallel fuzz path must *beat* serial by
    # 1.5x on a real multi-core box, not merely match it.  On a single
    # core (or with jobs=1) parallelism cannot win, so the gate only
    # applies when both the request and the hardware allow it -- and
    # when it does not, the entry records why.
    throughput_gated = jobs >= 2 and (os.cpu_count() or 1) >= 2
    gate_skipped_reason = throughput_gate_skip_reason(jobs, os.cpu_count())
    if throughput_gated and fuzz_timings["speedup_parallel"] < 1.5:
        print(f"FAIL: parallel fuzz throughput below the 1.5x gate "
              f"({fuzz_timings['speedup_parallel']}x with "
              f"jobs={jobs} on {os.cpu_count()} cores)",
              file=sys.stderr)
        ok = False
    if gate_skipped_reason:
        print(f"note: parallel-throughput gate skipped "
              f"({gate_skipped_reason})")

    # Coverage gate (ISSUE 9): the scheduler exists to reach program
    # shapes the blind generator does not, so on any real campaign
    # guided coverage must beat blind by 1.2x distinct Core ops per 1k
    # programs.  Below the minimum campaign size the comparison is
    # noise and the entry records why it was skipped.
    coverage_skipped_reason = coverage_gate_skip_reason(coverage_programs)
    if not coverage_skipped_reason and \
            coverage_timings["guided_blind_ratio"] < COVERAGE_GATE:
        print(f"FAIL: guided coverage below the {COVERAGE_GATE}x gate "
              f"({coverage_timings['guided_ops_per_1k']} vs "
              f"{coverage_timings['blind_ops_per_1k']} ops/1k programs "
              f"= {coverage_timings['guided_blind_ratio']}x)",
              file=sys.stderr)
        ok = False
    if coverage_skipped_reason:
        print(f"note: coverage gate skipped ({coverage_skipped_reason})")

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "quick": args.quick,
        "cores": os.cpu_count(),
        "jobs": jobs,
        "suite_cases": len(cases),
        "implementations": len(ALL_IMPLEMENTATIONS),
        "compare": compare_timings,
        "warm_start": warm_timings,
        "allocator_grid": allocator_timings,
        "fuzz": fuzz_timings,
        "evaluator": evaluator_timings,
        "coverage": coverage_timings,
        "throughput_gate": throughput_gated,
        "gate_skipped_reason": gate_skipped_reason,
        "coverage_gate_skipped_reason": coverage_skipped_reason,
        "deterministic": ok,
    }
    output = pathlib.Path(args.output)
    append_trajectory(output, entry)

    print(f"compliance: serial {compare_timings['serial_uncached_s']}s, "
          f"cached {compare_timings['cached_s']}s "
          f"({compare_timings['speedup_cached']}x), "
          f"cached+parallel {compare_timings['cached_parallel_s']}s "
          f"({compare_timings['speedup_cached_parallel']}x)")
    print(f"warm start: cold {warm_timings['cold_s']}s, warm "
          f"{warm_timings['warm_s']}s "
          f"({warm_timings['speedup_warm']}x), "
          f"{warm_timings['compiles_performed']} compiles, disk hit "
          f"rate {warm_timings['disk_hit_rate']}")
    print(f"allocator grid: bump {allocator_timings['bump_s']}s, "
          f"freelist {allocator_timings['freelist_s']}s, quarantine "
          f"{allocator_timings['quarantine_s']}s, "
          f"{allocator_timings['policy_grid_extra_compiles']} extra "
          f"compiles")
    print(f"fuzz: serial {fuzz_timings['serial_programs_per_s']} "
          f"programs/s, parallel "
          f"{fuzz_timings['parallel_programs_per_s']} programs/s "
          f"({fuzz_timings['speedup_parallel']}x)")
    print(f"evaluator compliance: ast "
          f"{evaluator_timings['compliance_ast_s']}s, core "
          f"{evaluator_timings['compliance_core_s']}s "
          f"({evaluator_timings['speedup_core_compliance']}x), compiled "
          f"{evaluator_timings['compliance_compiled_s']}s "
          f"({evaluator_timings['speedup_compiled_compliance']}x)")
    print(f"evaluator fuzz: ast "
          f"{evaluator_timings['fuzz_ast_programs_per_s']}, core "
          f"{evaluator_timings['fuzz_core_programs_per_s']} "
          f"({evaluator_timings['speedup_core_fuzz']}x), compiled "
          f"{evaluator_timings['fuzz_compiled_programs_per_s']} "
          f"programs/s ({evaluator_timings['speedup_compiled_fuzz']}x)")
    print(f"coverage: blind {coverage_timings['blind_ops_per_1k']} "
          f"ops/1k, guided {coverage_timings['guided_ops_per_1k']} "
          f"ops/1k ({coverage_timings['guided_blind_ratio']}x over "
          f"{coverage_timings['programs']} programs, "
          f"{coverage_timings['rounds']} rounds)")
    print(f"{'OK' if ok else 'DIVERGENCE'}: trajectory entry appended "
          f"to {output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
