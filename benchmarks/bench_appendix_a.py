"""E3 -- Appendix A: bitwise operations on intptr_t across
implementations.

Regenerates the paper's sample test-suite output: the ``cap``,
``cap&uint``, ``cap&int`` trace lines for the reference semantics and
each simulated compiler.  The shape to match (Appendix A):

* cerberus: ``cap&uint`` unchanged; ``cap&int`` gets ``[?-?] (notag)``
  (ghost non-representability) because its stack sits just below 2^32;
* clang (RISC-V and Morello, any -O): both masks relocate the address
  far below the allocation -> ``(invalid)``;
* gcc: neither mask changes anything (stack below 2^31).
"""

from __future__ import annotations

from conftest import emit_report

from repro.impls import APPENDIX_IMPLEMENTATIONS, by_name

# The paper's Appendix A listing, VERBATIM (capprint.h's sptr/PTR_FMT
# are provided by the runtime).
APPENDIX_SRC = r"""
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
#include "capprint.h"

int main(void) {
  int x[2]={42,43};
  intptr_t ip = (intptr_t)&x;
  fprintf(stderr,"cap %" PTR_FMT "\n", sptr((void*)ip));
  intptr_t ip2 = ip & UINT_MAX;
  fprintf(stderr,"cap&uint %" PTR_FMT "\n", sptr((void*)ip2));
  intptr_t ip3 = ip & INT_MAX;
  fprintf(stderr,"cap&int %" PTR_FMT "\n", sptr((void*)ip3));
}
"""


def run_all():
    return {impl.name: impl.run(APPENDIX_SRC)
            for impl in APPENDIX_IMPLEMENTATIONS}


def test_appendix_a_output(benchmark):
    outputs = benchmark(run_all)

    blocks = []
    for impl in APPENDIX_IMPLEMENTATIONS:
        out = outputs[impl.name]
        assert out.ok, (impl.name, out.describe())
        blocks.append(f"{impl.name}:\n{out.stdout}")
    emit_report("appendix_a", "\n".join(blocks))

    # --- the paper's qualitative shape -------------------------------
    cerb = outputs["cerberus"].stdout.splitlines()
    assert "notag" not in cerb[0] and "notag" not in cerb[1]
    assert "[?-?]" in cerb[2] and "(notag)" in cerb[2]

    for name in ("clang-riscv-O0", "clang-riscv-O3",
                 "clang-morello-O0", "clang-morello-O3"):
        lines = outputs[name].stdout.splitlines()
        assert "(invalid)" not in lines[0], name
        assert "(invalid)" in lines[1], name
        assert "(invalid)" in lines[2], name

    for name in ("gcc-morello-O0", "gcc-morello-O3"):
        assert "(invalid)" not in outputs[name].stdout, name


def test_appendix_masked_addresses_match_mask_semantics(benchmark):
    """The address part of the masked values is always the plain integer
    mask result (S3.3: the integer value stays defined)."""
    src = """
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
int main(void) {
  int x[2];
  intptr_t ip = (intptr_t)&x;
  printf("%zx %zx %zx\\n",
         (ptraddr_t)ip,
         (ptraddr_t)(ip & UINT_MAX),
         (ptraddr_t)(ip & INT_MAX));
  return 0;
}
"""

    def run():
        return {impl.name: impl.run(src)
                for impl in APPENDIX_IMPLEMENTATIONS}

    outputs = benchmark(run)
    for name, out in outputs.items():
        assert out.ok
        full, muint, mint = (int(v, 16) for v in out.stdout.split())
        assert muint == full & 0xFFFFFFFF, name
        assert mint == full & 0x7FFFFFFF, name
