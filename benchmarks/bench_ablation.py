"""Ablation -- the S3 design options, measured.

The paper argues for its choices qualitatively ("that would break many
common C idioms", "porting code is most straightforward with the third
option").  This bench measures those arguments: it runs a corpus of
real-world C idioms under every enumerated option for the S3.2, S3.3,
and S3.6 questions and counts what survives.

Shape to match (the paper's reasoning):

* S3.3: option (1) breaks intptr idioms that roam out of bounds; option
  (2) additionally breaks only the far-roaming ones; option (3) -- the
  paper's choice -- keeps every idiom whose *integer* result is used,
  defining strictly more programs than (1) and (2);
* S3.6: options (1)/(2) make address-equal capabilities with different
  metadata compare unequal, breaking equality-based idioms that the
  paper's option (3) keeps;
* S3.2: options (b)/(c) admit the below-the-object excursions option
  (a) rejects, at the cost the paper describes.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import emit_report

from repro.errors import OutcomeKind
from repro.impls import CERBERUS
from repro.memory.options import (
    EqualityPolicy, IntptrPolicy, OOBArithPolicy, SemanticsOptions,
)

INTPTR_IDIOMS = {
    "in-bounds uintptr indexing": """
#include <stdint.h>
int main(void) {
  int a[8]; a[3] = 1;
  uintptr_t u = (uintptr_t)a;
  return *(int *)(u + 3 * sizeof(int)) - 1;
}
""",
    "hash an address (value only)": """
#include <stdint.h>
int main(void) {
  int x;
  uintptr_t u = (uintptr_t)&x;
  uintptr_t h = (u * 2654435761u) >> 16;   /* roams far out of bounds */
  return (int)(h & 0);
}
""",
    "offset-then-restore": """
#include <stdint.h>
int main(void) {
  int x = 5;
  uintptr_t u = (uintptr_t)&x;
  uintptr_t moved = u + (1 << 20);     /* leaves representable range */
  uintptr_t back = moved - (1 << 20);
  return (int)(back - u);              /* integer result: 0 */
}
""",
    "align-down within object": """
#include <stdint.h>
int main(void) {
  long v = 9;
  uintptr_t u = (uintptr_t)&v;
  long *p = (long *)(u & ~(uintptr_t)(sizeof(long) - 1));
  return (int)(*p - 9);
}
""",
}

EQUALITY_IDIOMS = {
    "untagged copy compares equal": """
#include <cheriintrin.h>
int main(void) {
  int x;
  int *p = &x;
  int *q = cheri_tag_clear(p);
  return p == q ? 0 : 1;
}
""",
    "narrowed capability compares equal": """
#include <cheriintrin.h>
int main(void) {
  char buf[32];
  char *n = cheri_bounds_set(buf, 8);
  return buf == n ? 0 : 1;
}
""",
    "pointer vs intptr view": """
#include <stdint.h>
int main(void) {
  int x;
  int *p = &x;
  intptr_t ip = (intptr_t)p;
  return (int *)ip == p ? 0 : 1;
}
""",
}

OOB_IDIOMS = {
    "one-below transient (decreasing loop shape)": """
int main(void) {
  int a[4];
  int *p = &a[0];
  int *below = p - 1;       /* constructed, never dereferenced */
  (void)below;
  return 0;
}
""",
    "transient +100001": """
int main(void) {
  int x[2];
  int *p = &x[0];
  int *q = p + 100001;
  q = q - 100000;
  (void)q;
  return 0;
}
""",
    "one-past (always fine)": """
int main(void) {
  int a[4];
  int *end = a + 4;
  (void)end;
  return 0;
}
""",
}


def run_with(options: SemanticsOptions, corpus: dict[str, str]):
    impl = replace(CERBERUS, name=f"cerberus[{options.describe()}]",
                   options=options)
    return {name: impl.run(src) for name, src in corpus.items()}


def sweep():
    results = {}
    for policy in IntptrPolicy:
        results[("intptr", policy)] = run_with(
            SemanticsOptions(intptr=policy), INTPTR_IDIOMS)
    for policy in EqualityPolicy:
        results[("equality", policy)] = run_with(
            SemanticsOptions(equality=policy), EQUALITY_IDIOMS)
    for policy in OOBArithPolicy:
        results[("oob", policy)] = run_with(
            SemanticsOptions(oob_arith=policy), OOB_IDIOMS)
    return results


def render(results) -> str:
    lines = []
    for axis, corpus in (("intptr", INTPTR_IDIOMS),
                         ("equality", EQUALITY_IDIOMS),
                         ("oob", OOB_IDIOMS)):
        lines.append(f"--- S3 axis: {axis} ---")
        for (ax, policy), outcomes in results.items():
            if ax != axis:
                continue
            ok = sum(1 for o in outcomes.values()
                     if o.kind is OutcomeKind.EXIT and o.exit_status == 0)
            lines.append(f"  {policy.value}")
            lines.append(f"      idioms surviving: {ok}/{len(corpus)}")
            for name, o in outcomes.items():
                lines.append(f"        {name:45s} {o.describe()}")
        lines.append("")
    return "\n".join(lines)


def test_design_option_ablation(benchmark):
    results = benchmark(sweep)
    emit_report("ablation", render(results))

    def survivors(axis, policy):
        return sum(1 for o in results[(axis, policy)].values()
                   if o.kind is OutcomeKind.EXIT and o.exit_status == 0)

    # S3.3: the paper's option (3) defines strictly more idioms.
    s1 = survivors("intptr", IntptrPolicy.UB_OUTSIDE_BOUNDS)
    s2 = survivors("intptr", IntptrPolicy.UB_OUTSIDE_REPRESENTABLE)
    s3 = survivors("intptr", IntptrPolicy.DEFINED_WITH_GHOST)
    assert s3 == len(INTPTR_IDIOMS)
    assert s1 < s3 and s2 < s3
    assert s1 <= s2   # (2) is strictly looser than (1)

    # S3.6: option (3) keeps every equality idiom; (1) and (2) break
    # the metadata-differing comparisons.
    e3 = survivors("equality", EqualityPolicy.ADDRESS_ONLY)
    e1 = survivors("equality", EqualityPolicy.EXACT_WITH_TAGS)
    e2 = survivors("equality", EqualityPolicy.EXACT_WITHOUT_TAGS)
    assert e3 == len(EQUALITY_IDIOMS)
    assert e1 < e3
    assert e1 <= e2 <= e3

    # S3.2: the ISO option rejects both excursions; (b)/(c) accept the
    # small one-below, and everything accepts one-past.
    o_a = results[("oob", OOBArithPolicy.ISO_UB)]
    o_b = results[("oob", OOBArithPolicy.PORTABLE_ENVELOPE)]
    o_c = results[("oob", OOBArithPolicy.ARCH_REPRESENTABLE)]
    assert o_a["one-past (always fine)"].ok
    assert not o_a["one-below transient (decreasing loop shape)"].ok
    assert o_b["one-below transient (decreasing loop shape)"].ok
    assert o_c["one-below transient (decreasing loop shape)"].ok
    # The far transient excursion is beyond even the representable
    # region, so every option rejects it (hence ghost state, S3.3).
    for out in (o_a, o_b, o_c):
        assert not out["transient +100001"].ok


SUBOBJECT_IDIOMS = {
    "container_of via offsetof": """
#include <stddef.h>
struct obj { int hdr; int payload; };
struct obj o = { 7, 42 };
int main(void) {
  int *m = &o.payload;
  struct obj *back = (struct obj *)
      (void *)((char *)m - offsetof(struct obj, payload));
  return back->hdr == 7 ? 0 : 1;
}
""",
    "array walk from member pointer": """
struct vec { int n; int data[4]; };
int main(void) {
  struct vec v = { 4, {1, 2, 3, 4} };
  int *p = &v.data[0];
  int total = 0;
  for (int i = 0; i < v.n; i++) total += p[i];
  return total == 10 ? 0 : 1;
}
""",
    "member overflow into sibling": """
struct pair { int a; int b; };
int main(void) {
  struct pair p;
  p.b = 5;
  int *pa = &p.a;
  return pa[1] == 5 ? 0 : 1;   /* reads b through a's pointer */
}
""",
}


def test_subobject_bounds_ablation(benchmark):
    """S3.8: the default (conservative) mode keeps the container-of and
    member-overflow idioms working; strict sub-object narrowing traps
    them while keeping plain member access fine -- the porting-cost /
    least-privilege trade-off that made the paper keep narrowing off by
    default."""
    from repro.impls import by_name
    conservative = by_name("clang-morello-O0")
    from dataclasses import replace as _replace
    strict = _replace(conservative, name="clang-morello-O0-subobject",
                      subobject_bounds=True)

    def run_both():
        return (
            {n: conservative.run(s) for n, s in SUBOBJECT_IDIOMS.items()},
            {n: strict.run(s) for n, s in SUBOBJECT_IDIOMS.items()},
        )

    cons, stri = benchmark(run_both)
    lines = ["--- S3.8 axis: sub-object bounds ---"]
    for name in SUBOBJECT_IDIOMS:
        lines.append(f"  {name:38s} conservative={cons[name].describe():10s}"
                     f" strict={stri[name].describe()}")
    emit_report("ablation_subobject", "\n".join(lines) + "\n")

    for name in SUBOBJECT_IDIOMS:
        assert cons[name].ok, name
    assert not stri["container_of via offsetof"].ok
    assert not stri["member overflow into sibling"].ok
    assert stri["array walk from member pointer"].ok


TEMPORAL_IDIOMS = {
    "read after free": """
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 5;
  free(p);
  return *p == 5 ? 1 : 2;
}
""",
    "write through stale alias": """
#include <stdlib.h>
int *alias;
int main(void) {
  int *p = malloc(sizeof(int));
  alias = p;
  free(p);
  *alias = 9;
  return 1;
}
""",
    "fresh allocation unaffected": """
#include <stdlib.h>
int main(void) {
  int *dead = malloc(sizeof(int));
  free(dead);
  int *live = malloc(sizeof(int));
  *live = 7;
  int v = *live;
  free(live);
  return v == 7 ? 0 : 1;
}
""",
}


def test_temporal_revocation_ablation(benchmark):
    """S3.11/S5.4: plain CHERI hardware misses temporal errors; a
    revoking implementation (CHERIoT-style) converts each into a
    deterministic tag fault without disturbing live allocations."""
    from repro.impls import by_name
    plain = by_name("clang-morello-O0")
    revoking = by_name("cheriot-O0")

    def run_both():
        return (
            {n: plain.run(s) for n, s in TEMPORAL_IDIOMS.items()},
            {n: revoking.run(s) for n, s in TEMPORAL_IDIOMS.items()},
        )

    p, r = benchmark(run_both)
    lines = ["--- temporal axis: revocation on free ---"]
    for name in TEMPORAL_IDIOMS:
        lines.append(f"  {name:34s} plain={p[name].describe():24s}"
                     f" revoking={r[name].describe()}")
    emit_report("ablation_temporal", "\n".join(lines) + "\n")

    assert p["read after free"].exit_status == 1          # UAF unnoticed
    assert p["write through stale alias"].exit_status == 1
    assert r["read after free"].kind is OutcomeKind.TRAP  # caught
    assert r["write through stale alias"].kind is OutcomeKind.TRAP
    assert r["fresh allocation unaffected"].ok            # no collateral
