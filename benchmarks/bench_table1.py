"""E1 -- Table 1: the validation-suite category table.

Regenerates the paper's Table 1 ("Summary of the tests for which we
compared the results on three CHERI C implementations"): 34 semantic
categories with their test counts, all 94 tests, run on the reference
implementation.  The shape to match: same categories, same counts, and
the reference implementation passes every test (S5.1).
"""

from __future__ import annotations

from conftest import emit_report

from repro.impls import CERBERUS
from repro.reporting.tables import render_table1
from repro.testsuite.categories import TOTAL_TESTS
from repro.testsuite.compare import run_suite
from repro.testsuite.suite import validate_suite


def test_table1_regeneration(benchmark):
    """Regenerate Table 1 and verify the reference implementation passes
    the whole suite (timed: one full suite run)."""
    validate_suite()

    report = benchmark(run_suite, CERBERUS)

    assert report.failed == 0
    assert report.passed == TOTAL_TESTS
    text = render_table1()
    text += ("\n\nReference implementation (cerberus): "
             f"{report.passed}/{TOTAL_TESTS} tests pass\n")
    emit_report("table1", text)
