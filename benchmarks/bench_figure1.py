"""E4 -- Figure 1: the Morello capability bit-field layout.

Regenerates the figure's content: the field map of the 128-bit Morello
capability (address[63:0], compressed bounds, otype, perms) plus
encode/decode round-trip timing.  Shape to match: 64-bit address in the
low half; bounds compressed into the remaining bits sharing structure
with the address; a 15-bit otype; an 18-bit permission field; one
out-of-band tag.
"""

from __future__ import annotations

from conftest import emit_report

from repro.capability import CHERIOT, MORELLO
from repro.capability.concentrate import CompressedBounds


def field_map(arch):
    p = arch.compression
    pos = 0
    fields = []
    for name, width in [
        ("address", p.address_width),
        ("bounds.B", p.mantissa_width),
        ("bounds.T", p.top_width),
        ("bounds.IE", 1),
        ("otype", arch.otype_width),
        ("perms", len(arch.perm_order)),
    ]:
        fields.append((name, pos, pos + width - 1))
        pos += width
    return fields, pos


def render_figure1() -> str:
    lines = []
    for arch in (MORELLO, CHERIOT):
        fields, total = field_map(arch)
        lines.append(f"{arch.name}: {total}+1-bit capability "
                     f"({arch.capability_size} bytes + tag)")
        for name, lo, hi in reversed(fields):
            lines.append(f"  {name:10s} [{hi:3d}:{lo:3d}]  "
                         f"({hi - lo + 1} bits)")
        lines.append("")
    return "\n".join(lines)


def test_figure1_layout(benchmark):
    text = render_figure1()
    emit_report("figure1", text)

    # The figure's structural claims:
    fields, total = field_map(MORELLO)
    by_name = {n: (lo, hi) for n, lo, hi in fields}
    assert total == 128
    assert by_name["address"] == (0, 63)          # low 64 bits = address
    assert by_name["otype"][1] - by_name["otype"][0] + 1 == 15
    assert by_name["perms"][1] - by_name["perms"][0] + 1 == 18
    bounds_bits = sum(hi - lo + 1 for n, lo, hi in fields
                      if n.startswith("bounds"))
    assert bounds_bits == 31   # compressed bounds fit in 31 stored bits

    # Timed artefact: encode/decode round trip of a full capability.
    cap, _ = MORELLO.root_capability().set_bounds(0x1234_5000, 0x800)

    def roundtrip():
        data = MORELLO.encode(cap)
        return MORELLO.decode(data, tag=True)

    back = benchmark(roundtrip)
    assert back.equal_exact(cap)


def test_figure1_compression_shares_address_bits(benchmark):
    """S2.1: '64-bit lower and upper bounds, encoded into 87 bits in
    total, with 56 of those shared with the address field'.  In our
    layout the sharing is algorithmic rather than positional: the stored
    B/T/IE bits reconstruct full 64-bit bounds only *together with* the
    address.  Demonstrate: same stored bounds bits + different address
    => different decoded bounds."""
    bounds, _ = CompressedBounds.encode(MORELLO.compression, 0x10000, 64)

    def decode_pair():
        near = bounds.decode(0x10000)
        far = bounds.decode(0x90000000)
        return near, far

    near, far = benchmark(decode_pair)
    assert (near.base, near.top) == (0x10000, 0x10040)
    assert (far.base, far.top) != (near.base, near.top)
