"""E2 -- the S5.1-S5.3 compliance comparison.

The paper: "We compiled and ran all our tests using three CHERI C
implementations and compared the results. We found that existing
implementations are mostly compatible with this standard, with some
minor bugs but no principal disagreements."

Shape to match: the reference implementation passes everything; the
hardware implementations satisfy every claim the suite makes about them
at -O0; optimising implementations diverge exactly on the
optimisation-sensitive cases (which the UB semantics licenses), recorded
here with their causes.
"""

from __future__ import annotations

from conftest import emit_report

from repro.impls import ALL_IMPLEMENTATIONS, CERBERUS
from repro.memory.model import Mode
from repro.reporting.tables import render_compliance
from repro.testsuite.compare import compare_implementations, run_suite
from repro.testsuite.suite import all_cases


def test_compliance_comparison(benchmark):
    reports = benchmark(compare_implementations, ALL_IMPLEMENTATIONS)
    for rep in reports:
        assert rep.failed == 0, (rep.impl.name,
                                 [r.case.name for r in rep.failures()])
    # The reference covers every test; hardware implementations have a
    # small no-claim set (UB programs whose hardware behaviour the paper
    # does not pin down).
    assert reports[0].unclaimed == 0
    emit_report("compliance", render_compliance(reports))


def test_optimisation_divergence_is_one_directional(benchmark):
    """Optimised implementations may turn traps into silent success
    (eliminated UB) but never turn a well-defined result into a trap."""

    def collect():
        out = {}
        for impl in ALL_IMPLEMENTATIONS:
            out[impl.name] = {c.name: impl.run(c.source)
                              for c in all_cases()}
        return out

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    from repro.errors import OutcomeKind
    for case in all_cases():
        ref = results["cerberus"][case.name]
        if ref.kind is OutcomeKind.EXIT:
            for impl in ALL_IMPLEMENTATIONS:
                if impl.mode is Mode.HARDWARE and impl.opt_level == 0:
                    got = results[impl.name][case.name]
                    assert got.kind in (OutcomeKind.EXIT,
                                        OutcomeKind.ABORT), \
                        (case.name, impl.name, got.describe())
