"""Benchmark harness helpers.

Every bench regenerates one of the paper's artefacts (a table, a figure,
or a worked example).  The regenerated artefact is written to
``benchmarks/reports/<name>.txt`` (and echoed when running with ``-s``),
so ``pytest benchmarks/ --benchmark-only`` leaves both the timing table
and the paper-shaped outputs behind.
"""

from __future__ import annotations

import pathlib

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return path
