"""The Appendix A experiment: bitwise ops on intptr_t, per implementation.

Reproduces the paper's sample test-suite output -- the same program
printing ``cap``, ``cap&uint``, ``cap&int`` under the reference semantics
and each simulated compiler, showing how the observable behaviour depends
on allocator address ranges.

Run:  python examples/intptr_bitops.py
"""

from repro.impls import APPENDIX_IMPLEMENTATIONS

SOURCE = """
#include <stdint.h>
#include <stdio.h>
#include <limits.h>
int main(void) {
  int x[2]={42,43};
  intptr_t ip = (intptr_t)&x;
  print_cap("cap", ip);
  intptr_t ip2 = ip & UINT_MAX;
  print_cap("cap&uint", ip2);
  intptr_t ip3 = ip & INT_MAX;
  print_cap("cap&int", ip3);
  return 0;
}
"""


def main() -> None:
    for impl in APPENDIX_IMPLEMENTATIONS:
        out = impl.run(SOURCE)
        print(f"{impl.name}:")
        for line in out.stdout.splitlines():
            print(f"  {line}")
        print()
    print("Reading the traces (Appendix A):")
    print(" * cerberus stacks sit just below 2^32: & UINT_MAX is the")
    print("   identity, & INT_MAX lands below the base -> the ghost")
    print("   state marks bounds/tag unspecified ([?-?] (notag));")
    print(" * clang stacks are high: both masks relocate the address far")
    print("   out of the representable range -> (invalid) tags;")
    print(" * gcc's bare-metal stack is below 2^31: neither mask changes")
    print("   anything, 'likely because of its memory allocator's")
    print("   address ranges' (S5).")


if __name__ == "__main__":
    main()
