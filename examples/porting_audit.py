"""Porting audit: classify legacy C idioms for CHERI C readiness.

The paper's motivation (S1, S3): porting existing C to CHERI C is
usually recompilation, but "more exotic code, for example code that
manipulates the bit-representations of pointers, may need some source
adaptation."  This example runs a corpus of common legacy idioms through
the executable semantics and produces the porting report a migration
team would want: which idioms are fine, which are CHERI C UB, and which
CHERI-specific UB they hit.

Run:  python examples/porting_audit.py
"""

from repro.errors import OutcomeKind
from repro.impls import CERBERUS, by_name

IDIOMS = {
    "pointer round-trip through uintptr_t": """
#include <stdint.h>
int main(void) {
  int x = 1;
  uintptr_t u = (uintptr_t)&x;
  int *p = (int *)u;
  return *p - 1;
}
""",
    "alignment check via low bits": """
#include <stdint.h>
int main(void) {
  long v;
  uintptr_t u = (uintptr_t)&v;
  return (u & (sizeof(long) - 1)) != 0;
}
""",
    "tagged-pointer low bits (mask before use)": """
#include <stdint.h>
int main(void) {
  long v = 7;
  uintptr_t u = (uintptr_t)&v;
  u |= 1;                               /* stash a flag */
  long *p = (long *)(u & ~(uintptr_t)1); /* mask it off  */
  return *p - 7;
}
""",
    "pointer round-trip through unsigned long": """
int main(void) {
  int x = 1;
  unsigned long u = (unsigned long)&x;  /* loses the capability! */
  int *p = (int *)u;
  return *p - 1;
}
""",
    "container_of via offsetof": """
#include <stddef.h>
struct obj { int hdr; int payload; };
struct obj o = { 1, 2 };
int main(void) {
  int *member = &o.payload;
  struct obj *obj = (struct obj *)
      (void *)((char *)member - offsetof(struct obj, payload));
  return obj->hdr - 1;
}
""",
    "iterate with one-past sentinel": """
int main(void) {
  int a[8];
  for (int *p = a; p != a + 8; p++) *p = 1;
  int s = 0;
  for (int *p = a; p != a + 8; p++) s += *p;
  return s - 8;
}
""",
    "decreasing loop below the array": """
int main(void) {
  int a[4];
  int s = 0;
  /* p runs to one-BELOW-the-base: legal on many machines, UB in
     ISO and CHERI C (S3.2 option (a)). */
  for (int *p = &a[3]; p >= a; p--) s += 0;
  return s;
}
""",
    "XOR-linked-list pointer encoding": """
#include <stdint.h>
int main(void) {
  int v = 3;
  uintptr_t key = 0xdecafbad;
  uintptr_t enc = (uintptr_t)&v ^ key;   /* leaves representable range */
  int *p = (int *)(enc ^ key);
  return *p - 3;
}
""",
    "memcpy a struct full of pointers": """
#include <string.h>
struct vec { int *a; int *b; };
int main(void) {
  int x = 1, y = 2;
  struct vec v = { &x, &y };
  struct vec w;
  memcpy(&w, &v, sizeof(v));
  return *w.a + *w.b - 3;
}
""",
    "byte-swab a pointer in place": """
int main(void) {
  int x = 1;
  int *p = &x;
  unsigned char *b = (unsigned char *)&p;
  unsigned char t = b[0]; b[0] = b[1]; b[1] = t;  /* swap */
  t = b[0]; b[0] = b[1]; b[1] = t;                /* swap back */
  return *p - 1;
}
""",
}


def verdict(outcome) -> str:
    if outcome.kind is OutcomeKind.EXIT and outcome.exit_status == 0:
        return "PORTS CLEANLY"
    if outcome.kind is OutcomeKind.UNDEFINED and outcome.ub is not None \
            and outcome.ub.is_cheri:
        return f"NEEDS ADAPTATION  ({outcome.ub})"
    if outcome.kind is OutcomeKind.UNDEFINED:
        return f"ALREADY ISO-UB    ({outcome.ub})"
    return outcome.describe()


def main() -> None:
    print("CHERI C porting audit "
          "(reference semantics + Morello-O0 hardware)\n")
    hw = by_name("clang-morello-O0")
    width = max(len(n) for n in IDIOMS) + 2
    for name, src in IDIOMS.items():
        ref = CERBERUS.run(src)
        hard = hw.run(src)
        print(f"{name:<{width}s} {verdict(ref):<46s} "
              f"hardware: {hard.describe()}")
    print("\nLegend: NEEDS ADAPTATION = hits a CHERI-specific UB "
          "(S4.2); the hardware")
    print("column shows what actually happens on a CHERI CPU today.")


if __name__ == "__main__":
    main()
