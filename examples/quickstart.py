"""Quickstart: run CHERI C programs under the executable semantics.

Demonstrates the three-way story at the heart of the paper: the same
buggy program is *undefined behaviour* in the CHERI C abstract machine,
a deterministic *capability trap* on (unoptimised) CHERI hardware, and
possibly a silent no-op once an optimising compiler has exploited the UB.

Run:  python examples/quickstart.py
"""

from repro.impls import ALL_IMPLEMENTATIONS, CERBERUS, by_name

BUGGY = """
void f(int *p, int i) {
  int *q = p + i;     /* one-past pointer: legal */
  *q = 42;            /* ...but writing through it is not */
}
int main(void) {
  int x = 0, y = 0;
  f(&x, 1);
  return y;
}
"""

SAFE = """
#include <stdint.h>
#include <cheriintrin.h>
#include <assert.h>
int main(void) {
  int a[4] = {1, 2, 3, 4};
  /* Pointers are capabilities: inspect the bounds the compiler gave. */
  assert(cheri_tag_get(a));
  assert(cheri_length_get(a) == sizeof(a));

  /* (u)intptr_t round-trips carry the whole capability (S3.3). */
  uintptr_t ip = (uintptr_t)&a[1];
  int *p = (int *)(ip + sizeof(int));
  return *p - 3;      /* 0: the round-trip pointer still works */
}
"""


def main() -> None:
    print("== a well-defined CHERI C program ==")
    outcome = CERBERUS.run(SAFE)
    print(f"  reference semantics: {outcome.describe()}")
    assert outcome.ok

    print("\n== the S3.1 out-of-bounds write, across implementations ==")
    for impl in ALL_IMPLEMENTATIONS:
        outcome = impl.run(BUGGY)
        print(f"  {impl.name:22s} {outcome.describe()}")

    print("\nWhat happened:")
    print("  * the abstract machine reports the UB the paper defines"
          " (UB_CHERI_BoundsViolation);")
    print("  * -O0 hardware faults deterministically (the CHERI"
          " memory-safety win);")
    print("  * -O3 deletes the doomed write -- which the UB semantics"
          " licenses, and is why")
    print("    the paper's 'positive semantics' cannot promise a trap"
          " (S3.1).")

    print("\n== inspecting one outcome programmatically ==")
    out = by_name("clang-morello-O0").run(BUGGY)
    print(f"  kind={out.kind.value} trap={out.trap} detail={out.detail!r}")


if __name__ == "__main__":
    main()
