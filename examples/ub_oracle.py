"""Differential testing with the executable semantics as oracle (S7).

The paper's future-work claim: "The fact that our semantics is
executable means that it could be used as a test oracle for more
aggressive compiler testing, letting one use randomly generated tests
without manually curating their intended results."

This example does exactly that: it generates random little
pointer-manipulating programs, computes each one's *intended* outcome
with the reference semantics (UB-or-result), and then checks every
simulated implementation against the oracle's verdict:

* if the oracle says the program is UB, anything goes -- record what
  each implementation did with its freedom;
* if the oracle says ``exit N``, every implementation must exit N --
  anything else would be a compiler bug.

Run:  python examples/ub_oracle.py [count] [seed]
"""

import random
import sys

from repro.errors import OutcomeKind
from repro.impls import ALL_IMPLEMENTATIONS, CERBERUS


class ProgramGenerator:
    """Random straight-line pointer programs over one array."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def generate(self) -> str:
        n = self.rng.randint(2, 8)
        lines = [
            "#include <stdint.h>",
            "int main(void) {",
            f"  int a[{n}];",
            f"  for (int i = 0; i < {n}; i++) a[i] = i;",
            "  int *p = a;",
            "  uintptr_t u = (uintptr_t)a;",
            "  int acc = 0;",
        ]
        for _ in range(self.rng.randint(2, 6)):
            lines.append("  " + self._step(n))
        lines.append("  return acc & 127;")
        lines.append("}")
        return "\n".join(lines)

    def _step(self, n: int) -> str:
        rng = self.rng
        kind = rng.randrange(6)
        if kind == 0:   # pointer arithmetic, possibly out of range
            off = rng.randint(-2, n + 2)
            return f"p = a + {off};" if off >= 0 else f"p = a - {-off};"
        if kind == 1:   # dereference wherever p points
            return "acc += *p;"
        if kind == 2:   # intptr arithmetic, possibly a big excursion
            delta = rng.choice([4, 8, n * 4, 100001 * 4])
            op = rng.choice(["+", "-"])
            return f"u = u {op} {delta};"
        if kind == 3:   # rebuild p from u
            return "p = (int *)u;"
        if kind == 4:   # in-bounds index
            return f"acc += a[{rng.randrange(n)}];"
        return f"u = u & ~(uintptr_t){rng.choice([1, 3, 7])};"


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 20240427
    rng = random.Random(seed)
    gen = ProgramGenerator(rng)

    defined = 0
    undefined = {}
    mismatches = []
    for i in range(count):
        src = gen.generate()
        oracle = CERBERUS.run(src)
        if oracle.kind is OutcomeKind.UNDEFINED:
            undefined[oracle.ub] = undefined.get(oracle.ub, 0) + 1
            continue
        assert oracle.kind is OutcomeKind.EXIT, oracle.describe()
        defined += 1
        for impl in ALL_IMPLEMENTATIONS[1:]:
            got = impl.run(src)
            if got.kind is not OutcomeKind.EXIT or \
                    got.exit_status != oracle.exit_status:
                mismatches.append((i, impl.name, oracle.describe(),
                                   got.describe(), src))

    print(f"generated {count} random programs (seed {seed})")
    print(f"  oracle verdict 'defined':   {defined}")
    print(f"  oracle verdict 'UB':        {count - defined}")
    for ub, k in sorted(undefined.items(), key=lambda kv: -kv[1]):
        print(f"      {k:3d} x {ub}")
    if mismatches:
        print(f"\n!! {len(mismatches)} implementation mismatches on "
              "defined programs:")
        for i, name, want, got, src in mismatches[:3]:
            print(f"  program {i} on {name}: oracle {want}, got {got}")
            print("  ---")
            print("  " + "\n  ".join(src.splitlines()))
    else:
        print("\nevery implementation agreed with the oracle on every "
              "defined program --")
        print("the differential-testing loop the paper's S7 envisions.")


if __name__ == "__main__":
    main()
