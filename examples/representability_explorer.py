"""Explore CHERI Concentrate bounds compression (S2.1, S3.2, S3.10).

For a list of (base, size) requests, shows -- on both capability
formats -- what the hardware can actually encode: whether the bounds are
byte-exact, how much padding/alignment the allocator must add, and how
far outside the bounds the address may roam before the capability
becomes unrepresentable.

Run:  python examples/representability_explorer.py [size ...]
"""

import sys

from repro.capability import CHERIOT, MORELLO
from repro.capability.concentrate import CompressedBounds
from repro.memory.allocator import representable_region

DEFAULT_SIZES = [16, 100, 511, 4096, 16384, 65537, (1 << 20) + 1]


def explore(arch, size: int) -> str:
    params = arch.compression
    if size >= (1 << params.address_width):
        return f"  {size:>10d}  (exceeds the {params.address_width}-bit " \
               f"address space)"
    align, padded = representable_region(params, size, 1)
    base = max(align, 0x1000)
    while base % align:
        base += 1
    bounds, exact = CompressedBounds.encode(params, base, size)
    lo, hi = bounds.representable_limits(base)
    decoded = bounds.decode(base)
    # The window is modular (it may wrap around the address space), so
    # express the roam as modular distances from the object.
    space = 1 << params.address_width
    window = hi - lo
    slack_below = (decoded.base - lo) % space
    slack_above = window - slack_below - decoded.length
    if window >= space:
        roam = "whole address space"
    else:
        roam = f"-{slack_below:<10d} +{slack_above:<10d}"
    return (f"  {size:>10d}  exact={str(exact):5s} padded={padded:>10d} "
            f"align={align:>8d}  roam: {roam}")


def main() -> None:
    sizes = [int(s, 0) for s in sys.argv[1:]] or DEFAULT_SIZES
    for arch in (MORELLO, CHERIOT):
        p = arch.compression
        print(f"{arch.name}: {p.address_width}-bit addresses, "
              f"{p.mantissa_width}-bit mantissa, byte-exact to "
              f"{p.max_exact_length} bytes")
        print("        size  exact      padded     align   "
              "representable roam below/above")
        for size in sizes:
            print(explore(arch, size))
        print()
    print("'roam' is how far pointer arithmetic can stray outside the")
    print("bounds before hardware clears the tag (S3.2) -- the paper's")
    print("reason for making the region implementation-defined (S3.3")
    print("option (ii)): it differs per format and per object size.")
    print("The portable guarantee of [45 S4.3.5] instead promises only")
    lo, hi = MORELLO.portable_representable_limits(0x10000, 4096)
    print(f"e.g. for a 4 KiB object: -{0x10000 - lo} / "
          f"+{hi - 0x10000 - 4096} bytes on any 64-bit CHERI.")


if __name__ == "__main__":
    main()
