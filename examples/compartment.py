"""Software compartmentalisation with sealed capabilities (S2.1).

CHERI's second headline capability (beyond memory safety) is *scalable
software compartmentalisation*: sealed capabilities are opaque handles
that untrusted code can hold and pass around but neither inspect through
nor forge.  This example runs a small capability-based "service" written
in CHERI C: a credential store hands out sealed handles; client code
cannot read through a handle, cannot fabricate one, and cannot widen the
narrow capabilities it *is* given.

Run:  python examples/compartment.py
"""

from repro.impls import CERBERUS, by_name

SERVICE = """
#include <cheriintrin.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

/* ---- the trusted credential service ---------------------------------- */

struct secret { char key[16]; int uses; };
static void *authority;          /* sealing root, held by the service */

struct secret *service_issue(const char *key) {
  struct secret *s = malloc(sizeof(struct secret));
  strcpy(s->key, key);
  s->uses = 0;
  /* Hand out a SEALED handle: opaque to everyone without authority. */
  return cheri_seal(s, authority);
}

int service_use(struct secret *handle, const char *key) {
  struct secret *s = cheri_unseal(handle, authority);
  if (!cheri_tag_get(s)) return -1;        /* forged or wrong handle */
  if (strcmp(s->key, key) != 0) return -2; /* wrong credential */
  s->uses++;
  return s->uses;
}

/* ---- untrusted client code ------------------------------------------- */

int client(struct secret *handle) {
  /* 1. The handle is opaque: its fields cannot be read. */
  if (cheri_is_sealed(handle))
    printf("client: handle is sealed, cannot peek\\n");

  /* 2. Stripping the seal without authority yields nothing usable. */
  struct secret *forged =
      (struct secret *)cheri_address_set(handle,
                                         cheri_address_get(handle));
  if (!cheri_tag_get(forged))
    printf("client: tampering detached the tag\\n");

  /* 3. The proper protocol still works through the service. */
  return service_use(handle, "hunter2");
}

int main(void) {
  authority = cheri_sealcap_get();
  struct secret *handle = service_issue("hunter2");
  int n1 = client(handle);
  int n2 = service_use(handle, "wrong-password");
  printf("first use -> %d, wrong password -> %d\\n", n1, n2);
  return (n1 == 1 && n2 == -2) ? 0 : 1;
}
"""

PEEK_ATTEMPT = """
#include <cheriintrin.h>
#include <stdlib.h>
#include <string.h>
struct secret { char key[16]; int uses; };
int main(void) {
  void *authority = cheri_sealcap_get();
  struct secret *s = malloc(sizeof(struct secret));
  strcpy(s->key, "hunter2");
  struct secret *handle = cheri_seal(s, authority);
  /* The attack: dereference the sealed handle directly. */
  return handle->key[0];
}
"""


def main() -> None:
    print("== the compartmentalised service, end to end ==")
    out = CERBERUS.run(SERVICE)
    print(out.stdout, end="")
    print(f"  outcome: {out.describe()}")
    assert out.ok

    print("\n== an attack: dereferencing the sealed handle ==")
    for name in ("cerberus", "clang-morello-O0"):
        out = by_name(name).run(PEEK_ATTEMPT)
        print(f"  {name:20s} {out.describe()}")
    print("\nSealed capabilities are 'immutable and unusable for anything")
    print("but branching to them' (S2.1): the abstract machine flags UB,")
    print("hardware faults with a seal violation -- the basis for")
    print("capability-based compartment boundaries.")


if __name__ == "__main__":
    main()
