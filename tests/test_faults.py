"""Unit tests for the seeded-fault implementations (S5 bug classes)."""

import pytest

from repro.errors import OutcomeKind
from repro.impls.faults import FAULTS, FaultyImplementation
from repro.impls.registry import CLANG_MORELLO_O0


class TestRegistry:
    def test_four_bug_classes(self):
        assert set(FAULTS) == {"realloc-drops-tag", "memcpy-bytewise",
                               "malloc-unpadded", "const-writable"}

    def test_all_hardware_mode(self):
        from repro.memory.model import Mode
        for impl in FAULTS.values():
            assert isinstance(impl, FaultyImplementation)
            assert impl.mode is Mode.HARDWARE
            assert impl.description

    def test_models_differ_from_base(self):
        from repro.memory.model import MemoryModel
        for impl in FAULTS.values():
            assert impl.model_class is not MemoryModel
            assert isinstance(impl.fresh_model(), impl.model_class)


class TestFaultBehaviours:
    def test_realloc_drops_tag(self):
        out = FAULTS["realloc-drops-tag"].run("""
#include <stdlib.h>
#include <cheriintrin.h>
int main(void) {
  int *p = malloc(4);
  int *q = realloc(p, 16);
  return cheri_tag_get(q) ? 0 : 7;
}
""")
        assert out.exit_status == 7
        assert CLANG_MORELLO_O0.run("""
#include <stdlib.h>
#include <cheriintrin.h>
int main(void) {
  int *p = malloc(4);
  int *q = realloc(p, 16);
  return cheri_tag_get(q) ? 0 : 7;
}
""").exit_status == 0

    def test_memcpy_bytewise_clears_tags(self):
        src = """
#include <string.h>
#include <cheriintrin.h>
int main(void) {
  int x;
  int *s = &x;
  int *d;
  memcpy(&d, &s, sizeof s);
  return cheri_tag_get(d) ? 0 : 7;
}
"""
        assert FAULTS["memcpy-bytewise"].run(src).exit_status == 7
        assert CLANG_MORELLO_O0.run(src).exit_status == 0

    def test_malloc_unpadded_overlap(self):
        src = """
#include <stdlib.h>
#include <cheriintrin.h>
int main(void) {
  char *a = malloc(1000001);
  char *b = malloc(8);
  ptraddr_t atop = cheri_base_get(a) + cheri_length_get(a);
  return atop > cheri_base_get(b) ? 7 : 0;   /* bounds overlap b */
}
"""
        assert FAULTS["malloc-unpadded"].run(src).exit_status == 7
        assert CLANG_MORELLO_O0.run(src).exit_status == 0

    def test_const_writable_mutates_literal(self):
        src = """
int main(void) {
  char *s = (char*)"hi";
  s[0] = 'H';
  return s[0] == 'H' ? 7 : 0;
}
"""
        assert FAULTS["const-writable"].run(src).exit_status == 7
        assert CLANG_MORELLO_O0.run(src).kind is OutcomeKind.TRAP
