"""Object types, sealing values, and ghost-state algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.capability.ghost import GhostState
from repro.capability.otype import OType


class TestOType:
    def test_unsealed(self):
        o = OType.unsealed()
        assert o.is_unsealed and not o.is_sealed
        assert o.describe() == "unsealed"

    def test_sentry(self):
        o = OType.sentry()
        assert o.is_sealed and o.is_sentry and o.is_reserved
        assert o.describe() == "sentry"

    def test_user_otypes_start_after_reserved(self):
        o = OType.user(0)
        assert o.value == OType.FIRST_USER
        assert o.is_sealed and not o.is_reserved
        assert "otype(" in o.describe()

    def test_user_negative_rejected(self):
        with pytest.raises(ValueError):
            OType.user(-1)

    def test_reserved_values(self):
        assert OType(OType.LOAD_PAIR_BRANCH_VALUE).is_reserved
        assert OType(OType.LOAD_BRANCH_VALUE).is_reserved
        assert "reserved" in OType(2).describe()


class TestGhostState:
    def test_clean(self):
        g = GhostState.clean()
        assert g.is_clean
        assert g.describe() == "clean"

    def test_bits_are_sticky_through_merge(self):
        g1 = GhostState().with_tag_unspecified()
        g2 = GhostState().with_bounds_unspecified()
        merged = g1.merge(g2)
        assert merged.tag_unspecified and merged.bounds_unspecified
        assert merged.describe() == "tag?,bounds?"

    def test_merge_with_clean_is_identity(self):
        g = GhostState(True, False)
        assert g.merge(GhostState.clean()) == g
        assert GhostState.clean().merge(g) == g

    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans())
    def test_merge_is_commutative_and_monotone(self, a, b, c, d):
        g1, g2 = GhostState(a, b), GhostState(c, d)
        assert g1.merge(g2) == g2.merge(g1)
        m = g1.merge(g2)
        assert m.tag_unspecified >= g1.tag_unspecified
        assert m.bounds_unspecified >= g2.bounds_unspecified

    def test_immutable(self):
        g = GhostState()
        g2 = g.with_tag_unspecified()
        assert not g.tag_unspecified
        assert g2.tag_unspecified
