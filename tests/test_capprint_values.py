"""The Appendix-A capability printer and the value-layer invariants."""

import pytest

from repro.capability import MORELLO
from repro.capability.ghost import GhostState
from repro.capability.otype import OType
from repro.ctypes import ArrayT, INT, StructT, UnionT
from repro.memory.provenance import Provenance, ProvKind
from repro.memory.values import IntegerValue, MVArray, MVStruct, MVUnion
from repro.reporting.capprint import format_capability


@pytest.fixture
def cap():
    cap, _ = MORELLO.root_capability().set_bounds(0xffffe6dc, 8)
    return cap


class TestCapPrint:
    def test_cerberus_style(self, cap):
        text = format_capability(cap, Provenance.alloc(86))
        assert text.startswith("(@86, 0xffffe6dc [rwRW")
        assert text.endswith(",0xffffe6dc-0xffffe6e4])")
        assert "(notag)" not in text

    def test_hardware_style(self, cap):
        text = format_capability(cap, hardware=True)
        assert text.startswith("0xffffe6dc [")
        assert "@" not in text

    def test_invalid_marker(self, cap):
        text = format_capability(cap.with_tag(False), hardware=True)
        assert text.endswith("(invalid)")

    def test_notag_marker_abstract(self, cap):
        text = format_capability(cap.with_tag(False), Provenance.empty())
        assert "(notag)" in text and "@empty" in text

    def test_ghost_bounds_question_marks(self, cap):
        g = cap.with_ghost(GhostState(True, True))
        text = format_capability(g, Provenance.empty())
        assert "[?-?]" in text and "(notag)" in text

    def test_sealed_marker(self, cap):
        text = format_capability(cap.sealed_with(OType.sentry()),
                                 hardware=True)
        assert "(sealed)" in text

    def test_provenance_descriptions(self):
        assert Provenance.empty().describe() == "@empty"
        assert Provenance.alloc(5).describe() == "@5"
        assert Provenance.symbolic(2).describe() == "@iota2"

    def test_hardware_with_prov_raises(self, cap):
        """Hardware rendering has no provenance; passing one is a
        caller bug and must not be silently dropped."""
        with pytest.raises(ValueError, match="no provenance"):
            format_capability(cap, Provenance.alloc(86), hardware=True)
        with pytest.raises(ValueError, match="no provenance"):
            format_capability(cap, Provenance.empty(), hardware=True)

    def test_golden_both_styles(self, cap):
        """The exact Appendix-A renderings, both styles, one capability."""
        assert format_capability(cap, Provenance.alloc(86)) == \
            "(@86, 0xffffe6dc [rwRWxBCEGMSLYU0123,0xffffe6dc-0xffffe6e4])"
        assert format_capability(cap, hardware=True) == \
            "0xffffe6dc [rwRWxBCEGMSLYU0123,0xffffe6dc-0xffffe6e4]"


class TestIntegerValue:
    def test_exactly_one_arm(self):
        with pytest.raises(ValueError):
            IntegerValue(num=1, cap=MORELLO.root_capability())
        with pytest.raises(ValueError):
            IntegerValue()

    def test_plain_value(self):
        assert IntegerValue.of_int(-7).value() == -7

    def test_cap_value_signed_interpretation(self):
        high = MORELLO.root_capability().with_address(0xFFFFFFFFFFFFFFF0)
        signed = IntegerValue.of_cap(high, True)
        unsigned = IntegerValue.of_cap(high, False)
        assert signed.value() == -16
        assert unsigned.value() == 0xFFFFFFFFFFFFFFF0

    def test_with_value_moves_cap_via_ghost(self):
        cap, _ = MORELLO.root_capability().set_bounds(0x1000, 8)
        iv = IntegerValue.of_cap(cap, False)
        far = iv.with_value(0x1000 + (1 << 30))
        assert far.cap.ghost.bounds_unspecified
        assert far.value() == 0x1000 + (1 << 30)

    def test_with_value_hardware_detags(self):
        cap, _ = MORELLO.root_capability().set_bounds(0x1000, 8)
        iv = IntegerValue.of_cap(cap, False)
        far = iv.with_value_hardware(0x1000 + (1 << 30))
        assert not far.cap.tag

    def test_plain_with_value(self):
        assert IntegerValue.of_int(1).with_value(9).value() == 9


class TestAggregateValues:
    def test_mvarray_requires_array_type(self):
        with pytest.raises(TypeError):
            MVArray(INT, ())

    def test_mvstruct_requires_struct(self):
        with pytest.raises(TypeError):
            MVStruct(INT, ())

    def test_mvunion_requires_union(self):
        s = StructT(tag="s", fields=())
        with pytest.raises(TypeError):
            MVUnion(s, active="", value=None)

    def test_struct_member_lookup(self):
        from repro.ctypes import Field
        from repro.memory.values import MVInteger
        s = StructT(tag="s", fields=(Field("x", INT),))
        v = MVStruct(s, (("x", MVInteger(INT, IntegerValue.of_int(1))),))
        assert v.member("x").ival.value() == 1
        with pytest.raises(KeyError):
            v.member("nope")


class TestReportTables:
    def test_render_table1_matches_paper(self):
        from repro.reporting.tables import render_table1
        text = render_table1()
        assert "94 distinct tests" in text
        assert "222 category memberships" in text
        assert "!! paper says" not in text

    def test_render_failures_empty_when_green(self):
        from repro.impls import CERBERUS
        from repro.reporting.tables import render_failures
        from repro.testsuite.compare import run_suite
        assert render_failures([run_suite(CERBERUS)]) == ""

    def test_render_failures_reports_details(self):
        from repro.impls.faults import FAULTS
        from repro.reporting.tables import render_failures
        from repro.testsuite.compare import run_suite
        text = render_failures([run_suite(FAULTS["realloc-drops-tag"])])
        assert "stdlib-realloc-moves-capabilities" in text
        assert "expected" in text
