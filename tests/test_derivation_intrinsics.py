"""Capability derivation (S3.7/S4.4) and the intrinsics layer (S4.5)."""

import pytest

from repro.capability.otype import OType
from repro.capability.permissions import Permission
from repro.ctypes import INT
from repro.memory import IntegerValue
from repro.memory.allocation import AllocKind
from repro.memory.derivation import derive
from repro.memory.intrinsics import (
    Intrinsics, SAME_AS_ARG0, SIGNATURES, UNSPECIFIED,
)


@pytest.fixture
def cap(model):
    return model.allocate_object(INT, AllocKind.STACK, "x").cap


@pytest.fixture
def intr(model):
    return Intrinsics(model)


class TestDerivation:
    def test_left_cap_wins(self, cap):
        lhs = IntegerValue.of_cap(cap, True)
        rhs = IntegerValue.of_int(4)
        out = derive(lhs, rhs, cap.address + 4, signed=True, hardware=False)
        assert out.cap is not None
        assert out.cap.address == cap.address + 4
        assert out.cap.base == cap.base

    def test_right_cap_when_left_plain(self, cap):
        lhs = IntegerValue.of_int(4)
        rhs = IntegerValue.of_cap(cap, True)
        out = derive(lhs, rhs, cap.address + 4, signed=True, hardware=False)
        assert out.cap is not None
        assert out.cap.base == cap.base

    def test_left_preferred_over_right(self, model, cap):
        other = model.allocate_object(INT, AllocKind.STACK, "y").cap
        lhs = IntegerValue.of_cap(cap, True)
        rhs = IntegerValue.of_cap(other, True)
        out = derive(lhs, rhs, cap.address, signed=True, hardware=False)
        assert out.cap.base == cap.base

    def test_plain_plain_stays_plain(self):
        out = derive(IntegerValue.of_int(1), IntegerValue.of_int(2), 3,
                     signed=True, hardware=False)
        assert out.cap is None
        assert out.value() == 3

    def test_unary_derives_from_operand(self, cap):
        out = derive(IntegerValue.of_cap(cap, False), None,
                     cap.address ^ 0xF0, signed=False, hardware=False)
        assert out.cap is not None

    def test_abstract_ghost_vs_hardware_tag(self, cap):
        lhs = IntegerValue.of_cap(cap, True)
        far = cap.address + (1 << 30)
        ghost = derive(lhs, None, far, signed=True, hardware=False)
        assert ghost.cap.tag and ghost.cap.ghost.bounds_unspecified
        hard = derive(lhs, None, far, signed=True, hardware=True)
        assert not hard.cap.tag and hard.cap.ghost.is_clean


class TestIntrinsics:
    def test_field_getters(self, intr, cap):
        assert intr.address_get(cap) == cap.address
        assert intr.base_get(cap) == cap.base
        assert intr.length_get(cap) == 4
        assert intr.offset_get(cap) == 0
        assert intr.top_get(cap) == cap.top
        assert intr.tag_get(cap) is True
        assert intr.type_get(cap) == 0
        assert intr.is_sealed(cap) is False

    def test_ghost_makes_queries_unspecified(self, intr, cap):
        g = cap.with_ghost(cap.ghost.with_tag_unspecified()
                           .with_bounds_unspecified())
        assert intr.tag_get(g) is UNSPECIFIED
        assert intr.base_get(g) is UNSPECIFIED
        assert intr.length_get(g) is UNSPECIFIED
        assert intr.offset_get(g) is UNSPECIFIED
        # Address and perms stay defined (S3.3, S3.5):
        assert intr.address_get(g) == cap.address
        assert isinstance(intr.perms_get(g), int)
        assert intr.is_equal_exact(g, cap) is UNSPECIFIED
        assert intr.is_subset(g, cap) is UNSPECIFIED

    def test_perms_get_bit_positions(self, intr, model, cap):
        word = intr.perms_get(cap)
        order = model.arch.perm_order
        assert bool(word & (1 << order.index(Permission.LOAD)))
        assert not bool(word & (1 << order.index(Permission.EXECUTE)))

    def test_perms_and_monotonic(self, intr, model, cap):
        order = model.arch.perm_order
        only_load = 1 << order.index(Permission.LOAD)
        out = intr.perms_and(cap, only_load)
        assert out.has_perm(Permission.LOAD)
        assert not out.has_perm(Permission.STORE)
        regained = intr.perms_and(out, (1 << len(order)) - 1)
        assert not regained.has_perm(Permission.STORE)

    def test_bounds_set_exact_detags_when_inexact(self, intr, model):
        big = model.allocate_region(1 << 20)
        inexact = intr.bounds_set_exact(big.cap, (1 << 19) + 3)
        assert not inexact.tag
        rounded = intr.bounds_set(big.cap, (1 << 19) + 3)
        assert rounded.tag
        assert rounded.length >= (1 << 19) + 3

    def test_seal_unseal_with_authority(self, intr, model, cap):
        root = model.arch.root_capability()
        authority = root.with_address(OType.FIRST_USER)
        sealed = intr.seal(cap, authority)
        assert sealed.tag and sealed.is_sealed
        unsealed = intr.unseal(sealed, authority)
        assert unsealed.tag and not unsealed.is_sealed

    def test_seal_without_authority_detags(self, intr, model, cap):
        root = model.arch.root_capability()
        no_auth = root.without_perms(Permission.SEAL).with_address(
            OType.FIRST_USER)
        sealed = intr.seal(cap, no_auth)
        assert not sealed.tag

    def test_unseal_wrong_otype_detags(self, intr, model, cap):
        root = model.arch.root_capability()
        sealed = intr.seal(cap, root.with_address(OType.FIRST_USER))
        wrong = intr.unseal(sealed, root.with_address(OType.FIRST_USER + 1))
        assert not wrong.tag

    def test_representable_length_idempotent(self, intr):
        big = (1 << 22) + 1
        r = intr.representable_length(big)
        assert r >= big
        assert intr.representable_length(r) == r
        assert intr.representable_length(100) == 100

    def test_representable_alignment_mask(self, intr, model):
        mask = intr.representable_alignment_mask((1 << 22) + 1)
        assert mask != model.arch.address_mask
        assert intr.representable_alignment_mask(64) == \
            model.arch.address_mask

    def test_address_set_modes(self, model, hw_model):
        cap_a = model.allocate_object(INT, AllocKind.STACK, "x").cap
        far = cap_a.address + (1 << 30)
        ghosted = Intrinsics(model).address_set(cap_a, far)
        assert ghosted.ghost.bounds_unspecified
        cap_h = hw_model.allocate_object(INT, AllocKind.STACK, "x").cap
        cleared = Intrinsics(hw_model).address_set(cap_h,
                                                   cap_h.address + (1 << 30))
        assert not cleared.tag

    def test_signature_table_well_formed(self):
        for name, sig in SIGNATURES.items():
            assert name.startswith("cheri_")
            assert sig.params, name
            assert sig.ret is SAME_AS_ARG0 or sig.ret is not None
